//! End-to-end pipeline tests across crates: specification → sparsification →
//! conformance → compression → functional execution → evaluation.

use highlight::fibertree::spec::{PatternSpec, Rule};
use highlight::prelude::*;
use highlight::sim::micro::{MicroConfig, MicroSim};
use highlight::sparsity::prune::prune_hss;
use highlight::tensor::conv::ConvLayer;
use highlight::tensor::format::{HssCompressed, SparseB};
use highlight::tensor::gen;

/// Dense weights → HSS sparsification → fibertree conformance check against
/// the paper-notation specification.
#[test]
fn pruned_tensor_conforms_to_its_fibertree_spec() {
    let pattern = HssPattern::two_rank(Gh::new(3, 4), Gh::new(2, 4));
    let dense = gen::random_dense(8, 32, 3);
    let pruned = prune_hss(&dense, &pattern);

    // Build the fibertree view: M -> K, then split K into K2 | K1(3:4) | K0(2:4).
    let tree = pruned.to_fibertree("M", "K").unwrap();
    let split_outer = tree.split_rank_named(1, 16, "K2x", "Klow").unwrap();
    let split_inner = split_outer.split_rank_named(2, 4, "K1", "K0").unwrap();
    let spec = PatternSpec::parse("M→K2x→K1(3:4)→K0(2:4)").unwrap();
    spec.check(&split_inner)
        .expect("pruned tensor must conform to its spec");

    // And a too-tight spec must fail.
    let tight = PatternSpec::parse("M→K2x→K1(3:4)→K0(1:4)").unwrap();
    assert!(tight.check(&split_inner).is_err());
}

/// Convolution → Toeplitz GEMM → HSS pruning → compressed execution on the
/// micro-architecture — the full Fig. 8(a) path.
#[test]
fn convolution_runs_through_the_compressed_datapath() {
    let cfg = MicroConfig::paper_downsized(4);
    // 2 filters, 4 channels, 2x2 kernel -> K = 16 = one C1 group.
    let layer = ConvLayer::new("conv", 2, 4, 2, 2, 5, 5, 1);
    assert_eq!(layer.to_gemm().k, 16);
    let weights: Vec<f32> = (0..2 * 16).map(|i| (i as f32 * 0.37).sin()).collect();
    let a_dense = layer.flatten_weights(&weights);
    let a = prune_hss(&a_dense, &cfg.pattern());
    let input: Vec<f32> = (0..4 * 25).map(|i| (i as f32 * 0.13).cos()).collect();
    let b = layer.toeplitz_expand(&input);

    let report = MicroSim::new(cfg).run(&a, &b, false);
    let reference = a.matmul(&b);
    assert!(report.output.approx_eq(&reference, 1e-3));
}

/// Compression formats round-trip on the same pruned operands the
/// accelerators consume.
#[test]
fn formats_roundtrip_on_pruned_operands() {
    let pattern = HssPattern::two_rank(Gh::new(4, 8), Gh::new(2, 4));
    let a = prune_hss(&gen::random_dense(16, 64, 9), &pattern);
    let comp = HssCompressed::encode(&a, 8, 4);
    assert_eq!(comp.decode(), a);
    assert_eq!(comp.nonzeros(), a.nonzeros());

    let b = gen::random_unstructured(64, 8, 0.6, 10);
    let sb = SparseB::encode(&b, 8, 4);
    assert_eq!(sb.decode(), b);
}

/// The specification's density bound, the generator, the pruner, and the
/// analytical model all agree on the sparsity degree.
#[test]
fn sparsity_degree_agrees_across_layers_of_the_stack() {
    let pattern = HssPattern::two_rank(Gh::new(4, 8), Gh::new(2, 4));
    let spec_density = pattern.to_spec().density_bound();
    assert!((spec_density - pattern.density_f64()).abs() < 1e-12);

    let generated = gen::random_hss(16, 64, pattern.ranks(), 4);
    assert!((generated.density() - pattern.density_f64()).abs() < 1e-12);

    let pruned = prune_hss(&gen::random_dense(16, 64, 5), &pattern);
    assert!((pruned.density() - pattern.density_f64()).abs() < 1e-12);

    let w = Workload::synthetic(
        OperandSparsity::Hss(pattern.clone()),
        OperandSparsity::Dense,
    );
    let hl = HighLight::default();
    let r = evaluate_best(&hl, &w).unwrap();
    let dense = evaluate_best(
        &hl,
        &Workload::synthetic(OperandSparsity::Dense, OperandSparsity::Dense),
    )
    .unwrap();
    assert!((r.cycles / dense.cycles - pattern.density_f64()).abs() < 1e-9);
}

/// Table 2 entries parse, display, and remain distinguishable; rules match
/// rank structure.
#[test]
fn catalog_specs_are_well_formed() {
    for entry in highlight::fibertree::catalog::table2() {
        let display = entry.spec.to_string();
        let reparsed = PatternSpec::parse(&display).unwrap();
        assert_eq!(reparsed, entry.spec);
        for rank in entry.spec.ranks() {
            if let Rule::Gh(gh) = rank.rule {
                assert!(gh.g <= gh.h);
            }
        }
    }
}
