//! Workspace smoke test: the `highlight::prelude` quickstart from the crate
//! docs (`src/lib.rs`), asserted as a plain `#[test]` so the paper-facing
//! claims stay covered even independently of the doctest harness.

use highlight::prelude::*;

#[test]
fn prelude_quickstart_holds() {
    // A two-rank HSS pattern: 62.5% sparsity from two simple patterns.
    let pattern = HssPattern::two_rank(Gh::new(3, 4), Gh::new(2, 4));
    assert_eq!(pattern.sparsity().to_string(), "5/8");
    assert!((pattern.sparsity_f64() - 0.625).abs() < 1e-12);

    // Evaluate HighLight vs the dense tensor-core baseline on a workload
    // sparse in both operands; HSS acceleration must win on EDP.
    let hl = HighLight::default();
    let tc = Tc::default();
    let w = Workload::synthetic(
        OperandSparsity::Hss(highlight_family().closest_to_density(0.25)),
        OperandSparsity::unstructured(0.5),
    );
    let fast = evaluate_best(&hl, &w).expect("HighLight supports its own family");
    let slow = evaluate_best(&tc, &w).expect("TC supports any workload (processed densely)");
    assert!(
        fast.edp() < slow.edp(),
        "HighLight EDP {:.3e} must beat TC EDP {:.3e} on the synthetic sparse workload",
        fast.edp(),
        slow.edp()
    );
}

#[test]
fn facade_crate_map_is_complete() {
    // Every workspace crate advertised in the `src/lib.rs` crate map must be
    // reachable through the façade. Touch one item from each re-export so a
    // renamed or dropped module breaks this test rather than only the docs.
    let _ = highlight::fibertree::Fibertree::from_dense(&[1.0], &[1], &["K"]).unwrap();
    let _ = highlight::tensor::Matrix::zeros(1, 1);
    let _ = highlight::sparsity::HssPattern::one_rank(highlight::sparsity::Gh::new(1, 2));
    let _ = highlight::arch::Tech::default();
    let _ = highlight::sim::Workload::synthetic(
        highlight::sim::OperandSparsity::Dense,
        highlight::sim::OperandSparsity::Dense,
    );
    let _ = highlight::core::HighLight::default();
    let _ = highlight::baselines::Tc::default();
    let _ = highlight::models::zoo::resnet50();
}
