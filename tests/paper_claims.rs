//! The paper's headline quantitative claims, asserted against the models.
//!
//! These tests pin the *shape* of the paper's results — who wins, where, by
//! roughly what factor — so regressions in any model surface immediately.

use highlight::prelude::*;
use hl_bench::{design_names, run_synthetic_sweep};
use hl_sim::geomean;

fn sweep_index(name: &str) -> usize {
    design_names().iter().position(|n| n == name).unwrap()
}

/// "HighLight always achieves the best EDP ... for all evaluated sparsity
/// degrees" (§7.2), with the abstract's qualifier that HighLight "is at EDP
/// parity for sparse DNN layers" against the sparse baselines — so best or
/// within a 2% parity band at every point.
#[test]
fn highlight_best_edp_at_every_sweep_point() {
    let sweep = run_synthetic_sweep();
    let hl = sweep_index("HighLight");
    for p in &sweep {
        let hl_edp = p.results[hl].as_ref().unwrap().edp();
        for (i, r) in p.results.iter().enumerate() {
            if let Some(r) = r {
                assert!(
                    hl_edp <= r.edp() * 1.02,
                    "at A={:.0}% B={:.0}%: HighLight EDP {hl_edp:.3e} vs {} {:.3e}",
                    p.a_sparsity * 100.0,
                    p.b_sparsity * 100.0,
                    design_names()[i],
                    r.edp()
                );
            }
        }
    }
}

/// "Compared to dense accelerators, HighLight achieves a geomean of 6.4x
/// (and up to 20.4x) lower EDP ... and is at EDP parity for dense DNN
/// layers." We assert the same order of magnitude: geomean in [3, 10],
/// max in [10, 30], parity within 15% at fully dense.
#[test]
fn highlight_vs_dense_geomean_and_parity() {
    let sweep = run_synthetic_sweep();
    let (tc, hl) = (sweep_index("TC"), sweep_index("HighLight"));
    let ratios: Vec<f64> = sweep
        .iter()
        .map(|p| p.results[tc].as_ref().unwrap().edp() / p.results[hl].as_ref().unwrap().edp())
        .collect();
    let gm = geomean(&ratios).unwrap();
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    assert!(
        (3.0..=10.0).contains(&gm),
        "geomean vs TC {gm} (paper: 6.4)"
    );
    assert!(
        (10.0..=30.0).contains(&max),
        "max vs TC {max} (paper: 20.4)"
    );

    let dense_point = sweep
        .iter()
        .find(|p| p.a_sparsity == 0.0 && p.b_sparsity == 0.0)
        .unwrap();
    let parity = dense_point.results[tc].as_ref().unwrap().edp()
        / dense_point.results[hl].as_ref().unwrap().edp();
    assert!(
        (0.85..=1.18).contains(&parity),
        "dense parity ratio {parity}"
    );
}

/// "Compared to sparse accelerators, HighLight achieves a geomean of 2.7x
/// (and up to 5.9x) lower EDP" — assert geomean in [1.5, 4] and max in
/// [3, 8] against each sparse baseline.
#[test]
fn highlight_vs_sparse_baselines() {
    let sweep = run_synthetic_sweep();
    let hl = sweep_index("HighLight");
    for name in ["STC", "DSTC", "S2TA"] {
        let idx = sweep_index(name);
        let ratios: Vec<f64> = sweep
            .iter()
            .filter_map(|p| {
                let other = p.results[idx].as_ref()?;
                Some(other.edp() / p.results[hl].as_ref().unwrap().edp())
            })
            .collect();
        let gm = geomean(&ratios).unwrap();
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        assert!(
            (1.2..=4.5).contains(&gm),
            "geomean vs {name}: {gm} (paper: 2.7 overall)"
        );
        assert!(
            max <= 8.0,
            "max vs {name}: {max} (paper: up to 5.9 overall)"
        );
    }
}

/// Fig. 2's crossover: STC beats DSTC on the near-dense-activation
/// Transformer-Big, DSTC beats STC on the sparse-activation ResNet50 —
/// while HighLight beats both on both (checked at fixed, accuracy-matched
/// sparsity choices: 2:4 for STC, unstructured for DSTC, 62.5% HSS for
/// HighLight).
#[test]
fn fig2_crossover_shape() {
    use highlight::models::accuracy::PruningConfig;
    use highlight::models::zoo;
    use hl_bench::eval_model;

    let designs = hl_bench::designs();
    let by_name = |n: &str| designs.iter().find(|d| d.name() == n).unwrap().as_ref();
    for (model, dstc_sparsity, expect_stc_wins) in [
        (zoo::transformer_big(), 0.75, true),
        (zoo::resnet50(), 0.70, false),
    ] {
        let stc = eval_model(
            by_name("STC"),
            &model,
            &PruningConfig::Hss(HssPattern::one_rank(Gh::new(2, 4))),
        )
        .edp()
        .unwrap();
        let dstc = eval_model(
            by_name("DSTC"),
            &model,
            &PruningConfig::Unstructured {
                sparsity: dstc_sparsity,
            },
        )
        .edp()
        .unwrap();
        // The accuracy-matched HighLight pattern (see the fig2 binary):
        // 66.7% sparsity (4:6 x 2:4-class member).
        let hl = eval_model(
            by_name("HighLight"),
            &model,
            &PruningConfig::Hss(highlight_family().closest_to_density(1.0 / 3.0)),
        )
        .edp()
        .unwrap();
        if expect_stc_wins {
            assert!(stc < dstc, "{}: STC should beat DSTC", model.name);
        } else {
            assert!(dstc < stc, "{}: DSTC should beat STC", model.name);
        }
        assert!(hl < stc && hl < dstc, "{}: HighLight lowest", model.name);
    }
}

/// §7.5 / Fig. 17: DSSO reaches 2x HighLight's speed at the commonly
/// supported degree (B 50% as C1(2:4)).
#[test]
fn dsso_dual_side_speed_claim() {
    let a = OperandSparsity::Hss(HssPattern::two_rank(Gh::new(4, 4), Gh::new(2, 4)));
    let b_structured = OperandSparsity::Hss(HssPattern::two_rank(Gh::new(2, 4), Gh::new(4, 4)));
    let dsso = Dsso::default()
        .evaluate(&Workload::synthetic(a.clone(), b_structured))
        .unwrap();
    let hl = HighLight::default()
        .evaluate(&Workload::synthetic(a, OperandSparsity::unstructured(0.5)))
        .unwrap();
    let ratio = hl.cycles / dsso.cycles;
    assert!(
        (ratio - 2.0).abs() < 1e-9,
        "DSSO should be exactly 2x faster, got {ratio}"
    );
}
