//! Property-based tests of the core invariants, across crates.

use highlight::fibertree::Fibertree;
use highlight::prelude::*;
use highlight::sim::micro::{MicroConfig, MicroSim};
use highlight::sparsity::prune::{prune_hss, prune_unstructured, retained_norm_fraction};
use highlight::tensor::format::{Csr, HssCompressed, SparseB};
use highlight::tensor::gen;
use proptest::prelude::*;

fn pattern_strategy() -> impl Strategy<Value = HssPattern> {
    // Two-rank patterns with reasonable G:H.
    ((1u32..=4, 4u32..=8), (1u32..=2, 2u32..=4)).prop_map(|((g1, h1), (g0, h0))| {
        HssPattern::two_rank(Gh::new(g1.min(h1), h1), Gh::new(g0.min(h0), h0))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated HSS tensors have exactly the pattern density and conform.
    #[test]
    fn generated_hss_density_is_exact(pattern in pattern_strategy(), seed in 0u64..1000) {
        let cols = pattern.group_size() * 2;
        let m = gen::random_hss(4, cols, pattern.ranks(), seed);
        prop_assert!((m.density() - pattern.density_f64()).abs() < 1e-12);
        prop_assert_eq!(gen::check_hss(&m, pattern.ranks()), None);
    }

    /// Pruning any dense matrix to a pattern yields a conformant matrix and
    /// the retained norm never exceeds 1.
    #[test]
    fn pruning_conforms_and_bounds_norm(pattern in pattern_strategy(), seed in 0u64..1000) {
        let cols = pattern.group_size() * 2;
        let dense = gen::random_dense(4, cols, seed);
        let pruned = prune_hss(&dense, &pattern);
        prop_assert_eq!(gen::check_hss(&pruned, pattern.ranks()), None);
        let r = retained_norm_fraction(&dense, &pruned);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
        // Unstructured pruning at the same degree retains at least as much.
        let un = prune_unstructured(&dense, pattern.sparsity_f64());
        prop_assert!(retained_norm_fraction(&dense, &un) >= r - 1e-9);
    }

    /// Bit-packed occupancy popcounts equal per-element nonzero counts on
    /// random matrices, over whole rows and awkward word-crossing spans —
    /// the invariant `check_hss` and the encoders' packed fast paths rely
    /// on.
    #[test]
    fn packed_popcounts_match_per_element_counts(
        rows in 1usize..5,
        cols in 1usize..200,
        sparsity in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        use highlight::tensor::bits;
        let m = gen::random_unstructured(rows, cols, sparsity, seed);
        let mut occ = Vec::new();
        for r in 0..rows {
            let row = m.row(r);
            bits::pack_occupancy(row, &mut occ);
            let len = (cols / 3).max(1);
            for (start, len) in [(0, cols), (cols / 2, len.min(cols - cols / 2)), (cols - len, len)] {
                let naive = row[start..start + len].iter().filter(|&&v| v != 0.0).count();
                prop_assert_eq!(bits::popcount_range(&occ, start, len) as usize, naive);
                let mut visited = Vec::new();
                bits::for_each_set_bit(&occ, start, len, |i| visited.push(i));
                prop_assert_eq!(visited.len(), naive);
                prop_assert!(visited.iter().all(|&i| row[start + i] != 0.0));
            }
        }
    }

    /// All three storage formats round-trip arbitrary sparse content.
    #[test]
    fn formats_roundtrip(sparsity in 0.0f64..1.0, seed in 0u64..1000) {
        let m = gen::random_unstructured(8, 32, sparsity, seed);
        prop_assert_eq!(HssCompressed::encode(&m, 4, 4).decode(), m.clone());
        prop_assert_eq!(Csr::encode(&m).decode(), m.clone());
        let b = gen::random_unstructured(32, 4, sparsity, seed + 1);
        prop_assert_eq!(SparseB::encode(&b, 4, 4).decode(), b);
    }

    /// The micro-architecture computes the exact GEMM for any supported
    /// configuration and any B sparsity, compressed or dense.
    #[test]
    fn micro_sim_equals_reference(
        h1 in 2u32..=4,
        b_sparsity in 0.0f64..0.95,
        sparse_b in any::<bool>(),
        seed in 0u64..500,
    ) {
        let cfg = MicroConfig::paper_downsized(h1);
        let k = cfg.group_words() * 2;
        let a = gen::random_hss(3, k, &[cfg.rank1, cfg.rank0], seed);
        let b = gen::random_unstructured(k, 3, b_sparsity, seed + 1);
        let report = MicroSim::new(cfg).run(&a, &b, sparse_b);
        prop_assert!(report.output.approx_eq(&a.matmul(&b), 1e-3));
    }

    /// Fibertree transforms are content-preserving: split∘flatten = id and
    /// reorder twice with the inverse permutation = id.
    #[test]
    fn fibertree_transforms_preserve_content(seed in 0u64..1000) {
        let m = gen::random_unstructured(4, 12, 0.5, seed);
        let data: Vec<f64> = m.data().iter().map(|&v| f64::from(v)).collect();
        let tree = Fibertree::from_dense(&data, &[4, 3, 4], &["A", "B", "C"]).unwrap();
        let split = tree.split_rank(2, 2).unwrap();
        let back = split.flatten_ranks(2).unwrap();
        prop_assert_eq!(back.to_dense(), tree.to_dense());
        let perm = tree.reorder(&[2, 0, 1]).unwrap();
        let inv = perm.reorder(&[1, 2, 0]).unwrap();
        prop_assert_eq!(inv.to_dense(), tree.to_dense());
    }

    /// Workload EDP metrics are consistent: ED² = EDP · latency, and the
    /// operand swap never makes `evaluate_best` worse.
    #[test]
    fn evaluation_metric_consistency(sa in 0.0f64..0.9, sb in 0.0f64..0.9) {
        let tc = Tc::default();
        let w = Workload::synthetic(
            OperandSparsity::unstructured(sa),
            OperandSparsity::unstructured(sb),
        );
        let direct = tc.evaluate(&w).unwrap();
        let best = evaluate_best(&tc, &w).unwrap();
        prop_assert!(best.edp() <= direct.edp() + 1e-30);
        prop_assert!((best.ed2() - best.edp() * best.latency_s()).abs() <= best.ed2() * 1e-12);
    }

    /// Memoized and unmemoized accelerator evaluations agree exactly: the
    /// engine's cached `evaluate_best` returns the same result as the plain
    /// call, on both the cold (miss) and warm (hit) path, for arbitrary
    /// workloads and designs.
    #[test]
    fn engine_memoization_is_transparent(
        sa in 0.0f64..0.9,
        sb in 0.0f64..0.9,
        pattern in pattern_strategy(),
        structured in any::<bool>(),
    ) {
        let engine = highlight::sim::engine::Engine::serial();
        let a = if structured {
            OperandSparsity::Hss(pattern)
        } else {
            OperandSparsity::unstructured(sa)
        };
        let w = Workload::synthetic(a, OperandSparsity::unstructured(sb));
        let designs: Vec<Box<dyn Accelerator>> =
            vec![Box::new(Tc::default()), Box::new(HighLight::default())];
        for d in &designs {
            let plain = evaluate_best(d.as_ref(), &w);
            let cold = engine.evaluate_best(d.as_ref(), &w);
            let warm = engine.evaluate_best(d.as_ref(), &w);
            prop_assert_eq!(plain.clone().ok(), cold.ok());
            prop_assert_eq!(plain.ok(), warm.ok());
        }
    }

    /// Memoized and unmemoized accuracy-surrogate evaluations agree
    /// exactly: weight synthesis, magnitude-order, and retention caches are
    /// all keyed on every input the evaluation reads.
    #[test]
    fn retention_memoization_is_transparent(
        pattern in pattern_strategy(),
        sparsity in 0.0f64..0.95,
        structured in any::<bool>(),
        k in 1usize..8,
    ) {
        use highlight::models::accuracy::{
            accuracy_loss, accuracy_loss_cached, PruningConfig, RetentionCache,
        };
        use highlight::models::{DnnModel, LayerKind, LayerSpec};

        let cfg = if structured {
            PruningConfig::Hss(pattern)
        } else {
            PruningConfig::Unstructured { sparsity }
        };
        let model = DnnModel {
            name: "prop".into(),
            metric: "top-1 %",
            dense_accuracy: 70.0,
            sensitivity: 1.0,
            layers: vec![LayerSpec::new(
                "l",
                LayerKind::Linear,
                GemmShape::new(16, k * 64, 8),
                1,
                true,
                0.0,
            )],
        };
        let cache = RetentionCache::new();
        let plain = accuracy_loss(&model, &cfg);
        let cold = accuracy_loss_cached(&model, &cfg, &cache);
        let warm = accuracy_loss_cached(&model, &cfg, &cache);
        prop_assert_eq!(plain, cold);
        prop_assert_eq!(plain, warm);
    }
}
