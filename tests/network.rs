//! Network-evaluation invariants, across crates:
//!
//! - the [`hl_sim::network::NetworkEval`] aggregates are exactly the sum
//!   of per-layer [`hl_sim::evaluate_best`] results (× multiplicities)
//!   for random models (proptest);
//! - layer evaluation is order- and scheduling-invariant: the serial
//!   reference and the engine at any worker count produce byte-identical
//!   `NetworkEval`s (`HL_THREADS` only feeds the default pool size, so
//!   pinning explicit counts covers every value it could take).

use highlight::models::accuracy::PruningConfig;
use highlight::models::{zoo, DnnModel, LayerKind, LayerSpec};
use highlight::prelude::*;
use highlight::sim::engine::Engine;
use highlight::sim::network::evaluate_network;
use hl_bench::{designs, DesignMapping, SweepContext};
use proptest::prelude::*;

/// A small random model: linear layers with K a multiple of 32 so every
/// design's HSS group sizes divide the reduction dimension.
fn model_strategy() -> impl Strategy<Value = DnnModel> {
    (1usize..=4, 0u64..1000).prop_map(|(n_layers, seed)| {
        let layers = (0..n_layers)
            .map(|i| {
                let s = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407 + i as u64 * 0x9E3779B9);
                let m = 8 * (1 + (s % 4) as usize);
                let k = 32 * (1 + ((s >> 8) % 3) as usize);
                let n = 4 * (1 + ((s >> 16) % 5) as usize);
                let count = 1 + ((s >> 24) % 3) as u32;
                let prunable = (s >> 32) % 4 != 0;
                let act = [0.0, 0.25, 0.6][((s >> 40) % 3) as usize];
                LayerSpec::new(
                    format!("layer{i}"),
                    LayerKind::Linear,
                    GemmShape::new(m, k, n),
                    count,
                    prunable,
                    act,
                )
            })
            .collect();
        DnnModel {
            name: "random".into(),
            metric: "top-1 %",
            dense_accuracy: 75.0,
            sensitivity: 1.0,
            layers,
        }
    })
}

fn config_for(index: u8) -> PruningConfig {
    match index % 4 {
        0 => PruningConfig::Dense,
        1 => PruningConfig::Unstructured { sparsity: 0.5 },
        2 => PruningConfig::Hss(HssPattern::one_rank(Gh::new(2, 4))),
        _ => PruningConfig::Hss(HssPattern::two_rank(Gh::new(4, 8), Gh::new(2, 4))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `NetworkEval` aggregate cycles/energy are exactly (bit-for-bit) the
    /// layer-order sum of per-layer `evaluate_best` results × counts.
    #[test]
    fn aggregates_equal_per_layer_evaluate_best_sums(
        model in model_strategy(),
        config_index in 0u8..4,
    ) {
        let config = config_for(config_index);
        let engine = Engine::with_threads(3);
        for design in designs() {
            let mapping = DesignMapping::new(design.name()).unwrap();
            let network = model.lower(&config, &mapping);
            let eval = engine.evaluate_network(design.as_ref(), &network);

            let mut cycles = 0.0f64;
            let mut energy_j = 0.0f64;
            let mut all_supported = true;
            for layer in &network.layers {
                match highlight::sim::evaluate_best(design.as_ref(), &layer.workload) {
                    Ok(r) => {
                        cycles += r.cycles * f64::from(layer.count);
                        energy_j += r.energy_j() * f64::from(layer.count);
                    }
                    Err(_) => all_supported = false,
                }
            }
            if all_supported {
                prop_assert_eq!(eval.cycles(), Some(cycles));
                prop_assert_eq!(eval.energy_j(), Some(energy_j));
            } else {
                prop_assert_eq!(eval.cycles(), None);
                prop_assert_eq!(eval.energy_j(), None);
            }
        }
    }

    /// Serial vs engine, at any worker count: byte-identical NetworkEvals.
    #[test]
    fn layer_evaluation_is_scheduling_invariant(
        model in model_strategy(),
        config_index in 0u8..4,
    ) {
        let config = config_for(config_index);
        for design in designs() {
            let mapping = DesignMapping::new(design.name()).unwrap();
            let network = model.lower(&config, &mapping);
            let reference = evaluate_network(design.as_ref(), &network);
            for threads in [1usize, 2, 5, 8] {
                let engine = Engine::with_threads(threads);
                prop_assert_eq!(
                    &engine.evaluate_network(design.as_ref(), &network),
                    &reference
                );
            }
        }
    }
}

/// The real zoo models through the two `SweepContext` modes: the engine
/// path (memoized, pooled) must reproduce the uncached serial baseline
/// exactly — per layer, not just in aggregate.
#[test]
fn zoo_models_evaluate_identically_in_both_context_modes() {
    let serial = SweepContext::serial_baseline();
    let pooled = SweepContext::with_engine(Engine::with_threads(4));
    let config = PruningConfig::Hss(HssPattern::one_rank(Gh::new(2, 4)));
    for model in zoo::all_models() {
        for design in designs() {
            let a = serial.eval_network(design.as_ref(), &model, &config);
            let b = pooled.eval_network(design.as_ref(), &model, &config);
            assert_eq!(a, b, "{} on {}", design.name(), model.name);
            // Replay from the warm cache is still identical.
            let c = pooled.eval_network(design.as_ref(), &model, &config);
            assert_eq!(b, c, "warm replay: {} on {}", design.name(), model.name);
        }
    }
}
