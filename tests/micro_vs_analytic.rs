//! Cross-validation: the analytical HighLight model's cycle behaviour must
//! match the functional micro-architecture simulator, scaled by the MAC
//! count ratio. This anchors the Fig. 13/14 numbers to a datapath that
//! provably computes correct GEMMs.

use highlight::prelude::*;
use highlight::sim::micro::{MicroConfig, MicroSim};
use highlight::tensor::gen;

/// The micro-sim has `G1·G0 = 4` MACs; the analytical model has 1024. Both
/// should show the *same cycle factor relative to their dense baseline* for
/// the same pattern density.
#[test]
fn cycle_factors_agree_between_models() {
    for h1 in 2..=4u32 {
        let cfg = MicroConfig::paper_downsized(h1);
        let (m, n) = (4usize, 8usize);
        let k = cfg.group_words() * 4;
        let a = gen::random_hss(m, k, &[cfg.rank1, cfg.rank0], u64::from(h1));
        let b = gen::random_dense(k, n, 99);
        let micro = MicroSim::new(cfg).run(&a, &b, false);
        let micro_factor = micro.counts.cycles as f64 / ((m * k * n) as f64 / 4.0);

        // Analytical model on a larger workload with the equivalent pattern
        // density mapped into HighLight's supported family.
        let density = cfg.pattern().density_f64();
        let pattern = highlight_family().closest_to_density(density);
        assert!(
            (pattern.density_f64() - density).abs() < 1e-9,
            "density {density} representable"
        );
        let w = Workload::synthetic(OperandSparsity::Hss(pattern), OperandSparsity::Dense);
        let hl = HighLight::default().evaluate(&w).unwrap();
        let dense = HighLight::default()
            .evaluate(&Workload::synthetic(
                OperandSparsity::Dense,
                OperandSparsity::Dense,
            ))
            .unwrap();
        let analytic_factor = hl.cycles / dense.cycles;

        // The analytic model rounds cycles up to whole cycles; allow that.
        assert!(
            (micro_factor - analytic_factor).abs() < 1e-5,
            "H1={h1}: micro factor {micro_factor} vs analytic {analytic_factor}"
        );
    }
}

/// The micro-simulator's RF and mux action counts follow the analytical
/// accounting rules (2 RF accesses per step; G1/G1·G0 selects per step).
#[test]
fn action_count_rules_hold() {
    let cfg = MicroConfig::paper_downsized(4);
    let (m, n) = (2usize, 4usize);
    let k = cfg.group_words() * 2;
    let a = gen::random_hss(m, k, &[cfg.rank1, cfg.rank0], 5);
    let b = gen::random_dense(k, n, 6);
    let r = MicroSim::new(cfg).run(&a, &b, false);
    let steps = r.counts.cycles;
    assert_eq!(r.counts.rf_accesses, 2 * steps);
    assert_eq!(r.counts.mux_r1_selects, 2 * steps);
    assert_eq!(r.counts.mux_r0_selects, 4 * steps);
    // Dense B: every value read through the VFMU once per (m, n) walk.
    assert_eq!(r.counts.glb_b_word_reads, (m * n * k) as u64);
}

/// Gating on sparse operand B reduces MAC energy in the analytical model by
/// the same fraction the micro-simulator measures.
#[test]
fn gating_fractions_agree() {
    let cfg = MicroConfig::paper_downsized(4);
    let (m, n) = (8usize, 16usize);
    let k = cfg.group_words() * 4;
    let a = gen::random_hss(m, k, &[cfg.rank1, cfg.rank0], 11);
    let b = gen::random_unstructured(k, n, 0.5, 12);
    let r = MicroSim::new(cfg).run(&a, &b, true);
    let active_fraction = r.counts.macs as f64 / (r.counts.macs + r.counts.gated_macs) as f64;
    // Expected: B density (0.5) within sampling tolerance.
    assert!(
        (active_fraction - 0.5).abs() < 0.08,
        "measured active fraction {active_fraction}"
    );
}
