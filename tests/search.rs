//! Co-design search invariants (§7.1.2), across crates:
//!
//! - the returned Pareto front is actually non-dominated over
//!   `(accuracy loss, EDP)`;
//! - the whole [`hl_bench::SearchOutcome`] is byte-identical for any
//!   worker count — `HL_THREADS` only feeds the default pool size, so
//!   pinning explicit counts (plus the uncached serial baseline) covers
//!   every value it could take;
//! - the budgeted best point matches a serial brute-force reference over
//!   the same candidate grid, evaluated with the plain uncached pipeline;
//! - degenerate configurations (fully-pruned operands) are `Unsupported`
//!   on every design instead of a panic — the hardening the search's
//!   extreme candidates rely on.

use std::sync::OnceLock;

use highlight::models::accuracy::{accuracy_loss, PruningConfig};
use highlight::models::{zoo, DnnModel, LayerKind, LayerSpec};
use highlight::prelude::*;
use highlight::sim::engine::Engine;
use highlight::sim::pareto::dominates;
use hl_bench::search::codesign_space;
use hl_bench::{designs, eval_model, SearchOutcome, SweepContext};
use proptest::prelude::*;

/// A 2-layer model small enough to brute-force with the uncached serial
/// pipeline (one dense layer so partially-supporting designs still show
/// per-layer behaviour).
fn small_model() -> DnnModel {
    DnnModel {
        name: "tiny".into(),
        metric: "top-1 %",
        dense_accuracy: 75.0,
        sensitivity: 1.2,
        layers: vec![
            LayerSpec::new(
                "body",
                LayerKind::Linear,
                GemmShape::new(64, 128, 64),
                2,
                true,
                0.5,
            ),
            LayerSpec::new(
                "head",
                LayerKind::Linear,
                GemmShape::new(32, 64, 16),
                1,
                false,
                0.0,
            ),
        ],
    }
}

/// One shared warm context: repeated searches replay from its memo
/// tables, keeping the proptest re-runs cheap.
fn shared_ctx() -> &'static SweepContext {
    static CTX: OnceLock<SweepContext> = OnceLock::new();
    CTX.get_or_init(|| SweepContext::with_engine(Engine::with_threads(2)))
}

/// One shared search outcome (HighLight on DeiT-small at a 0.5-point
/// budget) — several tests assert different invariants of the same run.
fn deit_outcome() -> &'static SearchOutcome {
    static OUTCOME: OnceLock<SearchOutcome> = OnceLock::new();
    OUTCOME.get_or_init(|| {
        let design = hl_bench::design_by_name("HighLight").unwrap();
        shared_ctx().codesign(design.as_ref(), &zoo::deit_small(), 0.5)
    })
}

#[test]
fn front_is_non_dominated() {
    let out = deit_outcome();
    assert!(!out.points.is_empty());
    assert_eq!(out.candidates, out.points.len() + out.unsupported);
    let front = out.front();
    assert!(!front.is_empty());
    for a in &front {
        for b in &out.points {
            assert!(
                !dominates((b.loss, b.edp), (a.loss, a.edp)),
                "front point {} is dominated by {}",
                a.label,
                b.label
            );
        }
    }
    // Conversely, every non-front point is dominated by someone.
    for p in out.points.iter().filter(|p| !p.on_front) {
        assert!(
            out.points
                .iter()
                .any(|q| dominates((q.loss, q.edp), (p.loss, p.edp))),
            "{} marked off-front but undominated",
            p.label
        );
    }
}

#[test]
fn outcome_is_thread_count_invariant() {
    let design = hl_bench::design_by_name("HighLight").unwrap();
    let model = zoo::deit_small();
    let reference = deit_outcome();
    for threads in [1usize, 2, 8] {
        let ctx = SweepContext::with_engine(Engine::with_threads(threads));
        let out = ctx.codesign(design.as_ref(), &model, 0.5);
        assert_eq!(&out, reference, "{threads}-thread search must be identical");
    }
    // The uncached serial baseline agrees too (memo transparency).
    let out = SweepContext::serial_baseline().codesign(design.as_ref(), &model, 0.5);
    assert_eq!(&out, reference);
}

#[test]
fn budget_best_matches_serial_brute_force() {
    let model = small_model();
    let budget = 0.4;
    for name in ["HighLight", "DSTC", "STC"] {
        let design = hl_bench::design_by_name(name).unwrap();
        let ctx = SweepContext::with_engine(Engine::with_threads(4));
        let out = ctx.codesign(design.as_ref(), &model, budget);

        // Brute force: the same candidate grid, evaluated one by one with
        // the plain uncached pipeline and a hand-rolled argmin.
        let tc = hl_bench::design_by_name("TC").unwrap();
        let tc_edp = eval_model(tc.as_ref(), &model, &PruningConfig::Dense)
            .edp()
            .unwrap();
        let mut best: Option<(String, f64, f64)> = None;
        let mut supported = 0usize;
        for cfg in codesign_space(name).unwrap() {
            let loss = accuracy_loss(&model, &cfg);
            let Some(edp) = eval_model(design.as_ref(), &model, &cfg).edp() else {
                continue;
            };
            let edp = edp / tc_edp;
            supported += 1;
            if loss > budget {
                continue;
            }
            // Same tie rules as the search: lower EDP, then lower loss,
            // then enumeration order.
            let better = match &best {
                None => true,
                Some((_, b_loss, b_edp)) => edp < *b_edp || (edp == *b_edp && loss < *b_loss),
            };
            if better {
                best = Some((cfg.to_string(), loss, edp));
            }
        }
        assert_eq!(out.points.len(), supported, "{name}");
        match (out.best_point(), best) {
            (Some(p), Some((label, loss, edp))) => {
                assert_eq!(p.label, label, "{name}");
                assert_eq!(p.loss, loss, "{name}: loss must be bit-identical");
                assert_eq!(p.edp, edp, "{name}: EDP must be bit-identical");
            }
            (None, None) => {}
            (got, want) => panic!("{name}: best mismatch: got {got:?}, want {want:?}"),
        }
    }
}

#[test]
fn fully_pruned_operands_are_unsupported_on_every_design() {
    let empty_a = Workload::synthetic(OperandSparsity::unstructured(1.0), OperandSparsity::Dense);
    let empty_b = Workload::synthetic(OperandSparsity::Dense, OperandSparsity::unstructured(1.0));
    for design in designs() {
        for w in [&empty_a, &empty_b] {
            let err = evaluate_best(design.as_ref(), w)
                .expect_err(&format!("{} must reject density 0", design.name()));
            assert!(err.reason.contains("degenerate"), "{}", err);
        }
    }
    // Through the network pipeline: prunable layers report Unsupported
    // per layer, the dense layer still evaluates.
    let model = small_model();
    let dstc = hl_bench::design_by_name("DSTC").unwrap();
    let eval = eval_model(
        dstc.as_ref(),
        &model,
        &PruningConfig::Unstructured { sparsity: 1.0 },
    );
    assert!(!eval.supported());
    assert_eq!(eval.edp(), None);
    assert!(eval.layers[0].outcome.is_err(), "pruned layer rejected");
    assert!(eval.layers[1].outcome.is_ok(), "dense layer still runs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any budget, the budgeted best is exactly the argmin-EDP point
    /// among the within-budget points (ties to lower loss, then
    /// enumeration order), it sits on the Pareto front, and recomputing
    /// the search at that budget only re-labels budget membership.
    #[test]
    fn budget_best_is_argmin_edp_within_budget(budget in 0.0f64..3.0) {
        let out = deit_outcome();
        let within: Vec<_> = out
            .points
            .iter()
            .filter(|p| p.loss <= budget)
            .collect();
        let expect = within.iter().copied().reduce(|a, b| {
            if b.edp < a.edp || (b.edp == a.edp && b.loss < a.loss) {
                b
            } else {
                a
            }
        });
        // Recompute with the shared caches warm: same points, new budget.
        let design = hl_bench::design_by_name("HighLight").unwrap();
        let rerun = shared_ctx().codesign(design.as_ref(), &zoo::deit_small(), budget);
        prop_assert_eq!(rerun.points.len(), out.points.len());
        match (rerun.best_point(), expect) {
            (Some(got), Some(want)) => {
                prop_assert_eq!(&got.label, &want.label);
                prop_assert!(got.within_budget && got.on_front);
            }
            (None, None) => {}
            (got, want) => {
                return Err(TestCaseError::fail(format!(
                    "best mismatch: got {got:?}, want {want:?}"
                )));
            }
        }
    }
}
