//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the exact API subset the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`], [`Rng::gen_bool`]
//! and [`seq::SliceRandom::shuffle`] — on top of a SplitMix64 generator.
//! It is deterministic per seed, which is all the workload generators
//! require; it makes no cryptographic or statistical-quality claims beyond
//! what SplitMix64 provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform value in the given range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        self.next_f64() < p
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits, the standard uniform-in-[0,1) recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Returns a uniform `f64` in `[0, 1]` (both endpoints reachable),
    /// for inclusive-range sampling.
    fn next_f64_inclusive(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1]` (both endpoints reachable),
    /// for inclusive-range sampling.
    fn next_f32_inclusive(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / ((1u64 << 24) - 1) as f32)
    }
}

/// A range that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range_impls {
    ($($t:ty, $next:ident, $next_incl:ident);* $(;)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + rng.$next() * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // The [0,1]-inclusive base keeps `hi` reachable, matching
                // real rand's `..=` semantics.
                lo + rng.$next_incl() * (hi - lo)
            }
        }
    )*};
}

float_range_impls! {
    f32, next_f32, next_f32_inclusive;
    f64, next_f64, next_f64_inclusive;
}

macro_rules! int_range_impls {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (uniform_u128(rng, span) as i128)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (uniform_u128(rng, span) as i128)) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` via rejection sampling (span ≤ 2^64).
fn uniform_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == (1u128 << 64) {
        return rng.next_u64() as u128;
    }
    let span64 = span as u64;
    // Largest multiple of span that fits in u64; rejection keeps uniformity.
    let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Unlike the real `rand::rngs::StdRng` this is *not* ChaCha-based, but
    /// it honours the same contract the workspace relies on: identical seeds
    /// give identical streams, distinct seeds give distinct streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): passes BigCrush, one
            // u64 of state, trivially seedable.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Extension trait for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(0.05f32..=1.0);
            assert!((0.05..=1.0).contains(&f));
            let g = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&g));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn inclusive_float_ranges_reach_both_endpoints() {
        // Extreme raw outputs must map to the exact range endpoints.
        struct Fixed(u64);
        impl Rng for Fixed {
            fn next_u64(&mut self) -> u64 {
                self.0
            }
        }
        assert_eq!(Fixed(u64::MAX).gen_range(0.05f32..=1.0), 1.0);
        assert_eq!(Fixed(0).gen_range(0.05f32..=1.0), 0.05);
        assert_eq!(Fixed(u64::MAX).gen_range(-2.0f64..=3.0), 3.0);
        assert_eq!(Fixed(0).gen_range(-2.0f64..=3.0), -2.0);
        // Degenerate single-point range.
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(rng.gen_range(0.25f64..=0.25), 0.25);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
