//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no crates.io access, so this shim implements
//! the API subset the workspace's property tests use:
//!
//! - the [`proptest!`] macro, including a leading
//!   `#![proptest_config(...)]` attribute;
//! - [`Strategy`] for numeric ranges, tuples of strategies, and the
//!   [`Strategy::prop_map`] combinator;
//! - [`arbitrary::any`] for types with an [`arbitrary::Arbitrary`] impl;
//! - [`prop_assert!`] / [`prop_assert_eq!`], which fail the current case
//!   with the sampled inputs echoed in the panic message.
//!
//! Cases are sampled deterministically (the RNG seed derives from the test
//! name), so failures reproduce across runs. Unlike the real proptest there
//! is **no shrinking**: a failing case reports the sampled values as-is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; keep parity.
        ProptestConfig { cases: 256 }
    }
}

/// Why a single property case failed, mirroring
/// `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was falsified with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Result of one property case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The source of randomness handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A deterministic RNG for the named test: the seed derives from the
    /// test name so distinct properties explore distinct streams while every
    /// run of the same property is reproducible.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Draws a raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Draws a uniform sample from a range.
    pub fn sample_range<T, R>(&mut self, range: R) -> T
    where
        R: rand::SampleRange<T>,
    {
        self.0.gen_range(range)
    }
}

/// A generator of values for one property parameter, mirroring
/// `proptest::strategy::Strategy` (without shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy_impls {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
    )*};
}

range_strategy_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy_impls {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy_impls! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// `any::<T>()` support, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Samples one canonical value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_full_range {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_full_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The items property tests conventionally glob-import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(param in strategy, ...)` item expands to a `#[test]` that
/// samples the strategies [`ProptestConfig::cases`] times and runs the body;
/// `prop_assert*` failures panic with the case number and sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expands each property into a
/// plain test function. Parameters must be plain identifiers (the real
/// proptest also accepts patterns; this shim does not).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                // Render the sampled inputs before the body can move them.
                let inputs = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                    $(&$arg),+
                );
                let result: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "property `{}` falsified at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled() -> impl Strategy<Value = u32> {
        (1u32..10).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u64..17, f in 0.25f64..=0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn tuples_and_map_compose(pair in (1u32..5, 5u32..9), d in doubled()) {
            let (a, b) = pair;
            prop_assert!(a < b);
            prop_assert_eq!(d % 2, 0);
            prop_assert_ne!(d, 1);
        }

        #[test]
        fn any_bool_samples_valid_values(flag in any::<bool>()) {
            prop_assert!(u8::from(flag) <= 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..=255) {
            prop_assert!(u32::from(x) < 256);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            // No #[test] attribute here: the fn is invoked manually below
            // (a nested #[test] would be unnameable to the harness).
            proptest! {
                fn always_fails(x in 0u32..4) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("falsified"), "unexpected panic: {msg}");
        assert!(msg.contains("inputs: x ="), "unexpected panic: {msg}");
    }
}
