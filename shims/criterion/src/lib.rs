//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim implements
//! the API subset the workspace's benches use — [`Criterion`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BenchmarkGroup`],
//! [`criterion_group!`] and [`criterion_main!`] — as a simple wall-clock
//! harness. Each benchmark warms up briefly, then runs timed batches for a
//! fixed measurement window and reports the mean time per iteration. It has
//! no statistical analysis, plotting or baseline comparison; swap in the
//! real criterion once registry access is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` for benches that import it
/// from here rather than `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises setup cost. The shim times routine calls
/// individually, so the variants only tune the batch length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input: batches of many iterations.
    SmallInput,
    /// Large routine input: moderate batches.
    LargeInput,
    /// Setup re-run for every single iteration.
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> usize {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        }
    }
}

/// The benchmark driver handed to every registered bench function.
pub struct Criterion {
    /// Nominal sample count (API compatibility; the shim measures by
    /// wall-clock window rather than sample count).
    pub sample_size: usize,
    /// Wall-clock measurement window per benchmark.
    pub measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some((iters, total)) => {
                let per_iter = total / iters.max(1) as u32;
                println!(
                    "bench {id:<44} {:>12} / iter ({iters} iters)",
                    fmt_duration(per_iter)
                );
            }
            None => println!("bench {id:<44} (no measurement)"),
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count (kept for API compatibility; the shim
    /// measures by wall-clock window, not sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        self.parent.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures; handed to the user callback by [`Criterion::bench_function`].
pub struct Bencher {
    measurement_time: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement window elapses.
    ///
    /// Calls are timed in batches sized so each batch spans well over a
    /// clock-read, keeping `Instant` overhead out of the per-iteration
    /// figure even for nanosecond-scale routines.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + batch calibration: grow the batch until one timed
        // batch takes at least ~20 µs (hundreds of clock-read costs).
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            if start.elapsed() >= Duration::from_micros(20) || batch >= (1 << 20) {
                break;
            }
            batch *= 2;
        }
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        while total < self.measurement_time {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.report = Some((iters, total));
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        let batch = size.batch_len();
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        while total < self.measurement_time {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std_black_box(routine(input));
            }
            total += start.elapsed();
            iters += batch as u64;
        }
        self.report = Some((iters, total));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("smoke/iter", |b| b.iter(|| std_black_box(2 + 2)));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(
                || vec![1u32; 8],
                |v| {
                    ran = true;
                    v.iter().sum::<u32>()
                },
                BatchSize::SmallInput,
            )
        });
        assert!(ran);
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| std_black_box(1)));
        group.finish();
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00 s");
    }
}
