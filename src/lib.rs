//! # HighLight — hierarchical structured sparsity for DNN acceleration
//!
//! A from-scratch Rust reproduction of *HighLight: Efficient and Flexible
//! DNN Acceleration with Hierarchical Structured Sparsity* (Wu et al.,
//! MICRO 2023). This façade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`fibertree`] | `hl-fibertree` | fibertree abstraction + precise sparsity specification (§3) |
//! | [`tensor`] | `hl-tensor` | matrices, Toeplitz expansion, CP/sparse-B/CSR formats (§6) |
//! | [`sparsity`] | `hl-sparsity` | HSS patterns, degree composition, sparsification (§4) |
//! | [`arch`] | `hl-arch` | 65 nm-class component energy/area models (§7.1.3) |
//! | [`sim`] | `hl-sim` | `Accelerator` trait, balance models, functional micro-simulator (§6) |
//! | [`core`] | `highlight-core` | the HighLight accelerator + DSSO (§5–6, §7.5) |
//! | [`baselines`] | `hl-baselines` | TC / STC / S2TA / DSTC models (§7.1.1) |
//! | [`models`] | `hl-models` | ResNet50 / DeiT-small / Transformer-Big + accuracy surrogate (§7.1.2) |
//!
//! # Quickstart
//!
//! ```
//! use highlight::prelude::*;
//!
//! // A two-rank HSS pattern: 62.5% sparsity from two simple patterns.
//! let pattern = HssPattern::two_rank(Gh::new(3, 4), Gh::new(2, 4));
//! assert_eq!(pattern.sparsity().to_string(), "5/8");
//!
//! // Evaluate HighLight vs the dense baseline on a sparse workload.
//! let hl = HighLight::default();
//! let tc = Tc::default();
//! let w = Workload::synthetic(
//!     OperandSparsity::Hss(highlight_family().closest_to_density(0.25)),
//!     OperandSparsity::unstructured(0.5),
//! );
//! let fast = evaluate_best(&hl, &w)?;
//! let slow = evaluate_best(&tc, &w)?;
//! assert!(fast.edp() < slow.edp());
//! # Ok::<(), highlight::sim::Unsupported>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the binaries regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use highlight_core as core;
pub use hl_arch as arch;
pub use hl_baselines as baselines;
pub use hl_fibertree as fibertree;
pub use hl_models as models;
pub use hl_sim as sim;
pub use hl_sparsity as sparsity;
pub use hl_tensor as tensor;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use highlight_core::{Dsso, HighLight, HighLightConfig};
    pub use hl_baselines::{Dstc, S2ta, Stc, Tc};
    pub use hl_fibertree::spec::{Gh, PatternSpec};
    pub use hl_fibertree::Fibertree;
    pub use hl_sim::{
        evaluate_best, Accelerator, EvalResult, OperandSparsity, Unsupported, Workload,
    };
    pub use hl_sparsity::{HssPattern, Ratio};
    pub use hl_tensor::{GemmShape, Matrix};

    /// HighLight's supported operand A family
    /// ([`hl_sparsity::families::highlight_a`]).
    pub fn highlight_family() -> hl_sparsity::families::HssFamily {
        hl_sparsity::families::highlight_a()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let hl = HighLight::default();
        let w = Workload::synthetic(OperandSparsity::Dense, OperandSparsity::Dense);
        assert!(evaluate_best(&hl, &w).is_ok());
        assert_eq!(Gh::new(2, 4).density(), 0.5);
    }
}
