//! Quickstart: define an HSS pattern, sparsify a tensor with the paper's
//! rules, verify conformance, compress it, and compare HighLight against
//! the dense baseline on the resulting workload.
//!
//! Run with: `cargo run --release --example quickstart`

use highlight::prelude::*;
use highlight::sparsity::prune::{prune_hss, retained_norm_fraction};
use highlight::tensor::format::HssCompressed;
use highlight::tensor::gen;

fn main() {
    // 1. A two-rank HSS pattern: C1(4:8)→C0(2:4) -> 75% sparsity, composed
    //    from two simple G:H patterns (the paper's key idea).
    let pattern = HssPattern::two_rank(Gh::new(4, 8), Gh::new(2, 4));
    println!("pattern      : {pattern}");
    println!(
        "density      : {} = {:.3}",
        pattern.density(),
        pattern.density_f64()
    );
    println!(
        "ideal speedup: {:.1}x (product of per-rank H/G)",
        pattern.ideal_speedup()
    );
    println!("fibertree    : {}", pattern.to_spec());

    // 2. Sparsify a dense matrix rank-by-rank (magnitude at Rank0,
    //    scaled-L2 at Rank1) and check what survives.
    let dense = gen::random_dense(64, 256, 7);
    let pruned = prune_hss(&dense, &pattern);
    println!(
        "\npruned 64x256: {:.1}% sparse, retained norm {:.1}%",
        pruned.sparsity() * 100.0,
        retained_norm_fraction(&dense, &pruned) * 100.0
    );
    assert_eq!(
        gen::check_hss(&pruned, pattern.ranks()),
        None,
        "conformant by construction"
    );

    // 3. Compress with the hierarchical CP format (Fig. 9) — lossless.
    let compressed = HssCompressed::encode(&pruned, 8, 4);
    println!(
        "compressed   : {} values + {} metadata bits (dense: {} values)",
        compressed.nonzeros(),
        compressed.metadata_bits(),
        64 * 256
    );
    assert_eq!(compressed.decode(), pruned);

    // 4. Evaluate the accelerators on this sparsity configuration.
    let w = Workload::synthetic(
        OperandSparsity::Hss(pattern),
        OperandSparsity::unstructured(0.5), // ReLU-like activations
    );
    let hl = evaluate_best(&HighLight::default(), &w).expect("supported");
    let tc = evaluate_best(&Tc::default(), &w).expect("dense always runs");
    println!(
        "\nHighLight vs TC on {w}:\n  speedup {:.2}x | energy {:.2}x lower | EDP {:.2}x lower",
        tc.cycles / hl.cycles,
        tc.energy_j() / hl.energy_j(),
        tc.edp() / hl.edp()
    );
}
