//! Sparsify ResNet50 to every HighLight-supported degree and report the
//! accuracy/efficiency trade-off — the workflow a model developer would run
//! before deploying on HighLight (paper §4.2 + §7.3).
//!
//! Run with: `cargo run --release --example sparsify_model`

use std::collections::BTreeSet;

use highlight::models::accuracy::{accuracy_loss, PruningConfig};
use highlight::models::zoo;
use highlight::prelude::*;

fn main() {
    let model = zoo::resnet50();
    println!("{model}");
    println!(
        "avg activation sparsity: {:.0}%\n",
        model.avg_activation_sparsity() * 100.0
    );

    let hl = HighLight::default();
    let tc = Tc::default();

    // Dense reference EDP over the whole network.
    let eval = |design: &dyn Accelerator, cfg: &PruningConfig| -> Option<(f64, f64)> {
        let mut energy = 0.0;
        let mut latency = 0.0;
        for layer in &model.layers {
            let a = match (layer.prunable, cfg) {
                (true, PruningConfig::Hss(p)) => OperandSparsity::Hss(p.clone()),
                _ => OperandSparsity::Dense,
            };
            let b = if layer.activation_sparsity > 0.0 {
                OperandSparsity::unstructured(layer.activation_sparsity)
            } else {
                OperandSparsity::Dense
            };
            let w = Workload::new(layer.name.clone(), layer.shape, a, b);
            let r = evaluate_best(design, &w).ok()?;
            energy += r.energy_j() * f64::from(layer.count);
            latency += r.latency_s() * f64::from(layer.count);
        }
        Some((energy, latency))
    };
    let (te, tl) = eval(&tc, &PruningConfig::Dense).expect("TC runs dense");
    let tc_edp = te * tl;

    println!(
        "{:>22} {:>10} {:>12} {:>12} {:>12}",
        "pattern", "sparsity%", "est. loss", "EDP vs TC", "speedup"
    );
    let mut seen = BTreeSet::new();
    let mut patterns: Vec<HssPattern> = highlight_family()
        .patterns()
        .into_iter()
        .filter(|p| seen.insert(p.density()))
        .collect();
    patterns.sort_by_key(|p| std::cmp::Reverse(p.density()));
    for p in patterns {
        let cfg = PruningConfig::Hss(p.clone());
        let loss = accuracy_loss(&model, &cfg);
        let (e, l) = eval(&hl, &cfg).expect("supported");
        println!(
            "{:>22} {:>10.1} {:>12.2} {:>12.3} {:>11.2}x",
            p.to_string(),
            p.sparsity_f64() * 100.0,
            loss,
            e * l / tc_edp,
            tl / l
        );
    }
    println!("\nPick the sparsest pattern whose estimated loss meets your accuracy budget.");
}
