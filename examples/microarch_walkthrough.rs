//! Walk through the down-sized HighLight micro-architecture of §6 on real
//! data: hierarchical CP compression (Fig. 9), the VFMU's variable shifts
//! (Fig. 11), and sparse-operand-B gating with fetch skipping (Fig. 12) —
//! then verify the datapath computes the exact GEMM.
//!
//! Run with: `cargo run --release --example microarch_walkthrough`

use highlight::sim::micro::{MicroConfig, MicroSim};
use highlight::tensor::gen;

fn main() {
    // The paper's walkthrough hardware: 2 PEs x 2 MACs, C1(2:3)→C0(2:4).
    let cfg = MicroConfig::paper_downsized(3);
    println!(
        "config: {} PEs x {} MACs, pattern {}, group = {} words",
        cfg.pes(),
        cfg.macs_per_pe(),
        cfg.pattern(),
        cfg.group_words()
    );

    let k = cfg.group_words() * 4;
    let a = gen::random_hss(4, k, &[cfg.rank1, cfg.rank0], 1);
    let b = gen::random_unstructured(k, 8, 0.5, 2);

    let report = MicroSim::new(cfg).run(&a, &b, true);
    println!("\nVFMU walk for output (0,0) — shifts follow the Fig. 12 metadata:");
    for t in &report.first_walk {
        println!(
            "  group {}: shift {:>2} values, fetched {:>2}{}",
            t.group,
            t.shift_words,
            t.fetched_words,
            if t.fetch_skipped {
                "  <- GLB fetch skipped (enough valid words)"
            } else {
                ""
            }
        );
    }

    let c = &report.counts;
    println!("\ncycles            : {}", c.cycles);
    println!("effectual MACs    : {}", c.macs);
    println!(
        "gated MAC slots   : {} (B zeros, energy saved, cycles unchanged)",
        c.gated_macs
    );
    println!(
        "GLB B words       : {} (compressed stream)",
        c.glb_b_word_reads
    );
    println!("fetches skipped   : {}", c.fetches_skipped);
    println!(
        "rank1/rank0 muxes : {} / {}",
        c.mux_r1_selects, c.mux_r0_selects
    );

    let reference = a.matmul(&b);
    assert!(report.output.approx_eq(&reference, 1e-3));
    println!("\noutput matches the reference GEMM exactly ✓");

    let dense_cycles = (a.rows() * k * b.cols()) as f64 / 4.0;
    println!(
        "speedup vs dense 4-MAC array: {:.2}x (= (H1/G1)·(H0/G0) = {:.2}x)",
        dense_cycles / c.cycles as f64,
        cfg.pattern().ideal_speedup()
    );
}
