//! Explore the HSS hardware design space: how many ranks should a design
//! support? Extends the paper's Fig. 6 comparison (one-rank `S` vs two-rank
//! `SS`) with a three-rank design — the paper's modularity argument taken
//! one step further.
//!
//! For a fixed flexibility target (degrees spanning 0%–87.5%), more ranks
//! shrink the per-rank `Hmax` and therefore the muxing sparsity tax, at the
//! cost of deeper metadata hierarchies.
//!
//! Run with: `cargo run --release --example design_space`

use highlight::arch::components::MuxTree;
use highlight::arch::Tech;
use highlight::sparsity::families::{design_s, design_ss, GhFamily, HssFamily};

fn mux_tax_um2(family: &HssFamily, pes_per_array: f64, tech: &Tech) -> f64 {
    // Rank0 SAF is replicated per PE; higher-rank SAFs are shared per array.
    let ranks = family.ranks();
    let mut area = 0.0;
    for (i, fam) in ranks.iter().enumerate() {
        let tree = MuxTree::new(fam.g_max, fam.h_max);
        let replication = if i == ranks.len() - 1 {
            pes_per_array
        } else {
            1.0
        };
        area += replication * tree.area_um2(tech);
    }
    area
}

fn main() {
    let tech = Tech::n65();
    let three_rank = HssFamily::new(vec![
        GhFamily::fixed_g(2, 2, 4),
        GhFamily::fixed_g(2, 2, 4),
        GhFamily::fixed_g(2, 2, 2),
    ]);
    let designs: Vec<(&str, HssFamily)> = vec![
        ("S   (1 rank, Hmax 16)", design_s()),
        ("SS  (2 ranks, Hmax 8,4)", design_ss()),
        ("SSS (3 ranks, Hmax 4,4,2)", three_rank),
    ];

    println!(
        "{:>28} {:>9} {:>12} {:>12} {:>14} {:>12}",
        "design", "degrees", "min density", "mux um^2", "normalized", "meta ranks"
    );
    let base = mux_tax_um2(&designs[0].1, 4.0, &tech);
    for (name, family) in &designs {
        let densities = family.densities();
        let tax = mux_tax_um2(family, 4.0, &tech);
        println!(
            "{:>28} {:>9} {:>12.4} {:>12.0} {:>14.3} {:>12}",
            name,
            densities.len(),
            densities[0].to_f64(),
            tax,
            tax / base,
            family.rank_count()
        );
    }
    println!(
        "\nMore ranks represent the same degree span with a smaller per-rank Hmax,\n\
         cutting the muxing tax (paper §5.3) — while metadata levels grow linearly."
    );
}
