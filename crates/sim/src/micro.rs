//! Functional micro-architecture simulator of the down-sized HighLight
//! (paper §6, Figs. 9–12).
//!
//! The simulator executes *real data* through the modeled datapath:
//!
//! - operand A is stored in the hierarchical CP format
//!   ([`hl_tensor::format::HssCompressed`], Fig. 9);
//! - the **Rank1 skipping SAF** distributes only non-empty Rank1 blocks to
//!   the PEs, with a **VFMU** performing variable-length shifts over aligned
//!   16-word GLB fetches (Fig. 11);
//! - the **Rank0 skipping SAF** muxes the correct operand-B words to each
//!   MAC using the Rank0 CPs (Fig. 10);
//! - sparse operand B uses the three-level metadata format and **gating**
//!   (Fig. 12): ineffectual MACs idle without changing the cycle count, and
//!   GLB fetches are skipped when the VFMU already holds enough valid words.
//!
//! ## Modeled dataflow
//!
//! ```text
//! for m in 0..M:                  # output row; A blocks of (m,g) are loaded
//!   for n in 0..N:                #   once per (m,g) and reused across n
//!     for g in 0..K/(H1·H0):      # one cycle per step: VFMU walks K with
//!       step                      #   shift = H1·H0 (dense) or group-nnz
//! ```
//!
//! Each step, the `G1` PEs each receive one non-empty Rank1 block and their
//! `G0` MACs each handle one nonzero of that block; partial sums accumulate
//! spatially and update the RF once per step. Cycle count is therefore
//! `M · N · K/(H1·H0)` — the hierarchical-skipping speedup
//! `(H1/G1)·(H0/G0)` over a dense array of `G1·G0` MACs (§6.3).
//!
//! The simulator's output is asserted against the reference GEMM in the
//! test-suite, and its action counts anchor the analytical HighLight model.

use std::fmt;

use hl_sparsity::{Gh, HssPattern};
use hl_tensor::format::{HssCompressed, SparseB};
use hl_tensor::{gen, Matrix};

/// Words per GLB row (Fig. 11: "each GLB row contains 16 data words").
pub const GLB_ROW_WORDS: usize = 16;

/// Configuration of the down-sized HighLight micro-architecture.
///
/// The paper's walkthrough configuration is two PEs with two MACs each and
/// sparsity support `C1(2:{2≤H≤4})→C0(2:4)` ([`MicroConfig::paper_downsized`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroConfig {
    /// Rank1 pattern `G1:H1`; `G1` equals the PE count.
    pub rank1: Gh,
    /// Rank0 pattern `G0:H0`; `G0` equals the MACs per PE.
    pub rank0: Gh,
    /// Largest `H1` the hardware supports (VFMU sizing, `2·Hmax` blocks).
    pub hmax1: u32,
}

impl MicroConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if `rank1.h > hmax1`.
    pub fn new(rank1: Gh, rank0: Gh, hmax1: u32) -> Self {
        assert!(
            rank1.h <= hmax1,
            "H1 ({}) exceeds hardware Hmax ({hmax1})",
            rank1.h
        );
        Self {
            rank1,
            rank0,
            hmax1,
        }
    }

    /// The §6 walkthrough configuration with the given `H1 ∈ [2,4]`.
    ///
    /// # Panics
    /// Panics if `h1` is outside `[2, 4]`.
    pub fn paper_downsized(h1: u32) -> Self {
        assert!(
            (2..=4).contains(&h1),
            "the down-sized design supports 2 <= H1 <= 4"
        );
        Self::new(Gh::new(2, h1), Gh::new(2, 4), 4)
    }

    /// Number of PEs (= `G1`).
    pub fn pes(&self) -> usize {
        self.rank1.g as usize
    }

    /// MACs per PE (= `G0`).
    pub fn macs_per_pe(&self) -> usize {
        self.rank0.g as usize
    }

    /// Values per Rank1 group: `H1 · H0`.
    pub fn group_words(&self) -> usize {
        self.rank1.h as usize * self.rank0.h as usize
    }

    /// The HSS pattern operand A must conform to.
    pub fn pattern(&self) -> HssPattern {
        HssPattern::two_rank(self.rank1, self.rank0)
    }
}

/// Hardware action counts gathered during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MicroCounts {
    /// Total cycles (one per processing step).
    pub cycles: u64,
    /// Effectual MAC operations.
    pub macs: u64,
    /// Gated (ineffectual, energy-free) MAC slots.
    pub gated_macs: u64,
    /// Operand A value words read from GLB.
    pub glb_a_value_reads: u64,
    /// Operand A metadata (CP) entries read from GLB.
    pub glb_a_meta_reads: u64,
    /// Operand B data words fetched from GLB (aligned rows).
    pub glb_b_word_reads: u64,
    /// Operand B metadata entries read from GLB.
    pub glb_b_meta_reads: u64,
    /// Words streamed out of the VFMU (including dummy padding).
    pub vfmu_words: u64,
    /// Rank1 SAF mux selections.
    pub mux_r1_selects: u64,
    /// Rank0 SAF mux selections.
    pub mux_r0_selects: u64,
    /// Register-file accesses (partial-sum read + write per step).
    pub rf_accesses: u64,
    /// GLB fetches skipped because the VFMU held enough valid words
    /// (sparse B, Fig. 12b).
    pub fetches_skipped: u64,
}

/// One VFMU step record (for reproducing the Fig. 11 / Fig. 12 walkthroughs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepTrace {
    /// Rank1 group index along K.
    pub group: usize,
    /// Words the VFMU shifted by after the step.
    pub shift_words: usize,
    /// Words fetched from GLB for this step (0 when the fetch was skipped).
    pub fetched_words: usize,
    /// Whether a needed fetch was skipped thanks to buffered valid words.
    pub fetch_skipped: bool,
}

/// Result of a micro-architecture run.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroReport {
    /// The computed output matrix (`M×N`).
    pub output: Matrix,
    /// Action counts.
    pub counts: MicroCounts,
    /// VFMU trace of the first `(m=0, n=0)` K-walk.
    pub first_walk: Vec<StepTrace>,
}

/// The down-sized HighLight simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroSim {
    config: MicroConfig,
}

/// Operand A violates the configured HSS pattern (see [`MicroSim::validate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonconformantOperand {
    /// The pattern the operand was checked against.
    pub pattern: HssPattern,
    /// Row of the first violation.
    pub row: usize,
    /// Violating rank, indexed from the highest rank.
    pub rank: usize,
    /// Start column of the violating group.
    pub group_start: usize,
}

impl fmt::Display for NonconformantOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "operand A does not conform to {}: row {}, rank {} (from highest), group at column {}",
            self.pattern, self.row, self.rank, self.group_start
        )
    }
}

impl std::error::Error for NonconformantOperand {}

/// Tracks the VFMU's aligned-fetch buffer state during one K-walk.
struct VfmuState {
    /// Valid words currently buffered.
    valid: usize,
    /// Next aligned GLB word offset to fetch.
    fetch_pos: usize,
    /// Total words available in the stream.
    stream_len: usize,
}

impl VfmuState {
    fn new(stream_len: usize) -> Self {
        Self {
            valid: 0,
            fetch_pos: 0,
            stream_len,
        }
    }

    /// Ensures `needed` valid words, fetching aligned 16-word rows.
    /// Returns `(fetched_words, skipped)`.
    fn ensure(&mut self, needed: usize) -> (usize, bool) {
        if self.valid >= needed {
            return (0, true);
        }
        let mut fetched = 0;
        while self.valid < needed && self.fetch_pos < self.stream_len {
            let row = GLB_ROW_WORDS.min(self.stream_len - self.fetch_pos);
            self.fetch_pos += row;
            self.valid += row;
            fetched += row;
        }
        assert!(
            self.valid >= needed,
            "GLB stream exhausted before the walk completed"
        );
        (fetched, false)
    }

    /// Consumes `shift` words (the configured shift signal).
    fn shift(&mut self, shift: usize) {
        assert!(self.valid >= shift, "VFMU shift beyond valid words");
        self.valid -= shift;
    }
}

impl MicroSim {
    /// Creates a simulator for the given configuration.
    pub fn new(config: MicroConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &MicroConfig {
        &self.config
    }

    /// Checks that operand A conforms to the configured two-rank HSS
    /// pattern, reporting the first violation.
    ///
    /// [`run`](Self::run) only `debug_assert`s conformance (the O(M·K)
    /// walk is pure overhead on hot simulation paths whose operands are
    /// conformant by construction); callers handling untrusted operands
    /// must validate explicitly before running.
    ///
    /// # Errors
    /// Returns the first violating `(row, rank, group)` when `a` does not
    /// conform.
    pub fn validate(&self, a: &Matrix) -> Result<(), NonconformantOperand> {
        let cfg = &self.config;
        match gen::check_hss(a, &[cfg.rank1, cfg.rank0]) {
            None => Ok(()),
            Some((row, rank, group_start)) => Err(NonconformantOperand {
                pattern: cfg.pattern(),
                row,
                rank,
                group_start,
            }),
        }
    }

    /// Runs `A (M×K) · B (K×N)` through the modeled datapath.
    ///
    /// `A` must conform to the configured two-rank HSS pattern; this is
    /// `debug_assert`ed here and checked on demand via
    /// [`validate`](Self::validate). When `sparse_b` is true, B is stored
    /// compressed with the Fig. 12 metadata and exploited by gating;
    /// otherwise B is stored dense.
    ///
    /// # Panics
    /// Panics if the dimensions disagree or `K` is not a multiple of
    /// `H1·H0`; in debug builds, also if `A` violates the pattern.
    pub fn run(&self, a: &Matrix, b: &Matrix, sparse_b: bool) -> MicroReport {
        let cfg = &self.config;
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        debug_assert_eq!(
            self.validate(a).err(),
            None,
            "operand A must conform to {}",
            cfg.pattern()
        );
        let (h1, h0) = (cfg.rank1.h as usize, cfg.rank0.h as usize);
        let group_words = cfg.group_words();
        assert!(
            a.cols().is_multiple_of(group_words),
            "K must be a multiple of H1*H0"
        );
        let groups = a.cols() / group_words;
        let (m_dim, n_dim) = (a.rows(), b.cols());

        // Both operand encodes happen exactly once, outside the (m, n)
        // loops; every walk reads the flat compressed buffers.
        let a_comp = HssCompressed::encode(a, h1, h0);
        let b_comp = sparse_b.then(|| SparseB::encode(b, h1, h0));

        // Two reusable flat prefix-sum buffers: per row, block and value
        // starts are rebuilt in place (no per-row heap pairs) and shared
        // by all N walks of that row. Each step then indexes
        // `rank1_cp`/`values` directly instead of re-summing `block_nnz`
        // per PE (which is quadratic in G1).
        let mut block_start: Vec<u32> = Vec::with_capacity(groups + 1);
        let mut value_start: Vec<u32> = Vec::new();

        let mut counts = MicroCounts::default();
        let mut output = Matrix::zeros(m_dim, n_dim);
        let mut first_walk = Vec::new();

        // Operand A loads: once per (m, g) — blocks stay stationary in PE
        // registers while B streams across n (HSS-operand stationary, §6.3.1).
        for row in a_comp.rows() {
            counts.glb_a_value_reads += row.values.len() as u64;
            counts.glb_a_meta_reads +=
                (row.rank0_cp.len() + row.rank1_cp.len() + row.group_blocks.len()) as u64;
        }

        for (m, arow) in a_comp.rows().iter().enumerate() {
            block_start.clear();
            block_start.push(0);
            let mut acc = 0u32;
            for &nb in &arow.group_blocks {
                acc += u32::from(nb);
                block_start.push(acc);
            }
            value_start.clear();
            value_start.push(0);
            let mut acc = 0u32;
            for &nnz in &arow.block_nnz {
                acc += u32::from(nnz);
                value_start.push(acc);
            }
            for n in 0..n_dim {
                let record_trace = m == 0 && n == 0;
                let bcol = b_comp.as_ref().map(|sb| &sb.columns()[n]);
                let stream_len = match &bcol {
                    None => b.rows(), // dense column: K words
                    Some(col) => col.values.len(),
                };
                let mut vfmu = VfmuState::new(stream_len);

                for (g, &group_start) in block_start.iter().take(groups).enumerate() {
                    // --- VFMU: determine the shift and perform the fetch.
                    let (needed, meta_reads) = match &bcol {
                        None => (group_words, 0u64),
                        Some(col) => {
                            // Level-1 metadata: nonzeros in this group's blocks.
                            (col.group_nnz[g] as usize, 1u64)
                        }
                    };
                    counts.glb_b_meta_reads += meta_reads;
                    let (fetched, skipped) = vfmu.ensure(needed);
                    counts.glb_b_word_reads += fetched as u64;
                    if skipped && needed > 0 {
                        counts.fetches_skipped += 1;
                    }
                    // The VFMU always presents Hmax blocks (dummy padding for
                    // H1 < Hmax, Fig. 11).
                    counts.vfmu_words += (cfg.hmax1 as usize * h0) as u64;
                    if record_trace {
                        first_walk.push(StepTrace {
                            group: g,
                            shift_words: needed,
                            fetched_words: fetched,
                            fetch_skipped: skipped && needed > 0,
                        });
                    }
                    vfmu.shift(needed);

                    // --- Rank1 SAF: distribute non-empty blocks to PEs.
                    let nblocks = arow.group_blocks[g] as usize;
                    let bc = group_start as usize;
                    let mut acc = 0.0f32;
                    for pe in 0..nblocks {
                        let cp1 = arow.rank1_cp[bc + pe] as usize;
                        counts.mux_r1_selects += 1;
                        let nnz = arow.block_nnz[bc + pe] as usize;
                        let vbase = value_start[bc + pe] as usize;
                        // --- Rank0 SAF: each MAC selects its B operand.
                        for j in 0..nnz {
                            let a_val = arow.values[vbase + j];
                            let cp0 = arow.rank0_cp[vbase + j] as usize;
                            counts.mux_r0_selects += 1;
                            let k = g * group_words + cp1 * h0 + cp0;
                            let b_val = b.get(k, n);
                            if b_val != 0.0 {
                                counts.macs += 1;
                                acc += a_val * b_val;
                            } else {
                                // Gating SAF: MAC idles, cycle unchanged (§6.4).
                                counts.gated_macs += 1;
                            }
                        }
                        // Unused MAC slots in an under-full block are gated.
                        counts.gated_macs +=
                            (cfg.macs_per_pe() - nnz.min(cfg.macs_per_pe())) as u64;
                    }

                    // --- Spatial accumulation + RF update (1 read + 1 write).
                    let cur = output.get(m, n);
                    output.set(m, n, cur + acc);
                    counts.rf_accesses += 2;
                    counts.cycles += 1;
                }
            }
        }

        // Per-value Rank0 offsets of sparse B are consumed once per walk.
        if let Some(sb) = &b_comp {
            let offs: u64 = sb.columns().iter().map(|c| c.rank0_off.len() as u64).sum();
            counts.glb_b_meta_reads += offs * m_dim as u64;
        }

        MicroReport {
            output,
            counts,
            first_walk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(cfg: &MicroConfig, m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix) {
        let a = gen::random_hss(m, k, &[cfg.rank1, cfg.rank0], seed);
        let b = gen::random_dense(k, n, seed + 1);
        (a, b)
    }

    #[test]
    fn output_matches_reference_gemm_dense_b() {
        for h1 in 2..=4 {
            let cfg = MicroConfig::paper_downsized(h1);
            let k = cfg.group_words() * 4;
            let (a, b) = workload(&cfg, 6, k, 5, 100 + u64::from(h1));
            let report = MicroSim::new(cfg).run(&a, &b, false);
            assert!(
                report.output.approx_eq(&a.matmul(&b), 1e-3),
                "H1={h1}: micro-sim output must equal reference GEMM"
            );
        }
    }

    #[test]
    fn output_matches_reference_gemm_sparse_b() {
        for h1 in 2..=4 {
            let cfg = MicroConfig::paper_downsized(h1);
            let k = cfg.group_words() * 4;
            let a = gen::random_hss(4, k, &[cfg.rank1, cfg.rank0], 7);
            let b = gen::random_unstructured(k, 6, 0.6, 8);
            let report = MicroSim::new(cfg).run(&a, &b, true);
            assert!(report.output.approx_eq(&a.matmul(&b), 1e-3));
        }
    }

    #[test]
    fn cycle_count_is_hierarchical_skipping_speedup() {
        let cfg = MicroConfig::paper_downsized(4);
        let (m, k, n) = (4, 64, 8);
        let (a, b) = workload(&cfg, m, k, n, 3);
        let report = MicroSim::new(cfg).run(&a, &b, false);
        let groups = k / cfg.group_words();
        assert_eq!(report.counts.cycles, (m * n * groups) as u64);
        // Dense 4-MAC array would take M*K*N/4 cycles; speedup = (H1/G1)(H0/G0).
        let dense_cycles = (m * k * n) as f64 / 4.0;
        let speedup = dense_cycles / report.counts.cycles as f64;
        assert!((speedup - cfg.pattern().ideal_speedup()).abs() < 1e-9);
    }

    #[test]
    fn macs_equal_effectual_work_dense_b() {
        let cfg = MicroConfig::paper_downsized(3);
        let (a, b) = workload(&cfg, 3, 48, 4, 5);
        let report = MicroSim::new(cfg).run(&a, &b, false);
        // Dense B: every stored A value does one MAC per n.
        assert_eq!(report.counts.macs, (a.nonzeros() * 4) as u64);
        assert_eq!(report.counts.gated_macs, 0);
    }

    #[test]
    fn gating_counts_ineffectual_slots_without_extra_cycles() {
        let cfg = MicroConfig::paper_downsized(4);
        let k = cfg.group_words() * 2;
        let a = gen::random_hss(2, k, &[cfg.rank1, cfg.rank0], 11);
        let b = gen::random_unstructured(k, 4, 0.5, 12);
        let dense_run = MicroSim::new(cfg).run(&a, &gen::random_dense(k, 4, 13), false);
        let sparse_run = MicroSim::new(cfg).run(&a, &b, true);
        assert_eq!(
            dense_run.counts.cycles, sparse_run.counts.cycles,
            "gating keeps cycles"
        );
        assert!(sparse_run.counts.gated_macs > 0);
        assert_eq!(
            sparse_run.counts.macs + sparse_run.counts.gated_macs,
            dense_run.counts.macs
        );
    }

    #[test]
    fn fig11_vfmu_shifts_for_2_3_pattern() {
        // H1=3: groups of 12 words; the VFMU shifts by 12 per step and
        // fetches aligned 16-word rows (Fig. 11).
        let cfg = MicroConfig::paper_downsized(3);
        let k = cfg.group_words() * 4; // 48 words per column
        let (a, b) = workload(&cfg, 1, k, 1, 17);
        let report = MicroSim::new(cfg).run(&a, &b, false);
        let trace = &report.first_walk;
        assert_eq!(trace.len(), 4);
        assert!(trace.iter().all(|t| t.shift_words == 12));
        // Step 1 fetches a 16-word row; step 2 needs 12 but holds only 4,
        // so it fetches another row; step 3 holds 8 -> fetch; step 4 holds
        // 12 -> the fetch is skipped (valid words suffice).
        assert_eq!(trace[0].fetched_words, 16);
        assert_eq!(trace[1].fetched_words, 16);
        assert_eq!(trace[2].fetched_words, 16);
        assert_eq!(trace[3].fetched_words, 0);
        assert!(trace[3].fetch_skipped);
    }

    #[test]
    fn fig12_sparse_b_skips_fetches_when_buffered() {
        let cfg = MicroConfig::paper_downsized(3);
        let k = cfg.group_words() * 4;
        let a = gen::random_hss(1, k, &[cfg.rank1, cfg.rank0], 19);
        let b = gen::random_unstructured(k, 1, 0.5, 20);
        let report = MicroSim::new(cfg).run(&a, &b, true);
        // Compressed B streams ~24 words instead of 48; with 16-word rows
        // several steps find enough valid words already buffered.
        assert!(report.counts.fetches_skipped > 0);
        let dense_report = MicroSim::new(cfg).run(&a, &gen::random_dense(k, 1, 21), false);
        assert!(report.counts.glb_b_word_reads < dense_report.counts.glb_b_word_reads);
    }

    #[test]
    fn saf_select_counts() {
        let cfg = MicroConfig::paper_downsized(4);
        let (m, k, n) = (2, 32, 3);
        let (a, b) = workload(&cfg, m, k, n, 23);
        let report = MicroSim::new(cfg).run(&a, &b, false);
        let steps = (m * n * (k / cfg.group_words())) as u64;
        // Full pattern: G1 block selects and G1*G0 value selects per step.
        assert_eq!(report.counts.mux_r1_selects, steps * 2);
        assert_eq!(report.counts.mux_r0_selects, steps * 4);
        assert_eq!(report.counts.rf_accesses, steps * 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "conform")]
    fn rejects_nonconformant_operand() {
        let cfg = MicroConfig::paper_downsized(4);
        let a = gen::random_dense(2, 32, 1); // dense violates 2:4 blocks
        let b = gen::random_dense(32, 2, 2);
        let _ = MicroSim::new(cfg).run(&a, &b, false);
    }

    #[test]
    fn validate_errors_on_invalid_operand_in_any_build() {
        // `run` only debug_asserts conformance, so the release-mode
        // contract is this public entry point: it must report invalid
        // operands identically with and without debug assertions.
        let cfg = MicroConfig::paper_downsized(4);
        let sim = MicroSim::new(cfg);
        let a = gen::random_dense(2, 32, 1);
        let err = sim.validate(&a).expect_err("dense operand violates 2:4");
        assert_eq!(err.row, 0);
        assert!(err.to_string().contains("does not conform"));
        let good = gen::random_hss(2, 32, &[cfg.rank1, cfg.rank0], 3);
        assert_eq!(sim.validate(&good), Ok(()));
    }

    #[test]
    #[should_panic(expected = "supports")]
    fn paper_downsized_rejects_h1_out_of_range() {
        let _ = MicroConfig::paper_downsized(5);
    }
}
