use std::fmt;

use hl_sparsity::HssPattern;
use hl_tensor::GemmShape;

/// Sparsity descriptor for one GEMM operand.
#[derive(Debug, Clone, PartialEq)]
pub enum OperandSparsity {
    /// Fully dense.
    Dense,
    /// Unstructured sparsity with the given degree (fraction of zeros).
    Unstructured {
        /// Fraction of zeros, in `[0, 1]`.
        sparsity: f64,
    },
    /// An N-rank HSS pattern (includes one-rank `G:H` patterns).
    Hss(HssPattern),
}

impl OperandSparsity {
    /// Convenience constructor for unstructured sparsity.
    ///
    /// # Panics
    /// Panics if `sparsity` is outside `[0, 1]`.
    pub fn unstructured(sparsity: f64) -> Self {
        assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
        Self::Unstructured { sparsity }
    }

    /// Expected fraction of nonzeros.
    pub fn density(&self) -> f64 {
        match self {
            Self::Dense => 1.0,
            Self::Unstructured { sparsity } => 1.0 - sparsity,
            Self::Hss(p) => p.density_f64(),
        }
    }

    /// Expected fraction of zeros.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// True if the operand carries no zeros.
    pub fn is_dense(&self) -> bool {
        match self {
            Self::Dense => true,
            Self::Unstructured { sparsity } => *sparsity == 0.0,
            Self::Hss(p) => p.is_dense(),
        }
    }

    /// True if the zeros are structurally constrained (HSS / `G:H`).
    pub fn is_structured(&self) -> bool {
        matches!(self, Self::Hss(p) if !p.is_dense())
    }
}

impl fmt::Display for OperandSparsity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Dense => write!(f, "dense"),
            Self::Unstructured { sparsity } => write!(f, "unstructured {:.0}%", sparsity * 100.0),
            Self::Hss(p) => write!(f, "{p}"),
        }
    }
}

/// A GEMM workload: shape plus per-operand sparsity.
///
/// Operand A is the (possibly HSS-structured) weight-like operand; operand B
/// is the activation-like operand (paper §6.1 treats them interchangeably —
/// designs may evaluate the [`swapped`](Self::swapped) workload and report
/// the better result).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Workload name for reports.
    pub name: String,
    /// GEMM dimensions.
    pub shape: GemmShape,
    /// Operand A sparsity.
    pub a: OperandSparsity,
    /// Operand B sparsity.
    pub b: OperandSparsity,
}

impl Workload {
    /// Creates a workload.
    pub fn new(
        name: impl Into<String>,
        shape: GemmShape,
        a: OperandSparsity,
        b: OperandSparsity,
    ) -> Self {
        Self {
            name: name.into(),
            shape,
            a,
            b,
        }
    }

    /// The synthetic 1024×1024×1024 GEMM used in §7.2.
    pub fn synthetic(a: OperandSparsity, b: OperandSparsity) -> Self {
        let name = format!("A[{a}] B[{b}]");
        Self::new(name, GemmShape::new(1024, 1024, 1024), a, b)
    }

    /// Dense MAC count `M·K·N`.
    pub fn dense_macs(&self) -> f64 {
        self.shape.macs() as f64
    }

    /// Expected effectual MACs: `M·K·N · density(A) · density(B)`
    /// (independence of operand nonzero positions).
    pub fn effectual_macs(&self) -> f64 {
        self.dense_macs() * self.a.density() * self.b.density()
    }

    /// The workload with operands A and B exchanged (and the shape
    /// transposed accordingly).
    pub fn swapped(&self) -> Self {
        Self {
            name: self.name.clone(),
            shape: self.shape.swapped(),
            a: self.b.clone(),
            b: self.a.clone(),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_sparsity::Gh;

    #[test]
    fn densities() {
        assert_eq!(OperandSparsity::Dense.density(), 1.0);
        assert_eq!(OperandSparsity::unstructured(0.75).density(), 0.25);
        let p = OperandSparsity::Hss(HssPattern::two_rank(Gh::new(4, 8), Gh::new(2, 4)));
        assert_eq!(p.density(), 0.25);
        assert!(p.is_structured());
        assert!(!OperandSparsity::unstructured(0.5).is_structured());
        assert!(OperandSparsity::unstructured(0.0).is_dense());
    }

    #[test]
    fn effectual_macs_multiply_densities() {
        let w = Workload::synthetic(
            OperandSparsity::unstructured(0.5),
            OperandSparsity::unstructured(0.75),
        );
        assert_eq!(w.dense_macs(), 1024.0 * 1024.0 * 1024.0);
        assert!((w.effectual_macs() - w.dense_macs() * 0.125).abs() < 1.0);
    }

    #[test]
    fn swapped_exchanges_operands_and_shape() {
        let w = Workload::new(
            "t",
            GemmShape::new(2, 3, 4),
            OperandSparsity::Dense,
            OperandSparsity::unstructured(0.5),
        );
        let s = w.swapped();
        assert_eq!(s.shape, GemmShape::new(4, 3, 2));
        assert_eq!(s.a, OperandSparsity::unstructured(0.5));
        assert_eq!(s.b, OperandSparsity::Dense);
    }

    #[test]
    fn display_labels() {
        let w = Workload::synthetic(OperandSparsity::Dense, OperandSparsity::unstructured(0.25));
        assert!(w.to_string().contains("dense"));
        assert!(w.to_string().contains("25%"));
    }
}
