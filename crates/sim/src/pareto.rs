//! Bi-objective Pareto dominance — the machinery under the §7.1.2
//! co-design search (Fig. 15's frontier) and the `fig15` frontier check.
//!
//! Objectives are *minimized* (accuracy loss, EDP). Comparisons use plain
//! `f64` ordering, so a point with a NaN objective neither dominates nor
//! is dominated — it simply never joins the front, which keeps the
//! functions total on degenerate inputs instead of panicking.

/// True when `a` dominates `b`: no worse in both minimized objectives and
/// strictly better in at least one.
///
/// Identical points do not dominate each other (both stay on a front).
pub fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// Indices of the non-dominated `items` under the minimized bi-objective
/// `key`, in input order (deterministic for any input permutation of the
/// same values: membership depends only on the value set).
pub fn pareto_front_indices<T>(items: &[T], key: impl Fn(&T) -> (f64, f64)) -> Vec<usize> {
    let points: Vec<(f64, f64)> = items.iter().map(&key).collect();
    (0..points.len())
        .filter(|&i| !points.iter().any(|&q| dominates(q, points[i])))
        .collect()
}

/// Per-item membership flags for the Pareto front (same semantics as
/// [`pareto_front_indices`], convenient for annotating report rows).
pub fn pareto_front_flags<T>(items: &[T], key: impl Fn(&T) -> (f64, f64)) -> Vec<bool> {
    let points: Vec<(f64, f64)> = items.iter().map(&key).collect();
    points
        .iter()
        .map(|&p| !points.iter().any(|&q| dominates(q, p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_requires_strict_improvement() {
        assert!(dominates((1.0, 1.0), (2.0, 2.0)));
        assert!(dominates((1.0, 2.0), (2.0, 2.0)));
        assert!(!dominates((1.0, 1.0), (1.0, 1.0)), "equal points coexist");
        assert!(!dominates((1.0, 3.0), (2.0, 2.0)), "trade-offs coexist");
        assert!(!dominates((2.0, 2.0), (1.0, 3.0)));
    }

    #[test]
    fn nan_points_neither_dominate_nor_join() {
        assert!(!dominates((f64::NAN, 0.0), (1.0, 1.0)));
        assert!(!dominates((1.0, 1.0), (f64::NAN, 0.0)));
        let pts = [(0.5, 0.5), (f64::NAN, 0.0)];
        // The NaN point is never dominated (comparisons are false), so it
        // technically stays; callers filter NaN objectives upstream.
        let front = pareto_front_indices(&pts, |&p| p);
        assert!(front.contains(&0));
    }

    #[test]
    fn front_keeps_trade_offs_and_drops_dominated() {
        let pts = [
            (0.0, 10.0), // frontier (best loss)
            (1.0, 5.0),  // frontier
            (1.5, 6.0),  // dominated by (1.0, 5.0)
            (3.0, 1.0),  // frontier (best edp)
            (3.0, 1.0),  // duplicate of a frontier point: also kept
            (4.0, 2.0),  // dominated
        ];
        assert_eq!(pareto_front_indices(&pts, |&p| p), vec![0, 1, 3, 4]);
        assert_eq!(
            pareto_front_flags(&pts, |&p| p),
            vec![true, true, false, true, true, false]
        );
    }

    #[test]
    fn empty_and_singleton() {
        let none: [(f64, f64); 0] = [];
        assert!(pareto_front_indices(&none, |&p| p).is_empty());
        assert_eq!(pareto_front_indices(&[(1.0, 1.0)], |&p| p), vec![0]);
    }
}
