use std::error::Error;
use std::fmt;

use hl_arch::{AreaBreakdown, EnergyBreakdown};

use crate::workload::Workload;

/// Accelerator clock frequency in GHz (shared by all designs so latency
/// comparisons reduce to cycle comparisons, as in the paper's equal-resource
/// methodology, Table 4).
pub const CLOCK_GHZ: f64 = 1.0;

/// The outcome of evaluating one workload on one design.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// Design name.
    pub design: String,
    /// Workload name.
    pub workload: String,
    /// Processing cycles.
    pub cycles: f64,
    /// Per-component energy.
    pub energy: EnergyBreakdown,
}

impl EvalResult {
    /// Latency in seconds at [`CLOCK_GHZ`].
    pub fn latency_s(&self) -> f64 {
        self.cycles / (CLOCK_GHZ * 1e9)
    }

    /// Total energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total() * 1e-12
    }

    /// Energy-delay product in J·s.
    pub fn edp(&self) -> f64 {
        self.energy_j() * self.latency_s()
    }

    /// Energy-delay-squared product in J·s².
    pub fn ed2(&self) -> f64 {
        self.energy_j() * self.latency_s() * self.latency_s()
    }
}

/// Returned when a design cannot process a workload at all (e.g. S2TA on a
/// purely dense operand A, §7.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsupported {
    /// Design name.
    pub design: String,
    /// Why the workload cannot run.
    pub reason: String,
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cannot process this workload: {}",
            self.design, self.reason
        )
    }
}

impl Error for Unsupported {}

/// The analytical-evaluation interface implemented by every design.
///
/// Implementations model one fixed hardware configuration (Table 4
/// resources) and translate a [`Workload`] into cycles and per-component
/// energy. Functional correctness of the modeled dataflows is established
/// separately ([`crate::micro`] for HighLight; unit tests for baselines).
///
/// Implementations must be `Send + Sync`: evaluation is a pure function of
/// the configuration, and the [`crate::engine`] fans `(design, workload)`
/// cells out across a worker pool sharing the design registry. They must
/// also be `Debug`, and the `Debug` form must cover every configuration
/// field `evaluate` reads — the engine's memo key fingerprints designs
/// with it, so two same-name instances with different configurations
/// (e.g. ablation variants) never share cached results.
pub trait Accelerator: fmt::Debug + Send + Sync {
    /// Design name (e.g. `"HighLight"`).
    fn name(&self) -> &str;

    /// Evaluates a workload.
    ///
    /// # Errors
    /// Returns [`Unsupported`] when the design cannot produce functionally
    /// correct results for the workload's sparsity patterns.
    fn evaluate(&self, workload: &Workload) -> Result<EvalResult, Unsupported>;

    /// Total die area by component.
    fn area(&self) -> AreaBreakdown;

    /// Human-readable supported-patterns description (Table 3 row).
    fn supported_patterns(&self) -> String;

    /// Whether the design's two operand paths are interchangeable, allowing
    /// the §7.1.1 operand swap. Designs with heterogeneous paths (e.g.
    /// S2TA's static weight DBB vs dynamic activation DBB) return `false`.
    fn swappable(&self) -> bool {
        true
    }
}

/// Rejects workloads whose expected operand densities are degenerate —
/// fully pruned (density 0, e.g. unstructured sparsity 1.0 or a model
/// layer pruned to nothing) or non-finite — as [`Unsupported`].
///
/// Every design calls this at the top of its `evaluate`: a degenerate
/// configuration reaching a served sweep must surface as a per-layer
/// `Unsupported` outcome, never as a worker panic (in the
/// [`crate::analytic::TrafficModel`] density assert) or NaN cycles.
///
/// # Errors
/// [`Unsupported`] when either operand's density is outside `(0, 1]`.
pub fn check_densities(design: &str, workload: &Workload) -> Result<(), Unsupported> {
    for (operand, density) in [("A", workload.a.density()), ("B", workload.b.density())] {
        if !(density > 0.0 && density <= 1.0) {
            return Err(Unsupported {
                design: design.to_string(),
                reason: format!(
                    "operand {operand} density {density} is degenerate \
                     (fully pruned or outside (0, 1]); nothing to compute"
                ),
            });
        }
    }
    Ok(())
}

/// Evaluates `workload` directly and with operands swapped, returning the
/// lower-EDP result (§7.1.1: "we allow them to swap operands and report the
/// best hardware performance").
///
/// # Errors
/// Returns [`Unsupported`] only if *both* orientations are unsupported.
pub fn evaluate_best(
    accel: &dyn Accelerator,
    workload: &Workload,
) -> Result<EvalResult, Unsupported> {
    let direct = accel.evaluate(workload);
    if !accel.swappable() {
        return direct;
    }
    let swapped = accel.evaluate(&workload.swapped());
    match (direct, swapped) {
        (Ok(a), Ok(b)) => Ok(if a.edp() <= b.edp() { a } else { b }),
        (Ok(a), Err(_)) => Ok(a),
        (Err(_), Ok(b)) => Ok(b),
        (Err(e), Err(_)) => Err(e),
    }
}

/// Geometric mean of the values; `None` when the slice is empty or any
/// value is non-positive (the log-domain mean is undefined there — callers
/// decide how to report the degenerate case instead of panicking).
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::OperandSparsity;
    use hl_arch::Comp;
    use hl_tensor::GemmShape;

    fn result(cycles: f64, pj: f64) -> EvalResult {
        let mut e = EnergyBreakdown::new();
        e.record(Comp::Mac, pj);
        EvalResult {
            design: "t".into(),
            workload: "w".into(),
            cycles,
            energy: e,
        }
    }

    #[test]
    fn metric_arithmetic() {
        let r = result(1e9, 1e12); // 1 s at 1 GHz, 1 J
        assert!((r.latency_s() - 1.0).abs() < 1e-12);
        assert!((r.energy_j() - 1.0).abs() < 1e-12);
        assert!((r.edp() - 1.0).abs() < 1e-12);
        assert!((r.ed2() - 1.0).abs() < 1e-12);
        let r2 = result(2e9, 1e12);
        assert!((r2.ed2() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), None);
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        // Non-positive inputs are reported, not a panic.
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[2.0, -1.0]), None);
    }

    #[derive(Debug)]
    struct SwapSensitive;

    impl Accelerator for SwapSensitive {
        fn name(&self) -> &str {
            "swap-sensitive"
        }
        fn evaluate(&self, w: &Workload) -> Result<EvalResult, Unsupported> {
            // Only supports sparse operand A; dense-A workloads fail.
            if w.a.is_dense() {
                return Err(Unsupported {
                    design: self.name().into(),
                    reason: "dense A".into(),
                });
            }
            Ok(result(w.shape.m as f64, 1e6))
        }
        fn area(&self) -> AreaBreakdown {
            AreaBreakdown::new()
        }
        fn supported_patterns(&self) -> String {
            "A sparse".into()
        }
    }

    #[test]
    fn evaluate_best_swaps_operands_when_needed() {
        let w = Workload::new(
            "w",
            GemmShape::new(8, 4, 2),
            OperandSparsity::Dense,
            OperandSparsity::unstructured(0.5),
        );
        // Direct fails (dense A); swapped succeeds with m = n = 2 cycles.
        let r = evaluate_best(&SwapSensitive, &w).unwrap();
        assert_eq!(r.cycles, 2.0);
        // Both-dense fails both ways.
        let wd = Workload::new(
            "d",
            GemmShape::new(2, 2, 2),
            OperandSparsity::Dense,
            OperandSparsity::Dense,
        );
        assert!(evaluate_best(&SwapSensitive, &wd).is_err());
    }
}
