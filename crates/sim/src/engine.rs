//! Parallel design-space evaluation engine.
//!
//! The paper's artifacts iterate `designs × sparsity degrees × H-values ×
//! model layers` through [`evaluate_best`] — a workload that grows
//! combinatorially as the design registry and model zoo widen. This module
//! provides the machinery that makes those sweeps scale:
//!
//! - [`parallel_map`]: a `std::thread::scope`-based chunked worker pool
//!   (no external dependencies) with a **deterministic ordered-collect**:
//!   results are returned in input order regardless of scheduling, so
//!   parallel sweeps are byte-identical to their serial baseline;
//! - [`Memo`]: a generic thread-safe memo table for repeated *pure*
//!   evaluations;
//! - [`Engine`]: the pool plus an [`EvalCache`] memoizing
//!   [`evaluate_best`] results keyed on `(design, shape, operand
//!   sparsity)` — whole-DNN sweeps stop recomputing identical layers;
//! - [`SweepGrid`]: a declarative grid of `(design, workload)` cells that
//!   replaces hand-rolled nested sweep loops and fans the cells out across
//!   the pool.
//!
//! ## Thread-count resolution
//!
//! [`Engine::new`] sizes the pool from the `HL_THREADS` environment
//! variable when set (a positive integer), falling back to
//! [`std::thread::available_parallelism`]. [`Engine::with_threads`] pins an
//! explicit count; [`Engine::serial`] runs on the caller thread (still
//! memoized).
//!
//! ## Determinism guarantee
//!
//! Every evaluation the engine runs is a pure function of its inputs.
//! Worker scheduling only decides *when* a cell is computed, never *what*
//! it computes, and the ordered collect reassembles results by input index.
//! Memoization returns the value the uncached call would produce (caches
//! are keyed on every input the evaluation reads). Consequently engine
//! output is identical for any thread count, including the serial path —
//! the property the `determinism` integration tests assert.

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use hl_tensor::GemmShape;

use crate::eval::{evaluate_best, Accelerator, EvalResult, Unsupported};
use crate::workload::{OperandSparsity, Workload};

/// Environment variable overriding the engine's worker-thread count.
pub const HL_THREADS_ENV: &str = "HL_THREADS";

/// Resolves the default worker count: `HL_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var(HL_THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

std::thread_local! {
    /// Set on engine worker threads for their lifetime: a nested
    /// [`parallel_map`] issued from inside a worker (e.g. a sweep cell
    /// evaluating a whole network) runs inline instead of spawning a
    /// second pool on an already-busy machine.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Maps `f` over `items` on `threads` scoped workers, returning results in
/// input order (deterministic ordered collect).
///
/// Work is handed out in contiguous chunks via an atomic cursor, so fast
/// workers steal remaining chunks from slow ones. With `threads <= 1`, a
/// single item, or when called from inside another `parallel_map` worker
/// (nested fan-out would oversubscribe the pool) the map runs inline on
/// the caller thread — the output is identical either way.
///
/// # Panics
/// Propagates panics from `f` (the scope joins every worker).
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 || IN_POOL.with(Cell::get) {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    // Small chunks keep workers busy near the tail without a cursor
    // contention storm at the head.
    let chunk = (items.len() / (workers * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // Workers are fresh threads dropped at scope exit, so
                    // the flag needs no reset.
                    IN_POOL.with(|flag| flag.set(true));
                    let mut local = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        for (i, item) in items[start..end].iter().enumerate() {
                            local.push((start + i, f(item)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            // A panicking cell re-raises its original payload on the
            // caller thread (not a fresh "worker panicked" panic), so a
            // `catch_unwind` around the engine call — the serving
            // layer's supervision boundary — observes the real cause.
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A thread-safe memo table for pure evaluations.
///
/// Lookups clone the stored value; misses compute *outside* the lock, so a
/// slow evaluation never serializes the other workers (two workers may race
/// on the same key, but the evaluation is pure, so both compute the same
/// value and either insert wins).
///
/// The table is unwind-safe: evaluations run outside the lock, so a
/// panicking evaluation can never leave a half-written entry, and every
/// lock recovers from mutex poisoning (a thread that panicked *while
/// holding* the lock was only reading or inserting a fully-computed
/// value, so the map is still consistent). A caught panic therefore
/// doesn't wedge every later request that shares the cache.
#[derive(Debug)]
pub struct Memo<K, V> {
    map: Mutex<HashMap<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for Memo<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Memo<K, V> {
    /// An empty table.
    pub fn new() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Locks the map, recovering from poisoning: see the type docs for
    /// why the contents are still consistent after a panic.
    fn map(&self) -> std::sync::MutexGuard<'_, HashMap<K, V>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the memoized value for `key`, computing it with `f` on a
    /// miss.
    pub fn get_or_insert_with(&self, key: &K, f: impl FnOnce() -> V) -> V {
        if let Some(v) = self.map().get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = f();
        self.map().entry(key.clone()).or_insert_with(|| v.clone());
        v
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// True when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `(hits, misses)` in one call — the shape the serving layer's
    /// metrics and per-request traces consume.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits(), self.misses())
    }

    /// Clones out every `(key, value)` pair — the persistence path:
    /// `hl-serve` snapshots the evaluation cache to disk on graceful
    /// drain. Order is unspecified (callers sort).
    pub fn entries(&self) -> Vec<(K, V)> {
        self.map()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Seeds an entry without touching the hit/miss counters — the
    /// snapshot-load path. An already-present key keeps its value (live
    /// results win over preloaded ones).
    pub fn preload(&self, key: K, value: V) {
        self.map().entry(key).or_insert(value);
    }
}

/// Hashable identity of one operand's sparsity descriptor (`f64` degrees
/// are keyed by their exact bit pattern).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OperandKey {
    /// Fully dense.
    Dense,
    /// Unstructured with the degree's `f64` bits.
    Unstructured(u64),
    /// An HSS pattern.
    Hss(hl_sparsity::HssPattern),
}

impl From<&OperandSparsity> for OperandKey {
    fn from(op: &OperandSparsity) -> Self {
        match op {
            OperandSparsity::Dense => Self::Dense,
            OperandSparsity::Unstructured { sparsity } => Self::Unstructured(sparsity.to_bits()),
            OperandSparsity::Hss(p) => Self::Hss(p.clone()),
        }
    }
}

/// A design's configuration fingerprint: its full `Debug` rendering,
/// shared (`Arc<str>`) so sweeps format it once per design and every cell
/// key clones a pointer instead of re-rendering the string.
pub type DesignFingerprint = Arc<str>;

/// Cache key for one `(design, workload)` evaluation: everything
/// [`evaluate_best`] reads except the workload's display name.
///
/// The design is identified by its full `Debug` fingerprint, not just its
/// name: two same-name instances with different configurations (ablation
/// variants, alternative technology tables) are distinct cache entries.
///
/// Neighboring sweep points differ in at most the shape and one operand
/// descriptor, so the key is built incrementally: the design fingerprint
/// is a shared [`DesignFingerprint`] hoisted out of the sweep loop
/// ([`Engine::fingerprint`]), and only the cheap per-point fields are
/// recomputed per cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EvalKey {
    /// Design `Debug` fingerprint (name plus every configuration field).
    pub design: DesignFingerprint,
    /// GEMM dimensions.
    pub shape: GemmShape,
    /// Operand A sparsity identity.
    pub a: OperandKey,
    /// Operand B sparsity identity.
    pub b: OperandKey,
}

impl EvalKey {
    /// The key for evaluating `workload` on `design`.
    pub fn new(design: &dyn Accelerator, workload: &Workload) -> Self {
        Self::with_fingerprint(&Engine::fingerprint(design), workload)
    }

    /// The key for `workload` with an already-computed design fingerprint —
    /// the sweep path, where the fingerprint is hoisted out of the loop.
    pub fn with_fingerprint(design: &DesignFingerprint, workload: &Workload) -> Self {
        Self {
            design: Arc::clone(design),
            shape: workload.shape,
            a: (&workload.a).into(),
            b: (&workload.b).into(),
        }
    }
}

/// Memo table over [`evaluate_best`] outcomes.
///
/// The analytical models are pure: cycles and the energy ledger depend only
/// on the design configuration and `(shape, a, b)` — the
/// [`crate::analytic::TrafficModel`] / [`crate::analytic::Accountant`]
/// pipeline never reads the workload name. Cached results are re-labeled
/// with the requesting workload's name so reports stay byte-identical.
pub type EvalCache = Memo<EvalKey, Result<EvalResult, Unsupported>>;

/// The parallel evaluation engine: a worker pool plus the evaluation memo.
#[derive(Debug)]
pub struct Engine {
    threads: usize,
    evals: EvalCache,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine sized by [`default_threads`] (`HL_THREADS` override, then
    /// available parallelism).
    pub fn new() -> Self {
        Self::with_threads(default_threads())
    }

    /// An engine with an explicit worker count (`0` is clamped to 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            evals: Memo::new(),
        }
    }

    /// A single-threaded engine (still memoized).
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The evaluation memo (for hit/miss introspection).
    pub fn eval_cache(&self) -> &EvalCache {
        &self.evals
    }

    /// Maps `f` over `items` on the pool with deterministic ordering (see
    /// [`parallel_map`]).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        parallel_map(self.threads, items, f)
    }

    /// The configuration fingerprint of `design` — format it once per
    /// design and pass it to [`Engine::evaluate_best_keyed`] when sweeping
    /// many points over the same design.
    pub fn fingerprint(design: &dyn Accelerator) -> DesignFingerprint {
        format!("{design:?}").into()
    }

    /// Memoized [`evaluate_best`]: identical `(design, shape, a, b)` cells
    /// are evaluated once and replayed from the cache, re-labeled with this
    /// workload's name.
    ///
    /// # Errors
    /// Exactly the errors of [`evaluate_best`].
    pub fn evaluate_best(
        &self,
        design: &dyn Accelerator,
        workload: &Workload,
    ) -> Result<EvalResult, Unsupported> {
        self.evaluate_best_keyed(design, &Self::fingerprint(design), workload)
    }

    /// [`Engine::evaluate_best`] with a hoisted design fingerprint: sweep
    /// loops compute [`Engine::fingerprint`] once and key every point off
    /// the shared `Arc`, so neighboring points only pay for the operand
    /// descriptors that actually changed.
    ///
    /// # Errors
    /// Exactly the errors of [`evaluate_best`].
    pub fn evaluate_best_keyed(
        &self,
        design: &dyn Accelerator,
        fingerprint: &DesignFingerprint,
        workload: &Workload,
    ) -> Result<EvalResult, Unsupported> {
        let key = EvalKey::with_fingerprint(fingerprint, workload);
        let mut out = self
            .evals
            .get_or_insert_with(&key, || evaluate_best(design, workload));
        if let Ok(r) = &mut out {
            r.workload.clone_from(&workload.name);
        }
        out
    }
}

/// A declarative sweep: a grid of `(design, workload)` cells.
///
/// Each row is one sweep point (a sparsity degree, a layer, …) holding one
/// co-designed workload per design. [`SweepGrid::run`] fans all cells out
/// across the engine's pool and collects a `rows × designs` result matrix
/// in declaration order.
pub struct SweepGrid<'a> {
    designs: &'a [Box<dyn Accelerator>],
    rows: Vec<Vec<Workload>>,
}

impl<'a> SweepGrid<'a> {
    /// An empty grid over the given design registry.
    pub fn new(designs: &'a [Box<dyn Accelerator>]) -> Self {
        Self {
            designs,
            rows: Vec::new(),
        }
    }

    /// The design registry the grid evaluates.
    pub fn designs(&self) -> &[Box<dyn Accelerator>] {
        self.designs
    }

    /// Number of rows pushed so far.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Adds one sweep row, deriving each design's co-designed workload from
    /// the builder (`§7.1.2`: every design is handed the workload in the
    /// sparsity pattern it was designed for).
    pub fn push_row_with(&mut self, build: impl FnMut(&dyn Accelerator) -> Workload) -> &mut Self {
        let mut build = build;
        self.rows
            .push(self.designs.iter().map(|d| build(d.as_ref())).collect());
        self
    }

    /// Adds one sweep row evaluating the same workload on every design.
    pub fn push_row(&mut self, workload: &Workload) -> &mut Self {
        self.push_row_with(|_| workload.clone())
    }

    /// Adds one sweep row from a fallible per-design workload builder,
    /// leaving the grid unchanged when any design's build fails — the
    /// serving layer turns the error into a structured response instead
    /// of panicking mid-sweep.
    ///
    /// # Errors
    /// The first builder error, verbatim.
    pub fn try_push_row_with<E>(
        &mut self,
        build: impl FnMut(&dyn Accelerator) -> Result<Workload, E>,
    ) -> Result<&mut Self, E> {
        let mut build = build;
        let row = self
            .designs
            .iter()
            .map(|d| build(d.as_ref()))
            .collect::<Result<Vec<_>, E>>()?;
        self.rows.push(row);
        Ok(self)
    }

    /// Evaluates every cell on the engine, returning `rows × designs`
    /// results in declaration order (`None` = unsupported). Output is
    /// byte-identical for any thread count.
    pub fn run(&self, engine: &Engine) -> Vec<Vec<Option<EvalResult>>> {
        // One fingerprint per design, shared by every cell in its column.
        let fingerprints: Vec<DesignFingerprint> = self
            .designs
            .iter()
            .map(|d| Engine::fingerprint(d.as_ref()))
            .collect();
        let cells: Vec<(usize, &Workload)> = self
            .rows
            .iter()
            .flat_map(|row| row.iter().enumerate())
            .collect();
        let flat = engine.map(&cells, |(d, w)| {
            engine
                .evaluate_best_keyed(self.designs[*d].as_ref(), &fingerprints[*d], w)
                .ok()
        });
        let n = self.designs.len();
        let mut out = Vec::with_capacity(self.rows.len());
        let mut it = flat.into_iter();
        for _ in 0..self.rows.len() {
            out.push(it.by_ref().take(n).collect());
        }
        out
    }

    /// Evaluates every cell inline on the caller thread with the plain,
    /// uncached [`evaluate_best`] — the reference path [`SweepGrid::run`]
    /// must reproduce byte-for-byte. Sharing the grid keeps both paths
    /// sweeping exactly the same cells.
    pub fn run_serial(&self) -> Vec<Vec<Option<EvalResult>>> {
        self.rows
            .iter()
            .map(|row| {
                row.iter()
                    .zip(self.designs)
                    .map(|(w, d)| evaluate_best(d.as_ref(), w).ok())
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_arch::AreaBreakdown;
    use std::sync::atomic::AtomicUsize;

    /// A design whose cycle count equals `m`, failing on dense A, and
    /// counting how many real evaluations it performed.
    struct Counting {
        evals: AtomicUsize,
    }

    /// The fingerprint must cover what `evaluate` *reads* (nothing here),
    /// not the instrumentation counter — a derived impl would print the
    /// mutating count and defeat the cache.
    impl std::fmt::Debug for Counting {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Counting")
        }
    }

    impl Counting {
        fn new() -> Self {
            Self {
                evals: AtomicUsize::new(0),
            }
        }
    }

    impl Accelerator for Counting {
        fn name(&self) -> &str {
            "counting"
        }
        fn evaluate(&self, w: &Workload) -> Result<EvalResult, Unsupported> {
            self.evals.fetch_add(1, Ordering::Relaxed);
            if w.a.is_dense() {
                return Err(Unsupported {
                    design: self.name().into(),
                    reason: "dense A".into(),
                });
            }
            Ok(EvalResult {
                design: self.name().into(),
                workload: w.name.clone(),
                cycles: w.shape.m as f64,
                energy: hl_arch::EnergyBreakdown::new(),
            })
        }
        fn area(&self) -> AreaBreakdown {
            AreaBreakdown::new()
        }
        fn supported_patterns(&self) -> String {
            "test".into()
        }
        fn swappable(&self) -> bool {
            false
        }
    }

    fn sparse_workload(name: &str, m: usize) -> Workload {
        Workload::new(
            name,
            GemmShape::new(m, 8, 4),
            OperandSparsity::unstructured(0.5),
            OperandSparsity::Dense,
        )
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 5, 16] {
            let out = parallel_map(threads, &items, |&i| i * 3);
            assert_eq!(out, items.iter().map(|&i| i * 3).collect::<Vec<_>>());
        }
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map(4, &empty, |&i: &usize| i).is_empty());
    }

    #[test]
    fn nested_parallel_map_runs_inline_on_the_worker() {
        let outer: Vec<usize> = (0..8).collect();
        let result = parallel_map(4, &outer, |&i| {
            let worker = std::thread::current().id();
            let inner: Vec<usize> = (0..4).collect();
            let (sums, threads): (Vec<usize>, Vec<_>) =
                parallel_map(4, &inner, |&j| (i * 10 + j, std::thread::current().id()))
                    .into_iter()
                    .unzip();
            assert!(
                threads.iter().all(|&t| t == worker),
                "nested maps must not spawn a second pool"
            );
            sums.iter().sum::<usize>()
        });
        let expect: Vec<usize> = outer.iter().map(|&i| i * 40 + 6).collect();
        assert_eq!(result, expect);
    }

    #[test]
    fn parallel_map_reraises_the_original_panic_payload() {
        let items: Vec<usize> = (0..64).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(4, &items, |&i| {
                if i == 13 {
                    panic!("cell 13 exploded");
                }
                i
            })
        }))
        .expect_err("the cell panic must propagate");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| caught.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("<non-string payload>");
        assert!(msg.contains("cell 13 exploded"), "payload was {msg:?}");
    }

    #[test]
    fn memo_survives_mutex_poisoning() {
        let memo: std::sync::Arc<Memo<u32, u32>> = std::sync::Arc::new(Memo::new());
        memo.get_or_insert_with(&1, || 10);
        // Poison the inner mutex: panic on another thread while holding it.
        let poisoner = std::sync::Arc::clone(&memo);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.map.lock().unwrap();
            panic!("poison");
        })
        .join();
        assert!(memo.map.lock().is_err(), "mutex must actually be poisoned");
        // Every entry point still works.
        assert_eq!(memo.get_or_insert_with(&1, || unreachable!()), 10);
        assert_eq!(memo.get_or_insert_with(&2, || 20), 20);
        assert_eq!(memo.len(), 2);
        memo.preload(3, 30);
        let mut entries = memo.entries();
        entries.sort_unstable();
        assert_eq!(entries, vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn memo_caches_and_counts() {
        let memo: Memo<u32, u32> = Memo::new();
        assert!(memo.is_empty());
        assert_eq!(memo.get_or_insert_with(&7, || 49), 49);
        assert_eq!(memo.get_or_insert_with(&7, || unreachable!()), 49);
        assert_eq!((memo.hits(), memo.misses(), memo.len()), (1, 1, 1));
    }

    #[test]
    fn memo_entries_and_preload_round_trip() {
        let memo: Memo<u32, u32> = Memo::new();
        assert_eq!(memo.get_or_insert_with(&1, || 10), 10);
        assert_eq!(memo.get_or_insert_with(&2, || 20), 20);
        let mut entries = memo.entries();
        entries.sort_unstable();
        assert_eq!(entries, vec![(1, 10), (2, 20)]);

        let warm: Memo<u32, u32> = Memo::new();
        for (k, v) in entries {
            warm.preload(k, v);
        }
        // Preloading counts neither hits nor misses and loses to live entries.
        assert_eq!((warm.hits(), warm.misses(), warm.len()), (0, 0, 2));
        warm.preload(1, 99);
        assert_eq!(warm.get_or_insert_with(&1, || unreachable!()), 10);
        assert_eq!((warm.hits(), warm.misses()), (1, 0));
    }

    #[test]
    fn engine_memoizes_identical_cells_and_relabels() {
        let engine = Engine::serial();
        let design = Counting::new();
        let r1 = engine
            .evaluate_best(&design, &sparse_workload("first", 16))
            .unwrap();
        let r2 = engine
            .evaluate_best(&design, &sparse_workload("second", 16))
            .unwrap();
        assert_eq!(design.evals.load(Ordering::Relaxed), 1, "cache must hit");
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.workload, "first");
        assert_eq!(r2.workload, "second", "hits are re-labeled");
        // A different shape is a different cell.
        engine
            .evaluate_best(&design, &sparse_workload("third", 32))
            .unwrap();
        assert_eq!(design.evals.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn engine_caches_unsupported_outcomes() {
        let engine = Engine::serial();
        let design = Counting::new();
        let dense = Workload::new(
            "d",
            GemmShape::new(4, 8, 4),
            OperandSparsity::Dense,
            OperandSparsity::Dense,
        );
        assert!(engine.evaluate_best(&design, &dense).is_err());
        assert!(engine.evaluate_best(&design, &dense).is_err());
        assert_eq!(design.evals.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn threads_resolution_clamps_and_defaults() {
        assert_eq!(Engine::with_threads(0).threads(), 1);
        assert_eq!(Engine::serial().threads(), 1);
        assert!(Engine::new().threads() >= 1);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn sweep_grid_shape_and_order() {
        let designs: Vec<Box<dyn Accelerator>> = vec![Box::new(Counting::new())];
        let mut grid = SweepGrid::new(&designs);
        for m in [8usize, 16, 24] {
            grid.push_row_with(|_| sparse_workload("w", m));
        }
        assert_eq!(grid.rows(), 3);
        let engine = Engine::with_threads(4);
        let out = grid.run(&engine);
        assert_eq!(out.len(), 3);
        let cycles: Vec<f64> = out
            .iter()
            .map(|row| row[0].as_ref().unwrap().cycles)
            .collect();
        assert_eq!(cycles, vec![8.0, 16.0, 24.0]);
        assert_eq!(out, grid.run_serial(), "pool and serial paths must agree");
    }

    #[test]
    fn fingerprint_distinguishes_same_name_configs() {
        /// Same `name()` for every instance; `factor` is configuration.
        #[derive(Debug)]
        struct Scaled {
            factor: f64,
        }
        impl Accelerator for Scaled {
            fn name(&self) -> &str {
                "scaled"
            }
            fn evaluate(&self, w: &Workload) -> Result<EvalResult, Unsupported> {
                Ok(EvalResult {
                    design: self.name().into(),
                    workload: w.name.clone(),
                    cycles: w.shape.m as f64 * self.factor,
                    energy: hl_arch::EnergyBreakdown::new(),
                })
            }
            fn area(&self) -> AreaBreakdown {
                AreaBreakdown::new()
            }
            fn supported_patterns(&self) -> String {
                "any".into()
            }
            fn swappable(&self) -> bool {
                false
            }
        }
        let engine = Engine::serial();
        let w = sparse_workload("w", 10);
        let base = engine.evaluate_best(&Scaled { factor: 1.0 }, &w).unwrap();
        let ablated = engine.evaluate_best(&Scaled { factor: 3.0 }, &w).unwrap();
        assert_eq!(base.cycles, 10.0);
        assert_eq!(
            ablated.cycles, 30.0,
            "differently-configured same-name designs must not share cache entries"
        );
    }

    #[test]
    fn operand_keys_distinguish_descriptors() {
        use hl_sparsity::{Gh, HssPattern};
        let dense: OperandKey = (&OperandSparsity::Dense).into();
        let half: OperandKey = (&OperandSparsity::unstructured(0.5)).into();
        let pattern: OperandKey =
            (&OperandSparsity::Hss(HssPattern::one_rank(Gh::new(2, 4)))).into();
        assert_ne!(dense, half);
        assert_ne!(half, pattern);
        let half2: OperandKey = (&OperandSparsity::unstructured(0.5)).into();
        assert_eq!(half, half2);
    }
}
