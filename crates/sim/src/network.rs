//! Network-level evaluation: the whole-DNN counterpart of [`Workload`].
//!
//! The paper's headline results (Figs. 13–16) are *network-level* —
//! whole-model EDP/accuracy trade-offs across ResNet-50, DeiT-S, and
//! Transformer-Big — so the evaluation stack treats networks as
//! first-class workloads rather than an ad-hoc per-layer loop:
//!
//! - [`NetworkWorkload`]: the lowered IR — one named per-layer GEMM
//!   [`Workload`] (with its occurrence count) per layer of a DNN. Model
//!   inventories lower themselves into this IR (`hl_models` implements
//!   `DnnModel::lower`), resolving each layer's operand descriptors from a
//!   pruning configuration through a design-specific [`SparsityMapping`];
//! - [`NetworkEval`]: the result — per-layer [`LayerEval`] breakdowns with
//!   [`Unsupported`] propagated *per layer* (a design that cannot run one
//!   dense layer still reports every other layer), plus aggregate cycles /
//!   energy / EDP / ED² and MACs-weighted utilization;
//! - [`evaluate_network`]: the serial, uncached reference evaluation;
//! - [`Engine::evaluate_network`]: the engine path — layers fan out across
//!   the worker pool and hit the [`crate::engine::EvalCache`]
//!   individually, so sweeping configurations over a model re-evaluates
//!   only the layers whose `(design, shape, operands)` cell changed.
//!
//! Both paths produce byte-identical results (aggregates accumulate in
//! layer order regardless of scheduling), the property the workspace's
//! network determinism tests assert.

use crate::engine::Engine;
use crate::eval::{evaluate_best, Accelerator, EvalResult, Unsupported};
use crate::workload::{OperandSparsity, Workload};

/// Peak MAC throughput of the shared Table 4 resource class (every MAC
/// unit retiring one MAC per cycle) — the denominator of
/// [`NetworkEval::utilization`].
pub const PEAK_MACS_PER_CYCLE: f64 = crate::analytic::Resources::TC_CLASS_MACS as f64;

/// How abstract sparsity *degrees* map to one design's operand
/// descriptors — the §7.1.2 co-design step, supplied by the front-end
/// (each design is handed workloads in the sparsity pattern it was
/// designed for).
pub trait SparsityMapping {
    /// The operand A (weight) descriptor for a weight-sparsity degree.
    fn operand_a(&self, weight_sparsity: f64) -> OperandSparsity;

    /// The operand B (activation) descriptor for an activation-sparsity
    /// degree.
    fn operand_b(&self, activation_sparsity: f64) -> OperandSparsity;

    /// The operand A descriptor for weights already pruned to an explicit
    /// HSS pattern. The default passes the pattern through unchanged;
    /// mappings for designs that must re-quantize foreign `G:H` shapes
    /// can override it.
    fn operand_a_hss(&self, pattern: &hl_sparsity::HssPattern) -> OperandSparsity {
        OperandSparsity::Hss(pattern.clone())
    }
}

/// One layer of a lowered network: a GEMM workload plus how many times the
/// network executes it.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkLayer {
    /// The lowered GEMM (named after the layer).
    pub workload: Workload,
    /// Occurrences of this shape in the network.
    pub count: u32,
}

impl NetworkLayer {
    /// Creates a layer.
    ///
    /// # Panics
    /// Panics if `count == 0`.
    pub fn new(workload: Workload, count: u32) -> Self {
        assert!(count > 0, "layer count must be positive");
        Self { workload, count }
    }

    /// Dense MACs over all occurrences.
    pub fn dense_macs(&self) -> f64 {
        self.workload.dense_macs() * f64::from(self.count)
    }

    /// Expected effectual MACs over all occurrences.
    pub fn effectual_macs(&self) -> f64 {
        self.workload.effectual_macs() * f64::from(self.count)
    }
}

/// A whole-network workload: the per-layer GEMM IR every network-level
/// evaluation runs on.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkWorkload {
    /// Network name (for reports).
    pub name: String,
    /// The lowered layers, in network order.
    pub layers: Vec<NetworkLayer>,
}

impl NetworkWorkload {
    /// Creates a network workload.
    pub fn new(name: impl Into<String>, layers: Vec<NetworkLayer>) -> Self {
        Self {
            name: name.into(),
            layers,
        }
    }

    /// Total dense MACs over all layers × occurrences.
    pub fn total_dense_macs(&self) -> f64 {
        self.layers.iter().map(NetworkLayer::dense_macs).sum()
    }
}

/// One layer's outcome inside a [`NetworkEval`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerEval {
    /// The evaluated workload (name, shape, operands).
    pub workload: Workload,
    /// Occurrences of this layer in the network.
    pub count: u32,
    /// The evaluation, or why the design cannot run this layer.
    pub outcome: Result<EvalResult, Unsupported>,
}

impl LayerEval {
    /// Layer name.
    pub fn name(&self) -> &str {
        &self.workload.name
    }

    /// Dense MACs over all occurrences.
    pub fn dense_macs(&self) -> f64 {
        self.workload.dense_macs() * f64::from(self.count)
    }

    /// Total cycles over all occurrences; `None` when unsupported.
    pub fn cycles(&self) -> Option<f64> {
        let r = self.outcome.as_ref().ok()?;
        Some(r.cycles * f64::from(self.count))
    }

    /// Total energy (J) over all occurrences; `None` when unsupported.
    pub fn energy_j(&self) -> Option<f64> {
        let r = self.outcome.as_ref().ok()?;
        Some(r.energy_j() * f64::from(self.count))
    }

    /// Total latency (s) over all occurrences; `None` when unsupported.
    pub fn latency_s(&self) -> Option<f64> {
        let r = self.outcome.as_ref().ok()?;
        Some(r.latency_s() * f64::from(self.count))
    }

    /// Fraction of the peak MAC throughput the layer sustains:
    /// effectual MACs / (cycles × `peak`); `None` when unsupported.
    pub fn utilization(&self, peak_macs_per_cycle: f64) -> Option<f64> {
        let r = self.outcome.as_ref().ok()?;
        if r.cycles <= 0.0 {
            return Some(0.0);
        }
        Some(self.workload.effectual_macs() / (r.cycles * peak_macs_per_cycle))
    }
}

/// The outcome of evaluating a [`NetworkWorkload`] on one design:
/// per-layer breakdowns plus whole-network aggregates.
///
/// Unsupported layers do not fail the whole evaluation — each layer
/// carries its own [`Unsupported`], and the aggregates are `None` exactly
/// when at least one layer cannot run (§7.3: S2TA cannot process DeiT's
/// dense QKV projections, but its other layers still evaluate).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkEval {
    /// Design name.
    pub design: String,
    /// Network name.
    pub network: String,
    /// Per-layer outcomes, in network order.
    pub layers: Vec<LayerEval>,
}

impl NetworkEval {
    /// True when every layer evaluated.
    pub fn supported(&self) -> bool {
        self.layers.iter().all(|l| l.outcome.is_ok())
    }

    /// The first unsupported layer's error, if any.
    pub fn first_unsupported(&self) -> Option<&Unsupported> {
        self.layers.iter().find_map(|l| l.outcome.as_ref().err())
    }

    /// Aggregate cycles (Σ per-layer cycles × count, in layer order);
    /// `None` when any layer is unsupported.
    pub fn cycles(&self) -> Option<f64> {
        self.layers.iter().map(LayerEval::cycles).sum()
    }

    /// Aggregate energy in J (layer-order sum); `None` when any layer is
    /// unsupported.
    pub fn energy_j(&self) -> Option<f64> {
        self.layers.iter().map(LayerEval::energy_j).sum()
    }

    /// Aggregate latency in s (layer-order sum); `None` when any layer is
    /// unsupported.
    pub fn latency_s(&self) -> Option<f64> {
        self.layers.iter().map(LayerEval::latency_s).sum()
    }

    /// Whole-network energy-delay product (J·s); `None` when any layer is
    /// unsupported.
    pub fn edp(&self) -> Option<f64> {
        Some(self.energy_j()? * self.latency_s()?)
    }

    /// Whole-network energy-delay² product (J·s²); `None` when any layer
    /// is unsupported.
    pub fn ed2(&self) -> Option<f64> {
        let l = self.latency_s()?;
        Some(self.energy_j()? * l * l)
    }

    /// Dense-MACs-weighted mean of the per-layer utilizations at the
    /// shared [`PEAK_MACS_PER_CYCLE`]; `None` when any layer is
    /// unsupported or the network is empty.
    pub fn utilization(&self) -> Option<f64> {
        self.utilization_at(PEAK_MACS_PER_CYCLE)
    }

    /// [`NetworkEval::utilization`] against an explicit peak throughput.
    pub fn utilization_at(&self, peak_macs_per_cycle: f64) -> Option<f64> {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for layer in &self.layers {
            weighted += layer.dense_macs() * layer.utilization(peak_macs_per_cycle)?;
            total += layer.dense_macs();
        }
        if total == 0.0 {
            return None;
        }
        Some(weighted / total)
    }
}

/// Evaluates every layer of `network` on `design` inline on the caller
/// thread with the plain, uncached [`evaluate_best`] — the reference path
/// [`Engine::evaluate_network`] must reproduce byte-for-byte.
pub fn evaluate_network(design: &dyn Accelerator, network: &NetworkWorkload) -> NetworkEval {
    NetworkEval {
        design: design.name().to_string(),
        network: network.name.clone(),
        layers: network
            .layers
            .iter()
            .map(|l| LayerEval {
                workload: l.workload.clone(),
                count: l.count,
                outcome: evaluate_best(design, &l.workload),
            })
            .collect(),
    }
}

impl Engine {
    /// Network evaluation on the engine: layers fan out across the worker
    /// pool and each `(design, shape, operands)` cell hits the
    /// [`crate::engine::EvalCache`] individually, so repeated
    /// configurations over the same model replay unchanged layers from
    /// the memo. Results are identical to [`evaluate_network`] for any
    /// thread count (deterministic ordered collect + pure evaluations).
    pub fn evaluate_network(
        &self,
        design: &dyn Accelerator,
        network: &NetworkWorkload,
    ) -> NetworkEval {
        self.evaluate_network_keyed(design, &Engine::fingerprint(design), network)
    }

    /// [`Engine::evaluate_network`] with a hoisted design fingerprint —
    /// the search path evaluating many configurations of one model on one
    /// design computes [`Engine::fingerprint`] once for the whole sweep
    /// instead of once per layer evaluation.
    pub fn evaluate_network_keyed(
        &self,
        design: &dyn Accelerator,
        fingerprint: &crate::engine::DesignFingerprint,
        network: &NetworkWorkload,
    ) -> NetworkEval {
        let outcomes = self.map(&network.layers, |l| {
            self.evaluate_best_keyed(design, fingerprint, &l.workload)
        });
        NetworkEval {
            design: design.name().to_string(),
            network: network.name.clone(),
            layers: network
                .layers
                .iter()
                .zip(outcomes)
                .map(|(l, outcome)| LayerEval {
                    workload: l.workload.clone(),
                    count: l.count,
                    outcome,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_arch::AreaBreakdown;
    use hl_tensor::GemmShape;

    /// Cycles = `m`; fails on a dense operand A.
    #[derive(Debug)]
    struct SparseOnly;

    impl Accelerator for SparseOnly {
        fn name(&self) -> &str {
            "sparse-only"
        }
        fn evaluate(&self, w: &Workload) -> Result<EvalResult, Unsupported> {
            if w.a.is_dense() {
                return Err(Unsupported {
                    design: self.name().into(),
                    reason: "dense A".into(),
                });
            }
            let mut energy = hl_arch::EnergyBreakdown::new();
            energy.record(hl_arch::Comp::Mac, w.shape.m as f64);
            Ok(EvalResult {
                design: self.name().into(),
                workload: w.name.clone(),
                cycles: w.shape.m as f64,
                energy,
            })
        }
        fn area(&self) -> AreaBreakdown {
            AreaBreakdown::new()
        }
        fn supported_patterns(&self) -> String {
            "A sparse".into()
        }
        fn swappable(&self) -> bool {
            false
        }
    }

    fn layer(name: &str, m: usize, sparse: bool, count: u32) -> NetworkLayer {
        let a = if sparse {
            OperandSparsity::unstructured(0.5)
        } else {
            OperandSparsity::Dense
        };
        NetworkLayer::new(
            Workload::new(name, GemmShape::new(m, 8, 4), a, OperandSparsity::Dense),
            count,
        )
    }

    fn network() -> NetworkWorkload {
        NetworkWorkload::new(
            "net",
            vec![layer("l0", 16, true, 2), layer("l1", 32, true, 1)],
        )
    }

    #[test]
    fn aggregates_sum_over_layers_with_counts() {
        let eval = evaluate_network(&SparseOnly, &network());
        assert!(eval.supported());
        assert_eq!(eval.cycles(), Some(16.0 * 2.0 + 32.0));
        // Energy: pJ = m per occurrence → J.
        let expect = (16.0 * 2.0 + 32.0) * 1e-12;
        assert!((eval.energy_j().unwrap() - expect).abs() < 1e-24);
        assert_eq!(
            eval.edp(),
            Some(eval.energy_j().unwrap() * eval.latency_s().unwrap())
        );
        assert!(eval.ed2().unwrap() > 0.0);
    }

    #[test]
    fn unsupported_propagates_per_layer_not_whole_network() {
        let nw = NetworkWorkload::new(
            "mixed",
            vec![layer("ok", 8, true, 1), layer("dense", 8, false, 1)],
        );
        let eval = evaluate_network(&SparseOnly, &nw);
        assert!(!eval.supported());
        assert!(eval.layers[0].outcome.is_ok(), "good layers still report");
        assert!(eval.layers[1].outcome.is_err());
        assert_eq!(eval.first_unsupported().unwrap().reason, "dense A");
        assert_eq!(eval.cycles(), None, "aggregates are None when partial");
        assert_eq!(eval.edp(), None);
        assert_eq!(eval.utilization(), None);
    }

    #[test]
    fn engine_path_matches_serial_reference() {
        let nw = network();
        let serial = evaluate_network(&SparseOnly, &nw);
        for threads in [1, 2, 8] {
            let engine = Engine::with_threads(threads);
            assert_eq!(engine.evaluate_network(&SparseOnly, &nw), serial);
        }
    }

    #[test]
    fn engine_network_eval_hits_the_cache_per_layer() {
        let engine = Engine::serial();
        let nw = network();
        engine.evaluate_network(&SparseOnly, &nw);
        let misses = engine.eval_cache().misses();
        // Identical layers replay from the memo: no new misses.
        engine.evaluate_network(&SparseOnly, &nw);
        assert_eq!(engine.eval_cache().misses(), misses);
        assert!(engine.eval_cache().hits() >= 2);
    }

    #[test]
    fn utilization_is_macs_weighted() {
        // Each layer: cycles = m, effectual macs = m*8*4*0.5 ⇒ per-layer
        // utilization = 16/peak for every layer, so the weighted mean is
        // the same regardless of weights.
        let eval = evaluate_network(&SparseOnly, &network());
        let u = eval.utilization().unwrap();
        assert!((u - 16.0 / PEAK_MACS_PER_CYCLE).abs() < 1e-12);
        let explicit = eval.utilization_at(16.0).unwrap();
        assert!((explicit - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_macs_accumulate() {
        let nw = network();
        assert_eq!(nw.total_dense_macs(), (16.0 * 2.0 + 32.0) * 8.0 * 4.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_count_layer_panics() {
        let _ = layer("bad", 4, true, 0);
    }
}
