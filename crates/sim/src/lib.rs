//! Sparse-accelerator modeling engine (the Sparseloop substitute).
//!
//! This crate defines the shared evaluation machinery used by the HighLight
//! model ([`highlight-core`]) and the baselines ([`hl-baselines`]):
//!
//! - [`Workload`] / [`OperandSparsity`]: a GEMM plus per-operand sparsity
//!   descriptors (dense, unstructured with a degree, or an HSS pattern);
//! - [`Accelerator`] / [`EvalResult`]: the analytical-evaluation interface —
//!   cycles, per-component energy, area, EDP/ED² — with operand-swapping
//!   harness support (§7.1.1 lets designs swap operands and report the best);
//! - [`balance`]: the workload-balance model for unstructured designs —
//!   exact expectation of per-tile step counts under binomial occupancy,
//!   reproducing DSTC's imbalance penalty (§2.2.1, §7.2);
//! - [`engine`]: the parallel design-space evaluation engine — a scoped
//!   worker pool with a deterministic ordered collect, memoization of
//!   repeated pure evaluations, and the [`engine::SweepGrid`] abstraction
//!   over `(design, workload)` sweep cells;
//! - [`network`]: network-level evaluation — the [`network::NetworkWorkload`]
//!   IR of a whole DNN (named per-layer GEMMs with occurrence counts) and
//!   the [`network::NetworkEval`] result (per-layer breakdowns, aggregate
//!   EDP/ED², MACs-weighted utilization), with layers fanning out across
//!   the engine pool and hitting the eval cache individually;
//! - [`pareto`]: bi-objective Pareto dominance over minimized `(f64, f64)`
//!   objectives — the frontier machinery under the §7.1.2 co-design search
//!   and the Fig. 15 frontier check;
//! - [`micro`]: a **functional** cycle-counting simulator of the down-sized
//!   HighLight micro-architecture of §6 (Figs. 9–12): hierarchical CP
//!   metadata decode, Rank1 skipping with a VFMU performing variable-length
//!   shifts, Rank0 skipping muxes, and gating on sparse operand B. Its
//!   output is checked bit-for-bit against the reference GEMM, and its
//!   action counts anchor the analytical models.
//!
//! [`highlight-core`]: ../highlight_core/index.html
//! [`hl-baselines`]: ../hl_baselines/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod balance;
pub mod dataflow;
pub mod engine;
pub mod micro;
pub mod network;
pub mod pareto;

mod eval;
mod workload;

pub use eval::{
    check_densities, evaluate_best, geomean, Accelerator, EvalResult, Unsupported, CLOCK_GHZ,
};
pub use workload::{OperandSparsity, Workload};
