//! Workload-balance modeling for unstructured sparse designs.
//!
//! Structured skipping achieves *perfect* balance: `G:H` guarantees each of
//! the `G` lanes a nonzero (§5.1). Unstructured designs cannot — the number
//! of effectual operations per tile is random, so `lanes`-wide hardware
//! spends `ceil(X/lanes)` steps on a tile with `X` nonzeros and idles in the
//! last step whenever `X mod lanes ≠ 0` (DSTC balances perfectly only when a
//! sub-tensor's occupancy is a multiple of its 32-wide columns, §2.2.1).
//!
//! This module computes the exact expectation of the step count under a
//! binomial occupancy model `X ~ Binomial(n, density)`.

/// Probability mass function of `Binomial(n, p)` computed iteratively in a
/// numerically stable way. Returns a vector of `n + 1` probabilities.
fn binomial_pmf(n: usize, p: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut pmf = vec![0.0; n + 1];
    if p == 0.0 {
        pmf[0] = 1.0;
        return pmf;
    }
    if p == 1.0 {
        pmf[n] = 1.0;
        return pmf;
    }
    // Log-space evaluation avoids under/overflow for n in the thousands.
    let (lp, lq) = (p.ln(), (1.0 - p).ln());
    let mut log_choose = 0.0f64; // ln C(n, 0)
    for (k, slot) in pmf.iter_mut().enumerate() {
        *slot = (log_choose + k as f64 * lp + (n - k) as f64 * lq).exp();
        if k < n {
            log_choose += ((n - k) as f64).ln() - ((k + 1) as f64).ln();
        }
    }
    pmf
}

/// Expected processing steps and utilization for a tile of `n` positions at
/// the given `density`, processed by `lanes` parallel units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceModel {
    /// Expected `ceil(X / lanes)` steps per tile.
    pub expected_steps: f64,
    /// Expected nonzeros per tile (`n · density`).
    pub expected_work: f64,
    /// Utilization: `expected_work / (lanes · expected_steps)`; 1.0 means
    /// perfect balance.
    pub utilization: f64,
}

/// Computes the balance model for `X ~ Binomial(n, density)` on `lanes`
/// parallel units.
///
/// # Panics
/// Panics if `lanes == 0`, `n == 0`, or `density` is outside `[0, 1]`.
pub fn binomial_balance(n: usize, density: f64, lanes: usize) -> BalanceModel {
    assert!(lanes > 0 && n > 0, "tile and lane counts must be positive");
    let pmf = binomial_pmf(n, density);
    let mut expected_steps = 0.0;
    for (k, &pk) in pmf.iter().enumerate() {
        expected_steps += pk * (k.div_ceil(lanes)) as f64;
    }
    let expected_work = n as f64 * density;
    let utilization = if expected_steps == 0.0 {
        1.0
    } else {
        expected_work / (lanes as f64 * expected_steps)
    };
    BalanceModel {
        expected_steps,
        expected_work,
        utilization,
    }
}

/// Utilization of a *structured* `G:H` tile on `lanes` units: exactly `G`
/// nonzeros arrive per block and `G` divides the lane count by design, so
/// balance is perfect (§5.1).
pub fn structured_utilization() -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[
            (10usize, 0.3f64),
            (100, 0.5),
            (1000, 0.25),
            (64, 0.0),
            (64, 1.0),
        ] {
            let pmf = binomial_pmf(n, p);
            let sum: f64 = pmf.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "pmf sum for n={n} p={p}: {sum}");
            let mean: f64 = pmf.iter().enumerate().map(|(k, &pk)| k as f64 * pk).sum();
            assert!((mean - n as f64 * p).abs() < 1e-6);
        }
    }

    #[test]
    fn dense_tile_is_perfectly_balanced_when_divisible() {
        let b = binomial_balance(128, 1.0, 32);
        assert!((b.expected_steps - 4.0).abs() < 1e-12);
        assert!((b.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unstructured_utilization_is_below_one() {
        // 50% dense 128-wide tiles on 32 lanes: X ~ Bin(128, .5) is rarely a
        // multiple of 32, so the last step is underfilled.
        let b = binomial_balance(128, 0.5, 32);
        assert!(b.utilization < 1.0);
        assert!(
            b.utilization > 0.8,
            "utilization should be moderately high: {}",
            b.utilization
        );
        // Lower density worsens relative imbalance.
        let sparse = binomial_balance(128, 0.05, 32);
        assert!(sparse.utilization < b.utilization);
    }

    #[test]
    fn expected_steps_bounds() {
        let b = binomial_balance(64, 0.25, 16);
        // At least the work-limited bound, at most the dense bound.
        assert!(b.expected_steps >= 64.0 * 0.25 / 16.0);
        assert!(b.expected_steps <= 4.0);
    }

    #[test]
    fn structured_is_perfect() {
        assert_eq!(structured_utilization(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lanes_panics() {
        let _ = binomial_balance(8, 0.5, 0);
    }
}
