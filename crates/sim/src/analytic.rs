//! Shared analytical accounting for the accelerator models.
//!
//! Every design in the workspace (HighLight and the four baselines) is an
//! analytical model in the Sparseloop style: a workload is turned into
//! per-component *action counts*, and actions into energy via the
//! [`Tech`] table. This module centralizes the common pieces so the designs
//! differ only where the paper says they differ:
//!
//! - [`Resources`]: the Table 4 resource allocation (MACs, GLB, RF) shared
//!   across designs for fairness;
//! - [`TrafficModel`]: output-stationary tiling traffic — operands stream
//!   from DRAM once and from GLB once per reuse of the opposing operand's
//!   tile; partial sums live in the RF;
//! - [`Accountant`]: an energy ledger with one method per action type, so a
//!   design's `evaluate` reads like its §7 description.

use hl_arch::components::{Dram, MacUnit, MuxTree, RegFile, Sram, Vfmu};
use hl_arch::{Comp, EnergyBreakdown, Tech};
use hl_tensor::GemmShape;

/// Hardware resource allocation (paper Table 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resources {
    /// Total MAC units.
    pub macs: u64,
    /// GLB data partition capacity (KB).
    pub glb_kb: f64,
    /// GLB metadata partition capacity (KB); 0 for dense designs.
    pub glb_meta_kb: f64,
    /// Total register-file capacity (KB).
    pub rf_kb: f64,
    /// MACs spatially accumulating into one partial sum per cycle.
    pub spatial_accum: u64,
}

impl Resources {
    /// The Table 4 MAC allocation shared by every evaluated design (also
    /// the peak-throughput denominator of network-level utilization,
    /// [`crate::network::PEAK_MACS_PER_CYCLE`]).
    pub const TC_CLASS_MACS: u64 = 1024;

    /// The 1024-MAC, 4-PE-array allocation shared by TC / STC / DSTC /
    /// HighLight (Table 4: GLB split differs between dense and sparse).
    pub fn tc_class(glb_kb: f64, glb_meta_kb: f64) -> Self {
        Self {
            macs: Self::TC_CLASS_MACS,
            glb_kb,
            glb_meta_kb,
            rf_kb: 8.0,
            spatial_accum: 4,
        }
    }

    /// Output tile edge sizes `(Tm, Tn)`: the largest square tile of 16-bit
    /// partial sums that fits in the RF.
    pub fn output_tile(&self) -> (usize, usize) {
        let words = (self.rf_kb * 1024.0 / 2.0) as usize;
        let edge = (words as f64).sqrt() as usize;
        (edge.max(1), edge.max(1))
    }
}

/// GLB / DRAM word traffic under output-stationary tiling.
///
/// For an `M×K×N` GEMM with output tiles `Tm×Tn`: operand A words are read
/// from GLB once per column-tile (`⌈N/Tn⌉` times), operand B once per
/// row-tile (`⌈M/Tm⌉` times), and each operand crosses DRAM once. Stored
/// word counts respect compression (density < 1 ⇒ fewer words + metadata).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficModel {
    /// Operand A words read from GLB.
    pub a_glb_words: f64,
    /// Operand B words read from GLB.
    pub b_glb_words: f64,
    /// Output words written to / drained from GLB.
    pub z_glb_words: f64,
    /// Operand A words crossing DRAM.
    pub a_dram_words: f64,
    /// Operand B words crossing DRAM.
    pub b_dram_words: f64,
    /// Output words crossing DRAM.
    pub z_dram_words: f64,
    /// A-tile reuse count (`⌈N/Tn⌉`).
    pub a_reuse: f64,
    /// B-tile reuse count (`⌈M/Tm⌉`).
    pub b_reuse: f64,
}

/// A stored density outside `(0, 1]` (or non-finite) reached the traffic
/// model — the signature of a degenerate sparsity configuration (e.g. a
/// fully-pruned operand). Designs map this to [`crate::Unsupported`]
/// instead of panicking a sweep worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegenerateDensity {
    /// Which operand carried the density (`"A"` or `"B"`).
    pub operand: &'static str,
    /// The rejected stored density.
    pub density: f64,
}

impl std::fmt::Display for DegenerateDensity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "operand {} stored density {} is outside (0, 1] — nothing to store or compute",
            self.operand, self.density
        )
    }
}

impl std::error::Error for DegenerateDensity {}

impl TrafficModel {
    /// Builds the traffic model.
    ///
    /// `a_stored_density` / `b_stored_density` are the fractions of operand
    /// words actually stored (1.0 when uncompressed).
    ///
    /// # Panics
    /// Panics if a density is outside `(0, 1]`. Designs evaluating
    /// workload-derived densities use [`TrafficModel::try_new`] so a
    /// degenerate configuration becomes [`crate::Unsupported`] instead of
    /// a worker panic.
    pub fn new(
        shape: GemmShape,
        a_stored_density: f64,
        b_stored_density: f64,
        res: &Resources,
    ) -> Self {
        Self::try_new(shape, a_stored_density, b_stored_density, res)
            .unwrap_or_else(|e| panic!("invalid stored density: {e}"))
    }

    /// Fallible form of [`TrafficModel::new`].
    ///
    /// # Errors
    /// [`DegenerateDensity`] when a stored density is outside `(0, 1]` or
    /// non-finite.
    pub fn try_new(
        shape: GemmShape,
        a_stored_density: f64,
        b_stored_density: f64,
        res: &Resources,
    ) -> Result<Self, DegenerateDensity> {
        for (operand, density) in [("A", a_stored_density), ("B", b_stored_density)] {
            if !(density > 0.0 && density <= 1.0) {
                return Err(DegenerateDensity { operand, density });
            }
        }
        let (tm, tn) = res.output_tile();
        let a_reuse = (shape.n as f64 / tn as f64).ceil().max(1.0);
        let b_reuse = (shape.m as f64 / tm as f64).ceil().max(1.0);
        let a_words = shape.a_elems() as f64 * a_stored_density;
        let b_words = shape.b_elems() as f64 * b_stored_density;
        let z_words = shape.z_elems() as f64;
        Ok(Self {
            a_glb_words: a_words * a_reuse,
            b_glb_words: b_words * b_reuse,
            z_glb_words: 2.0 * z_words, // write + drain
            a_dram_words: a_words,
            b_dram_words: b_words,
            z_dram_words: z_words,
            a_reuse,
            b_reuse,
        })
    }
}

/// An energy ledger: one method per action class, accumulating into an
/// [`EnergyBreakdown`].
#[derive(Debug)]
pub struct Accountant {
    tech: Tech,
    res: Resources,
    energy: EnergyBreakdown,
}

impl Accountant {
    /// Creates a ledger for a design's resources.
    pub fn new(tech: Tech, res: Resources) -> Self {
        Self {
            tech,
            res,
            energy: EnergyBreakdown::new(),
        }
    }

    /// The technology table in use.
    pub fn tech(&self) -> &Tech {
        &self.tech
    }

    /// Effectual MACs: datapath energy plus the three operand/psum register
    /// accesses each MAC performs.
    pub fn macs(&mut self, count: f64) {
        self.energy
            .record(Comp::Mac, count * MacUnit.energy_pj(&self.tech));
        self.energy
            .record(Comp::Mac, count * 3.0 * self.tech.reg_pj);
    }

    /// Partial-sum RF read-modify-write traffic, `count` accesses.
    pub fn rf(&mut self, count: f64) {
        let rf = RegFile::new(self.res.rf_kb / 4.0); // per-array banks
        self.energy
            .record(Comp::RegFile, count * rf.access_pj(&self.tech));
    }

    /// GLB data-partition word accesses.
    pub fn glb(&mut self, words: f64) {
        let glb = Sram::new(self.res.glb_kb);
        self.energy
            .record(Comp::Glb, words * glb.access_pj(&self.tech));
    }

    /// GLB metadata-partition word accesses (+ decode at register cost).
    pub fn glb_meta(&mut self, words: f64) {
        let meta = Sram::new(self.res.glb_meta_kb.max(1.0));
        self.energy
            .record(Comp::GlbMeta, words * meta.access_pj(&self.tech));
        self.energy.record(Comp::MetaProc, words * self.tech.reg_pj);
    }

    /// DRAM word transfers.
    pub fn dram(&mut self, words: f64) {
        self.energy
            .record(Comp::Dram, words * Dram.access_pj(&self.tech));
    }

    /// On-chip distribution hops.
    pub fn noc(&mut self, words: f64) {
        self.energy.record(Comp::Noc, words * self.tech.noc_pj);
    }

    /// Skipping-SAF mux selections against `tree`, attributed to `comp`.
    pub fn mux(&mut self, comp: Comp, tree: MuxTree, selects: f64) {
        self.energy.record(
            comp,
            selects * tree.select_pj(&self.tech) / f64::from(tree.g),
        );
    }

    /// Words streamed through a VFMU.
    pub fn vfmu(&mut self, unit: Vfmu, words: f64) {
        self.energy
            .record(Comp::Vfmu, words * unit.word_pj(&self.tech));
    }

    /// Accumulation-buffer accesses of an outer-product dataflow
    /// (DSTC-style), on a buffer of `kb` KB.
    pub fn accum_buffer(&mut self, kb: f64, accesses: f64) {
        let buf = Sram::new(kb);
        self.energy
            .record(Comp::AccumBuf, accesses * buf.access_pj(&self.tech));
    }

    /// Prefix-sum intersection steps (SparTen-class control).
    pub fn prefix_sum(&mut self, unit: hl_arch::components::PrefixSum, steps: f64) {
        self.energy
            .record(Comp::PrefixSum, steps * unit.step_pj(&self.tech));
    }

    /// Output-activation compression work, `words` processed (Fig. 10's
    /// compression unit after the activation function).
    pub fn compressor(&mut self, words: f64) {
        self.energy
            .record(Comp::Compressor, words * 2.0 * self.tech.reg_pj);
    }

    /// Finishes the ledger.
    pub fn into_energy(self) -> EnergyBreakdown {
        self.energy
    }
}

/// Converts metadata bits to 16-bit metadata words.
pub fn meta_words(bits: f64) -> f64 {
    bits / 16.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_tile_fits_rf() {
        let res = Resources::tc_class(256.0, 64.0);
        let (tm, tn) = res.output_tile();
        assert_eq!((tm, tn), (64, 64)); // 8 KB -> 4096 psums -> 64x64
    }

    #[test]
    fn traffic_reuse_counts() {
        let res = Resources::tc_class(256.0, 64.0);
        let t = TrafficModel::new(GemmShape::new(1024, 1024, 1024), 1.0, 1.0, &res);
        assert_eq!(t.a_reuse, 16.0);
        assert_eq!(t.b_reuse, 16.0);
        assert_eq!(t.a_dram_words, 1024.0 * 1024.0);
        assert_eq!(t.a_glb_words, 1024.0 * 1024.0 * 16.0);
        assert_eq!(t.z_glb_words, 2.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn traffic_respects_compression() {
        let res = Resources::tc_class(256.0, 64.0);
        let dense = TrafficModel::new(GemmShape::new(256, 256, 256), 1.0, 1.0, &res);
        let sparse = TrafficModel::new(GemmShape::new(256, 256, 256), 0.25, 1.0, &res);
        assert!((sparse.a_glb_words - dense.a_glb_words * 0.25).abs() < 1e-9);
        assert_eq!(sparse.b_glb_words, dense.b_glb_words);
    }

    #[test]
    fn accountant_records_categories() {
        let res = Resources::tc_class(256.0, 64.0);
        let mut acc = Accountant::new(Tech::n65(), res);
        acc.macs(1000.0);
        acc.glb(100.0);
        acc.dram(10.0);
        acc.glb_meta(5.0);
        let e = acc.into_energy();
        assert!(e.get(Comp::Mac) > 0.0);
        assert!(e.get(Comp::Glb) > 0.0);
        assert!(e.get(Comp::Dram) > 0.0);
        assert!(e.sparsity_tax() > 0.0); // metadata is tax
                                         // DRAM per word costs more than GLB per word.
        assert!(e.get(Comp::Dram) / 10.0 > e.get(Comp::Glb) / 100.0);
    }

    #[test]
    #[should_panic(expected = "invalid stored density")]
    fn rejects_zero_density() {
        let res = Resources::tc_class(256.0, 64.0);
        let _ = TrafficModel::new(GemmShape::new(8, 8, 8), 0.0, 1.0, &res);
    }

    #[test]
    fn try_new_reports_degenerate_densities() {
        let res = Resources::tc_class(256.0, 64.0);
        let shape = GemmShape::new(8, 8, 8);
        assert!(TrafficModel::try_new(shape, 0.5, 1.0, &res).is_ok());
        for (a, b, operand) in [
            (0.0, 1.0, "A"),
            (1.0, 0.0, "B"),
            (1.5, 1.0, "A"),
            (f64::NAN, 1.0, "A"),
            (1.0, f64::NEG_INFINITY, "B"),
        ] {
            let err = TrafficModel::try_new(shape, a, b, &res).unwrap_err();
            assert_eq!(err.operand, operand, "{a} {b}");
            assert!(err.to_string().contains("(0, 1]"), "{err}");
        }
    }
}
