//! Loopnest representation of accelerator dataflows (paper Fig. 8b).
//!
//! A dataflow defines an accelerator's scheduling of data movement and
//! compute in space and time. Following the Timeloop/Sparseloop convention
//! the paper uses, a dataflow is an ordered nest of loops over the GEMM
//! dimensions `M`, `K`, `N`, each either *temporal* or *spatial* (unrolled
//! across parallel hardware). From the nest, per-operand **temporal reuse**
//! factors fall out mechanically: an operand is re-read once per iteration
//! of every loop above its buffering level that does not index it.
//!
//! [`Loopnest::highlight`] builds the paper's HSS-operand stationary
//! dataflow: Rank0 blocks of operand A are pinned in PE registers (the `K`
//! spatial levels sit innermost) and reused across the `N` streaming loop,
//! while partial sums accumulate spatially across PEs.

use std::fmt;

use hl_tensor::GemmShape;

/// A GEMM iteration dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Output rows (indexes A and Z).
    M,
    /// Contraction dimension (indexes A and B).
    K,
    /// Output columns (indexes B and Z).
    N,
}

impl Dim {
    /// True if the dimension indexes the given operand.
    pub fn indexes(self, operand: Operand) -> bool {
        matches!(
            (self, operand),
            (Dim::M, Operand::A | Operand::Z)
                | (Dim::K, Operand::A | Operand::B)
                | (Dim::N, Operand::B | Operand::Z)
        )
    }
}

/// One of the three GEMM operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The weight-like operand (`M×K`).
    A,
    /// The activation-like operand (`K×N`).
    B,
    /// The output (`M×N`).
    Z,
}

/// One loop level of a nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Loop {
    /// Dimension iterated at this level.
    pub dim: Dim,
    /// Trip count.
    pub extent: usize,
    /// Spatial (unrolled in hardware) vs temporal.
    pub spatial: bool,
}

impl Loop {
    /// A temporal loop.
    pub fn temporal(dim: Dim, extent: usize) -> Self {
        Self {
            dim,
            extent,
            spatial: false,
        }
    }

    /// A spatial loop.
    pub fn spatial(dim: Dim, extent: usize) -> Self {
        Self {
            dim,
            extent,
            spatial: true,
        }
    }
}

/// An ordered loop nest, outermost first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loopnest {
    loops: Vec<Loop>,
}

impl Loopnest {
    /// Creates a nest from loops ordered outermost first.
    ///
    /// # Panics
    /// Panics if any extent is zero or the nest is empty.
    pub fn new(loops: Vec<Loop>) -> Self {
        assert!(!loops.is_empty(), "loop nest cannot be empty");
        assert!(
            loops.iter().all(|l| l.extent > 0),
            "loop extents must be positive"
        );
        Self { loops }
    }

    /// HighLight's HSS-operand stationary dataflow for `shape` (Fig. 8b):
    ///
    /// ```text
    /// for m1 in M/Tm:                    # temporal, DRAM->GLB tiles
    ///   for n1 in N/Tn:                  # temporal
    ///     for k1 in K/(H1*H0):           # temporal: Rank1 groups (VFMU walk)
    ///       for m0 in Tm:                # temporal within the tile
    ///         for n0 in Tn:              # temporal: B streams, A stationary
    ///           par-for k0b in G1:       # spatial: PEs (non-empty blocks)
    ///             par-for k0v in G0:     # spatial: MACs within a PE
    /// ```
    ///
    /// The spatial `K` extent is `G1·G0` because skipping maps only the
    /// *non-empty* block/value slots onto hardware; the temporal `K` extent
    /// is the number of Rank1 groups, giving `M·N·K·(G1 G0)/(H1 H0)`
    /// effectual iterations in total.
    ///
    /// # Panics
    /// Panics if the tile sizes do not divide the shape or `K` is not a
    /// multiple of `H1·H0`.
    pub fn highlight(
        shape: GemmShape,
        tm: usize,
        tn: usize,
        g1: usize,
        h1: usize,
        g0: usize,
        h0: usize,
    ) -> Self {
        assert!(
            shape.m.is_multiple_of(tm) && shape.n.is_multiple_of(tn),
            "tiles must divide the shape"
        );
        let group = h1 * h0;
        assert!(
            shape.k.is_multiple_of(group),
            "K must be a multiple of H1*H0"
        );
        Self::new(vec![
            Loop::temporal(Dim::M, shape.m / tm),
            Loop::temporal(Dim::N, shape.n / tn),
            Loop::temporal(Dim::K, shape.k / group),
            Loop::temporal(Dim::M, tm),
            Loop::temporal(Dim::N, tn),
            Loop::spatial(Dim::K, g1),
            Loop::spatial(Dim::K, g0),
        ])
    }

    /// The loops, outermost first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Product of all loop extents (total iteration-space points mapped).
    pub fn iterations(&self) -> u64 {
        self.loops.iter().map(|l| l.extent as u64).product()
    }

    /// Product of spatial extents: hardware units active per cycle.
    pub fn spatial_size(&self) -> u64 {
        self.loops
            .iter()
            .filter(|l| l.spatial)
            .map(|l| l.extent as u64)
            .product()
    }

    /// Temporal steps (cycles) the nest takes: iterations / spatial size.
    pub fn steps(&self) -> u64 {
        self.iterations() / self.spatial_size()
    }

    /// Product of extents for one dimension across the nest.
    pub fn extent_of(&self, dim: Dim) -> u64 {
        self.loops
            .iter()
            .filter(|l| l.dim == dim)
            .map(|l| l.extent as u64)
            .product()
    }

    /// Checks that the nest covers the GEMM (per-dimension extents multiply
    /// to the effective dimension sizes).
    ///
    /// `k_effective` is the number of `K` points actually mapped — for a
    /// skipping dataflow this is `K · density` (only non-empty slots get
    /// hardware), for a dense dataflow it is `K`.
    pub fn validate(&self, shape: GemmShape, k_effective: u64) -> Result<(), String> {
        if self.extent_of(Dim::M) != shape.m as u64 {
            return Err(format!(
                "M coverage {} != {}",
                self.extent_of(Dim::M),
                shape.m
            ));
        }
        if self.extent_of(Dim::N) != shape.n as u64 {
            return Err(format!(
                "N coverage {} != {}",
                self.extent_of(Dim::N),
                shape.n
            ));
        }
        if self.extent_of(Dim::K) != k_effective {
            return Err(format!(
                "K coverage {} != {}",
                self.extent_of(Dim::K),
                k_effective
            ));
        }
        Ok(())
    }

    /// Temporal reuse of an operand at loop level `level` (0 = outermost):
    /// the product of extents of *temporal* loops at or below `level` that
    /// do **not** index the operand. This is how many times the buffered
    /// tile at that level is read before being replaced.
    pub fn temporal_reuse(&self, operand: Operand, level: usize) -> u64 {
        self.loops[level..]
            .iter()
            .filter(|l| !l.spatial && !l.dim.indexes(operand))
            .map(|l| l.extent as u64)
            .product()
    }

    /// Reuse of the operand's GLB-resident tile: temporal reuse below the
    /// tile loops, i.e. the number of times the opposing dimension's inner
    /// tile loop re-reads it. For the HighLight nest this reproduces the
    /// `TrafficModel` reuse counts.
    pub fn glb_refetches(&self, operand: Operand) -> u64 {
        // Tiles live at the outermost level; each outer iteration of a
        // non-indexing dimension re-streams the operand from GLB.
        let mut refetch = 1u64;
        for l in &self.loops {
            if l.spatial {
                break;
            }
            if !l.dim.indexes(operand) {
                refetch *= l.extent as u64;
                // Only the outermost non-indexing tile loop forces refetch;
                // deeper ones hit the same resident tile.
                break;
            }
        }
        refetch
    }
}

impl fmt::Display for Loopnest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.loops.iter().enumerate() {
            let kind = if l.spatial { "par-for" } else { "for" };
            writeln!(
                f,
                "{:indent$}{kind} {:?} in 0..{}",
                "",
                l.dim,
                l.extent,
                indent = i * 2
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nest() -> Loopnest {
        // 1024^3 GEMM, 64x64 tiles, C1(4:8)->C0(2:4).
        Loopnest::highlight(GemmShape::new(1024, 1024, 1024), 64, 64, 4, 8, 2, 4)
    }

    #[test]
    fn covers_the_effectual_iteration_space() {
        let n = nest();
        // Skipping maps K*density points: 1024 * (4/8)*(2/4) = 256.
        n.validate(GemmShape::new(1024, 1024, 1024), 256).unwrap();
        assert_eq!(n.spatial_size(), 8); // G1*G0 MACs per PE row
        assert_eq!(n.iterations(), 1024 * 1024 * 256);
    }

    #[test]
    fn steps_match_the_analytical_cycle_factor() {
        let n = nest();
        // steps * (spatial rows per design) == analytic cycles:
        // M*N*K/(H1*H0) steps for one PE row of G1*G0 MACs.
        assert_eq!(n.steps(), 1024 * 1024 * (1024 / 32));
    }

    #[test]
    fn a_is_stationary_across_the_n_stream() {
        let n = nest();
        // Innermost temporal loop is N (B streams while A sits in registers):
        let innermost_temporal = n.loops().iter().rev().find(|l| !l.spatial).unwrap();
        assert_eq!(innermost_temporal.dim, Dim::N);
        // A's register-resident block is reused Tn times at that level.
        assert_eq!(n.temporal_reuse(Operand::A, 4), 64);
    }

    #[test]
    fn glb_refetches_match_traffic_model() {
        let n = nest();
        // A is re-streamed once per N/Tn tile, B once per M/Tm tile.
        assert_eq!(n.glb_refetches(Operand::A), 16);
        assert_eq!(n.glb_refetches(Operand::B), 16);
        let res = crate::analytic::Resources::tc_class(256.0, 64.0);
        let t =
            crate::analytic::TrafficModel::new(GemmShape::new(1024, 1024, 1024), 1.0, 1.0, &res);
        assert_eq!(n.glb_refetches(Operand::A) as f64, t.a_reuse);
        assert_eq!(n.glb_refetches(Operand::B) as f64, t.b_reuse);
    }

    #[test]
    fn output_is_reused_across_k() {
        let n = nest();
        // Z accumulates across all K groups: temporal reuse at the psum
        // level (below the K loop) excludes M and N.
        assert_eq!(n.temporal_reuse(Operand::Z, 2), 32);
    }

    #[test]
    fn display_prints_the_fig8b_nest() {
        let text = nest().to_string();
        assert!(text.contains("par-for K"));
        assert!(text.lines().count() == 7);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_unaligned_k() {
        let _ = Loopnest::highlight(GemmShape::new(64, 100, 64), 64, 64, 4, 8, 2, 4);
    }
}
