//! Bit-packed occupancy words.
//!
//! The HSS kernels ask one question over and over: *which of these `H`
//! consecutive positions are nonzero, and how many?* Packing a row's
//! occupancy into `u64` words answers it with masked `count_ones()`
//! popcounts and `trailing_zeros()` scans — 64 positions per step —
//! instead of a branch per element. `check_hss`, the [`HssCompressed`]
//! and [`SparseB`] encoders, and the `MicroSim` operand walks all drive
//! off these helpers.
//!
//! [`HssCompressed`]: crate::format::HssCompressed
//! [`SparseB`]: crate::format::SparseB

/// Packs the occupancy of `values` into `occ` (bit `i` set iff
/// `values[i] != 0.0`). Resizes and clears `occ` as needed.
pub fn pack_occupancy(values: &[f32], occ: &mut Vec<u64>) {
    occ.clear();
    occ.resize(values.len().div_ceil(64), 0);
    for (w, chunk) in values.chunks(64).enumerate() {
        let mut bits = 0u64;
        for (i, &v) in chunk.iter().enumerate() {
            bits |= u64::from(v != 0.0) << i;
        }
        occ[w] = bits;
    }
}

/// Popcount of the bit range `bits[start..start + len]` (`len >= 1`).
///
/// # Panics
/// Panics (via slice indexing) if the range exceeds the bitmap.
pub fn popcount_range(bits: &[u64], start: usize, len: usize) -> u32 {
    let end = start + len;
    let (sw, ew) = (start / 64, (end - 1) / 64);
    if sw == ew {
        let mask = if len == 64 {
            u64::MAX
        } else {
            (u64::MAX >> (64 - len)) << (start % 64)
        };
        return (bits[sw] & mask).count_ones();
    }
    let mut n = (bits[sw] >> (start % 64)).count_ones();
    for &w in &bits[sw + 1..ew] {
        n += w.count_ones();
    }
    let rem = end - ew * 64; // in 1..=64 by construction
    n += (bits[ew] << (64 - rem) >> (64 - rem)).count_ones();
    n
}

/// Calls `f(offset)` for every set bit in `bits[start..start + len]`, in
/// ascending order, with `offset` relative to `start`.
pub fn for_each_set_bit(bits: &[u64], start: usize, len: usize, mut f: impl FnMut(usize)) {
    let end = start + len;
    let last = (end - 1) / 64;
    for (w, &word) in bits.iter().enumerate().take(last + 1).skip(start / 64) {
        let lo = w * 64;
        let mut x = word;
        if lo < start {
            x &= u64::MAX << (start - lo);
        }
        if lo + 64 > end {
            x &= (1u64 << (end - lo)) - 1;
        }
        while x != 0 {
            f(lo + x.trailing_zeros() as usize - start);
            x &= x - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_count(values: &[f32], start: usize, len: usize) -> u32 {
        values[start..start + len]
            .iter()
            .filter(|&&v| v != 0.0)
            .count() as u32
    }

    #[test]
    fn pack_and_popcount_match_naive_on_awkward_spans() {
        // 130 values: crosses two word boundaries.
        let values: Vec<f32> = (0..130)
            .map(|i| if i % 3 == 0 || i % 7 == 0 { 1.0 } else { 0.0 })
            .collect();
        let mut occ = Vec::new();
        pack_occupancy(&values, &mut occ);
        for (start, len) in [
            (0, 130),
            (0, 64),
            (63, 2),
            (60, 70),
            (64, 64),
            (129, 1),
            (5, 59),
        ] {
            assert_eq!(
                popcount_range(&occ, start, len),
                naive_count(&values, start, len),
                "span ({start},{len})"
            );
        }
    }

    #[test]
    fn set_bit_iteration_is_ascending_and_exact() {
        let values: Vec<f32> = (0..200)
            .map(|i| if i % 5 == 2 { -1.0 } else { 0.0 })
            .collect();
        let mut occ = Vec::new();
        pack_occupancy(&values, &mut occ);
        for (start, len) in [(0, 200), (2, 3), (62, 10), (100, 100), (199, 1)] {
            let mut got = Vec::new();
            for_each_set_bit(&occ, start, len, |i| got.push(i));
            let want: Vec<usize> = (0..len).filter(|&i| values[start + i] != 0.0).collect();
            assert_eq!(got, want, "span ({start},{len})");
        }
    }

    #[test]
    fn negative_zero_counts_as_zero() {
        let mut occ = Vec::new();
        pack_occupancy(&[-0.0, 0.0, 1.0], &mut occ);
        assert_eq!(popcount_range(&occ, 0, 3), 1);
    }
}
