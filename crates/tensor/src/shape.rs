use std::fmt;

/// A matrix-multiplication workload shape: `A (M×K) · B (K×N) → Z (M×N)`.
///
/// HighLight and all baselines process DNN layers as matrix multiplications
/// (paper §6.1); convolutions reach this form through Toeplitz expansion
/// ([`crate::conv::ConvLayer::to_gemm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of operand A / output.
    pub m: usize,
    /// Shared (contraction) dimension.
    pub k: usize,
    /// Columns of operand B / output.
    pub n: usize,
}

impl GemmShape {
    /// Creates a GEMM shape.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        assert!(m > 0 && k > 0 && n > 0, "GEMM dimensions must be positive");
        Self { m, k, n }
    }

    /// Total multiply-accumulate operations for the dense computation.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }

    /// Elements in operand A.
    pub fn a_elems(&self) -> u64 {
        self.m as u64 * self.k as u64
    }

    /// Elements in operand B.
    pub fn b_elems(&self) -> u64 {
        self.k as u64 * self.n as u64
    }

    /// Elements in the output.
    pub fn z_elems(&self) -> u64 {
        self.m as u64 * self.n as u64
    }

    /// Returns the shape with operands swapped (`Bᵀ·Aᵀ`), used when a design
    /// benefits from sparsity living on a particular operand (paper §7.1.1).
    pub fn swapped(&self) -> Self {
        Self {
            m: self.n,
            k: self.k,
            n: self.m,
        }
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}·K{}·N{}", self.m, self.k, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_and_elem_counts() {
        let s = GemmShape::new(2, 3, 4);
        assert_eq!(s.macs(), 24);
        assert_eq!(s.a_elems(), 6);
        assert_eq!(s.b_elems(), 12);
        assert_eq!(s.z_elems(), 8);
    }

    #[test]
    fn swapped_exchanges_m_n() {
        let s = GemmShape::new(2, 3, 4).swapped();
        assert_eq!(s, GemmShape::new(4, 3, 2));
        assert_eq!(s.macs(), 24);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = GemmShape::new(0, 1, 1);
    }

    #[test]
    fn display_mentions_dims() {
        assert_eq!(GemmShape::new(1, 2, 3).to_string(), "M1·K2·N3");
    }
}
