//! Convolution layers and their Toeplitz (im2col) expansion into GEMMs.
//!
//! HighLight processes convolutional layers as matrix multiplications by
//! flattening the weight dimensions and Toeplitz-expanding the input
//! activations (paper Fig. 8a): weights become an `M×(C·R·S)` operand A and
//! the expanded inputs a `(C·R·S)×(P·Q)` operand B.

use crate::matrix::Matrix;
use crate::shape::GemmShape;

/// A 2-D convolution layer description.
///
/// Dimension names follow the paper: `M` filters, `C` input channels, `R×S`
/// kernel, `H×W` input (after padding), `P×Q` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvLayer {
    /// Layer name (for reports).
    pub name: String,
    /// Number of filters (output channels).
    pub m: usize,
    /// Input channels.
    pub c: usize,
    /// Kernel height.
    pub r: usize,
    /// Kernel width.
    pub s: usize,
    /// Padded input height.
    pub h: usize,
    /// Padded input width.
    pub w: usize,
    /// Stride (same in both spatial dimensions).
    pub stride: usize,
}

impl ConvLayer {
    /// Creates a convolution layer.
    ///
    /// # Panics
    /// Panics if any dimension or the stride is zero, or the kernel is larger
    /// than the input.
    #[allow(clippy::too_many_arguments)] // the seven conv dims are positional by convention
    pub fn new(
        name: impl Into<String>,
        m: usize,
        c: usize,
        r: usize,
        s: usize,
        h: usize,
        w: usize,
        stride: usize,
    ) -> Self {
        assert!(
            m > 0 && c > 0 && r > 0 && s > 0 && h > 0 && w > 0 && stride > 0,
            "convolution dimensions must be positive"
        );
        assert!(r <= h && s <= w, "kernel must fit in the (padded) input");
        Self {
            name: name.into(),
            m,
            c,
            r,
            s,
            h,
            w,
            stride,
        }
    }

    /// A square layer described by its *output* geometry: `kernel×kernel`
    /// filters producing an `out×out` feature map at the given stride, with
    /// the (padded) input edge derived as `(out - 1)·stride + kernel` —
    /// how DNN inventories usually specify a convolution before lowering
    /// it to its Toeplitz GEMM (Fig. 8a).
    ///
    /// # Panics
    /// Panics under the same conditions as [`ConvLayer::new`].
    pub fn for_output(
        name: impl Into<String>,
        m: usize,
        c: usize,
        kernel: usize,
        out: usize,
        stride: usize,
    ) -> Self {
        assert!(out > 0, "output edge must be positive");
        let edge = (out - 1) * stride + kernel;
        Self::new(name, m, c, kernel, kernel, edge, edge, stride)
    }

    /// Output height `P`.
    pub fn p(&self) -> usize {
        (self.h - self.r) / self.stride + 1
    }

    /// Output width `Q`.
    pub fn q(&self) -> usize {
        (self.w - self.s) / self.stride + 1
    }

    /// The GEMM this layer lowers to: `M × (C·R·S) × (P·Q)`.
    pub fn to_gemm(&self) -> GemmShape {
        GemmShape::new(self.m, self.c * self.r * self.s, self.p() * self.q())
    }

    /// Flattens weights `[m][c][r][s]` (row-major over `c,r,s`) into the
    /// `M×(C·R·S)` operand A matrix.
    ///
    /// # Panics
    /// Panics if `weights.len() != m*c*r*s`.
    pub fn flatten_weights(&self, weights: &[f32]) -> Matrix {
        let k = self.c * self.r * self.s;
        assert_eq!(weights.len(), self.m * k, "weight volume mismatch");
        Matrix::from_vec(self.m, k, weights.to_vec())
    }

    /// Toeplitz-expands an input `[c][h][w]` (row-major) into the
    /// `(C·R·S)×(P·Q)` operand B matrix.
    ///
    /// # Panics
    /// Panics if `input.len() != c*h*w`.
    pub fn toeplitz_expand(&self, input: &[f32]) -> Matrix {
        assert_eq!(
            input.len(),
            self.c * self.h * self.w,
            "input volume mismatch"
        );
        let (p, q) = (self.p(), self.q());
        let mut out = Matrix::zeros(self.c * self.r * self.s, p * q);
        for ci in 0..self.c {
            for ri in 0..self.r {
                for si in 0..self.s {
                    let krow = (ci * self.r + ri) * self.s + si;
                    for pi in 0..p {
                        for qi in 0..q {
                            let hy = pi * self.stride + ri;
                            let wx = qi * self.stride + si;
                            let v = input[(ci * self.h + hy) * self.w + wx];
                            out.set(krow, pi * q + qi, v);
                        }
                    }
                }
            }
        }
        out
    }

    /// Direct (sliding-window) convolution reference, returning the output as
    /// an `M×(P·Q)` matrix for comparison with the GEMM path.
    ///
    /// # Panics
    /// Panics if operand volumes mismatch the layer description.
    pub fn direct_conv(&self, weights: &[f32], input: &[f32]) -> Matrix {
        let k = self.c * self.r * self.s;
        assert_eq!(weights.len(), self.m * k, "weight volume mismatch");
        assert_eq!(
            input.len(),
            self.c * self.h * self.w,
            "input volume mismatch"
        );
        let (p, q) = (self.p(), self.q());
        let mut out = Matrix::zeros(self.m, p * q);
        for mi in 0..self.m {
            for pi in 0..p {
                for qi in 0..q {
                    let mut acc = 0.0f32;
                    for ci in 0..self.c {
                        for ri in 0..self.r {
                            for si in 0..self.s {
                                let wv = weights[((mi * self.c + ci) * self.r + ri) * self.s + si];
                                let hy = pi * self.stride + ri;
                                let wx = qi * self.stride + si;
                                acc += wv * input[(ci * self.h + hy) * self.w + wx];
                            }
                        }
                    }
                    out.set(mi, pi * q + qi, acc);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> ConvLayer {
        ConvLayer::new("test", 2, 3, 3, 3, 6, 6, 1)
    }

    #[test]
    fn output_dims() {
        let l = layer();
        assert_eq!((l.p(), l.q()), (4, 4));
        assert_eq!(l.to_gemm(), GemmShape::new(2, 27, 16));
        let strided = ConvLayer::new("s2", 1, 1, 3, 3, 7, 7, 2);
        assert_eq!((strided.p(), strided.q()), (3, 3));
    }

    #[test]
    fn toeplitz_gemm_matches_direct_conv() {
        let l = layer();
        let weights: Vec<f32> = (0..l.m * l.c * l.r * l.s)
            .map(|i| ((i * 7 % 13) as f32) - 6.0)
            .collect();
        let input: Vec<f32> = (0..l.c * l.h * l.w)
            .map(|i| ((i * 5 % 11) as f32) - 5.0)
            .collect();
        let a = l.flatten_weights(&weights);
        let b = l.toeplitz_expand(&input);
        let gemm = a.matmul(&b);
        let direct = l.direct_conv(&weights, &input);
        assert!(
            gemm.approx_eq(&direct, 1e-3),
            "Toeplitz GEMM must equal direct convolution"
        );
    }

    #[test]
    fn toeplitz_gemm_matches_direct_conv_strided() {
        let l = ConvLayer::new("s2", 2, 2, 3, 3, 7, 7, 2);
        let weights: Vec<f32> = (0..l.m * l.c * l.r * l.s)
            .map(|i| (i % 5) as f32 - 2.0)
            .collect();
        let input: Vec<f32> = (0..l.c * l.h * l.w).map(|i| (i % 7) as f32 - 3.0).collect();
        let gemm = l
            .flatten_weights(&weights)
            .matmul(&l.toeplitz_expand(&input));
        assert!(gemm.approx_eq(&l.direct_conv(&weights, &input), 1e-3));
    }

    #[test]
    fn for_output_round_trips_the_geometry() {
        // ResNet50 stem: 64 filters of 7x7x3, stride 2, 112x112 output.
        let stem = ConvLayer::for_output("stem", 64, 3, 7, 112, 2);
        assert_eq!((stem.p(), stem.q()), (112, 112));
        assert_eq!(stem.to_gemm(), GemmShape::new(64, 3 * 49, 112 * 112));
        // A stride-1 3x3 at 56x56 pads to a 58-edge input.
        let body = ConvLayer::for_output("3x3", 64, 64, 3, 56, 1);
        assert_eq!((body.h, body.w), (58, 58));
        assert_eq!(body.to_gemm(), GemmShape::new(64, 64 * 9, 56 * 56));
    }

    #[test]
    fn pointwise_conv_is_plain_gemm() {
        // 1x1 convolution: Toeplitz expansion is just a reshape.
        let l = ConvLayer::new("pw", 4, 8, 1, 1, 5, 5, 1);
        assert_eq!(l.to_gemm(), GemmShape::new(4, 8, 25));
        let input: Vec<f32> = (0..8 * 25).map(|i| i as f32).collect();
        let b = l.toeplitz_expand(&input);
        assert_eq!(b.data(), &input[..]);
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn kernel_larger_than_input_panics() {
        let _ = ConvLayer::new("bad", 1, 1, 8, 8, 4, 4, 1);
    }
}
