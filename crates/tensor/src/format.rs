//! Storage formats: hierarchical CP compression and sparse-B metadata.
//!
//! Two formats from the paper plus a CSR helper for the unstructured
//! baselines:
//!
//! - [`HssCompressed`] — the hierarchical offset-based coordinate-payload
//!   (CP) format for HSS operand A (Fig. 9). Each nonzero value carries a
//!   Rank0 CP (its offset within its block of `H0`), and each non-empty
//!   block carries a Rank1 CP (its offset within its group of `H1` blocks).
//! - [`SparseB`] — the three-level metadata format for unstructured sparse
//!   operand B (Fig. 12a): per-group nonzero counts, per-block end
//!   addresses, and per-value intra-block offsets.
//! - [`Csr`] — compressed sparse rows, as used by outer-product unstructured
//!   designs (DSTC-like).
//!
//! All formats decode back to a [`Matrix`] exactly and report their metadata
//! overhead in bits.

use hl_fibertree::spec::Gh;

use crate::bits;
use crate::matrix::Matrix;

fn ceil_log2(x: usize) -> u32 {
    assert!(x > 0);
    usize::BITS - (x - 1).leading_zeros()
}

// ---------------------------------------------------------------------------
// HSS operand A format (Fig. 9)
// ---------------------------------------------------------------------------

/// One compressed row of an HSS operand (Fig. 9).
#[derive(Debug, Clone, PartialEq)]
pub struct HssRow {
    /// Nonzero values, grouped per non-empty Rank0 block, blocks in order.
    pub values: Vec<f32>,
    /// Rank0 CP per value: offset within its block of `H0`.
    pub rank0_cp: Vec<u8>,
    /// Rank1 CP per non-empty block: offset within its group of `H1` blocks.
    pub rank1_cp: Vec<u8>,
    /// Number of values in each non-empty block (aligned with `rank1_cp`).
    pub block_nnz: Vec<u8>,
    /// Number of non-empty blocks in each Rank1 group.
    pub group_blocks: Vec<u8>,
}

/// A matrix compressed with the hierarchical CP format for a two-rank HSS
/// pattern `C1(G1:H1)→C0(G0:H0)` applied along the columns of each row.
///
/// # Example
///
/// ```
/// use hl_fibertree::spec::Gh;
/// use hl_tensor::{gen, format::HssCompressed};
/// let ranks = [Gh::new(2, 4), Gh::new(2, 4)];
/// let m = gen::random_hss(4, 32, &ranks, 42);
/// let c = HssCompressed::encode(&m, 4, 4);
/// assert_eq!(c.decode(), m);
/// assert_eq!(c.nonzeros(), m.nonzeros());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HssCompressed {
    rows: usize,
    cols: usize,
    h0: usize,
    h1: usize,
    data: Vec<HssRow>,
}

impl HssCompressed {
    /// Encodes `m` with Rank0 blocks of `h0` values and Rank1 groups of `h1`
    /// blocks along the columns.
    ///
    /// The encoder is *pattern-agnostic*: it records whatever occupancy each
    /// block/group has, so it can also hold operands sparser than the
    /// nominal pattern. Conformance to a `G:H` pattern is the job of
    /// [`hl_fibertree::spec::PatternSpec::check`].
    ///
    /// # Panics
    /// Panics if `cols` is not a multiple of `h0 * h1`, or `h0`/`h1` exceed
    /// 256 (CPs are stored in a byte).
    pub fn encode(m: &Matrix, h1: usize, h0: usize) -> Self {
        let group = h1 * h0;
        assert!(
            h0 >= 1 && h1 >= 1 && h0 <= 256 && h1 <= 256,
            "H out of supported range"
        );
        assert!(
            m.cols().is_multiple_of(group),
            "cols must be a multiple of H1*H0"
        );
        let mut data = Vec::with_capacity(m.rows());
        // One occupancy bitmap per row: block/group occupancy comes from
        // masked popcounts and set-bit scans instead of a branch per
        // element (values are pushed in the same ascending offset order
        // the per-element scan produced).
        let mut occ = Vec::new();
        for r in 0..m.rows() {
            let values = m.row(r);
            bits::pack_occupancy(values, &mut occ);
            let mut row = HssRow {
                values: Vec::new(),
                rank0_cp: Vec::new(),
                rank1_cp: Vec::new(),
                block_nnz: Vec::new(),
                group_blocks: Vec::new(),
            };
            for g in 0..m.cols() / group {
                let mut nonempty = 0u8;
                for b in 0..h1 {
                    let base = g * group + b * h0;
                    let mut nnz = 0u8;
                    bits::for_each_set_bit(&occ, base, h0, |i| {
                        row.values.push(values[base + i]);
                        row.rank0_cp.push(i as u8);
                        nnz += 1;
                    });
                    if nnz > 0 {
                        row.rank1_cp.push(b as u8);
                        row.block_nnz.push(nnz);
                        nonempty += 1;
                    }
                }
                row.group_blocks.push(nonempty);
            }
            data.push(row);
        }
        Self {
            rows: m.rows(),
            cols: m.cols(),
            h0,
            h1,
            data,
        }
    }

    /// Decodes back to the dense matrix.
    pub fn decode(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        let group = self.h0 * self.h1;
        for (r, row) in self.data.iter().enumerate() {
            let mut vi = 0usize; // value index
            let mut bi = 0usize; // non-empty block index
            for (g, &gb) in row.group_blocks.iter().enumerate() {
                for _ in 0..gb {
                    let b = row.rank1_cp[bi] as usize;
                    let nnz = row.block_nnz[bi] as usize;
                    for _ in 0..nnz {
                        let off = row.rank0_cp[vi] as usize;
                        m.set(r, g * group + b * self.h0 + off, row.values[vi]);
                        vi += 1;
                    }
                    bi += 1;
                }
            }
        }
        m
    }

    /// Number of stored (nonzero) values.
    pub fn nonzeros(&self) -> usize {
        self.data.iter().map(|r| r.values.len()).sum()
    }

    /// Number of non-empty Rank0 blocks across the matrix.
    pub fn nonempty_blocks(&self) -> usize {
        self.data.iter().map(|r| r.rank1_cp.len()).sum()
    }

    /// Rank0 block size `H0`.
    pub fn h0(&self) -> usize {
        self.h0
    }

    /// Rank1 group size `H1` (in blocks).
    pub fn h1(&self) -> usize {
        self.h1
    }

    /// The compressed rows.
    pub fn rows(&self) -> &[HssRow] {
        &self.data
    }

    /// Metadata bits: one `⌈log2 H0⌉` CP per value plus one `⌈log2 H1⌉` CP
    /// per non-empty block (the paper's offset-based CP accounting, §6.2).
    pub fn metadata_bits(&self) -> u64 {
        let r0 = u64::from(ceil_log2(self.h0).max(1));
        let r1 = u64::from(ceil_log2(self.h1).max(1));
        self.nonzeros() as u64 * r0 + self.nonempty_blocks() as u64 * r1
    }

    /// Data bits at the given word width.
    pub fn data_bits(&self, bits_per_word: u32) -> u64 {
        self.nonzeros() as u64 * u64::from(bits_per_word)
    }
}

// ---------------------------------------------------------------------------
// Sparse operand B format (Fig. 12a)
// ---------------------------------------------------------------------------

/// One compressed K-vector of operand B (a column), Fig. 12(a).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseBVector {
    /// Nonzero values in K order.
    pub values: Vec<f32>,
    /// Level 1: total nonzeros per group of `H1` Rank1 blocks.
    pub group_nnz: Vec<u32>,
    /// Level 2: cumulative end address (into `values`) of each Rank1 block.
    pub block_end: Vec<u32>,
    /// Level 3: intra-Rank0-block offset of each nonzero value.
    pub rank0_off: Vec<u8>,
}

/// Operand B compressed with the three-level metadata format of Fig. 12(a).
///
/// B is `K×N`; each column's K-vector is compressed independently. The K
/// dimension is blocked to match operand A's HSS layout: Rank0 blocks of
/// `h0` values, grouped `h1` blocks at a time (groups are what the VFMU
/// shifts over, §6.4).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseB {
    k: usize,
    n: usize,
    h0: usize,
    h1: usize,
    cols: Vec<SparseBVector>,
}

impl SparseB {
    /// Encodes `m` (`K×N`) with Rank0 blocks of `h0` and groups of `h1`
    /// blocks along K.
    ///
    /// # Panics
    /// Panics if `K` is not a multiple of `h0 * h1` or `h0 > 256`.
    pub fn encode(m: &Matrix, h1: usize, h0: usize) -> Self {
        let group = h1 * h0;
        assert!(h0 >= 1 && h1 >= 1 && h0 <= 256, "H out of supported range");
        assert!(
            m.rows().is_multiple_of(group),
            "K must be a multiple of H1*H0"
        );
        let (k, n) = (m.rows(), m.cols());
        let mut cols = Vec::with_capacity(n);
        // Gather each strided column into a contiguous buffer once, then
        // encode it from a bit-packed occupancy bitmap (same ascending K
        // order per block as the per-element scan).
        let data = m.data();
        let mut colbuf = vec![0.0f32; k];
        let mut occ = Vec::new();
        for c in 0..n {
            for (i, slot) in colbuf.iter_mut().enumerate() {
                *slot = data[i * n + c];
            }
            bits::pack_occupancy(&colbuf, &mut occ);
            let mut v = SparseBVector {
                values: Vec::new(),
                group_nnz: Vec::new(),
                block_end: Vec::new(),
                rank0_off: Vec::new(),
            };
            for g in 0..k / group {
                let start = v.values.len();
                for b in 0..h1 {
                    let base = g * group + b * h0;
                    bits::for_each_set_bit(&occ, base, h0, |i| {
                        v.values.push(colbuf[base + i]);
                        v.rank0_off.push(i as u8);
                    });
                    v.block_end.push(v.values.len() as u32);
                }
                v.group_nnz.push((v.values.len() - start) as u32);
            }
            cols.push(v);
        }
        Self { k, n, h0, h1, cols }
    }

    /// Decodes back to the dense `K×N` matrix.
    pub fn decode(&self) -> Matrix {
        let mut m = Matrix::zeros(self.k, self.n);
        for (c, v) in self.cols.iter().enumerate() {
            let mut vi = 0usize;
            for (b, &end) in v.block_end.iter().enumerate() {
                while (vi as u32) < end {
                    let off = v.rank0_off[vi] as usize;
                    m.set(b * self.h0 + off, c, v.values[vi]);
                    vi += 1;
                }
            }
        }
        m
    }

    /// Total stored (nonzero) values.
    pub fn nonzeros(&self) -> usize {
        self.cols.iter().map(|c| c.values.len()).sum()
    }

    /// The compressed columns.
    pub fn columns(&self) -> &[SparseBVector] {
        &self.cols
    }

    /// Rank0 block size along K.
    pub fn h0(&self) -> usize {
        self.h0
    }

    /// Blocks per group along K.
    pub fn h1(&self) -> usize {
        self.h1
    }

    /// Metadata bits: group counts (level 1) + block end addresses (level 2)
    /// + per-value offsets (level 3).
    pub fn metadata_bits(&self) -> u64 {
        let group = self.h0 * self.h1;
        let groups = (self.k / group) as u64 * self.n as u64;
        let blocks = (self.k / self.h0) as u64 * self.n as u64;
        // A group holds at most h0*h1 values; a block end address spans the
        // column's value count (bounded by K).
        let l1_bits = u64::from(ceil_log2(group + 1).max(1));
        let l2_bits = u64::from(ceil_log2(self.k + 1).max(1));
        let l3_bits = u64::from(ceil_log2(self.h0).max(1));
        groups * l1_bits + blocks * l2_bits + self.nonzeros() as u64 * l3_bits
    }

    /// Data bits at the given word width.
    pub fn data_bits(&self, bits_per_word: u32) -> u64 {
        self.nonzeros() as u64 * u64::from(bits_per_word)
    }
}

// ---------------------------------------------------------------------------
// CSR (for unstructured outer-product baselines)
// ---------------------------------------------------------------------------

/// Compressed sparse row format, used by the DSTC-like unstructured baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    /// Row pointers (`rows + 1` entries).
    pub row_ptr: Vec<u32>,
    /// Column index per nonzero.
    pub col_idx: Vec<u32>,
    /// Nonzero values.
    pub values: Vec<f32>,
}

impl Csr {
    /// Encodes a dense matrix.
    pub fn encode(m: &Matrix) -> Self {
        let mut row_ptr = Vec::with_capacity(m.rows() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = m.get(r, c);
                if v != 0.0 {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len() as u32);
        }
        Self {
            rows: m.rows(),
            cols: m.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Decodes back to the dense matrix.
    pub fn decode(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for i in self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize {
                m.set(r, self.col_idx[i] as usize, self.values[i]);
            }
        }
        m
    }

    /// Number of stored nonzeros.
    pub fn nonzeros(&self) -> usize {
        self.values.len()
    }

    /// Nonzeros in one row.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn row_nnz(&self, row: usize) -> usize {
        (self.row_ptr[row + 1] - self.row_ptr[row]) as usize
    }

    /// Metadata bits: row pointers + column indices.
    pub fn metadata_bits(&self) -> u64 {
        let ptr_bits = u64::from(ceil_log2(self.values.len().max(1) + 1).max(1));
        let idx_bits = u64::from(ceil_log2(self.cols).max(1));
        (self.row_ptr.len() as u64) * ptr_bits + (self.col_idx.len() as u64) * idx_bits
    }
}

/// Convenience: metadata bits per nonzero for a two-rank HSS pattern, used by
/// analytical models without materializing data.
pub fn hss_metadata_bits_per_value(rank1: Gh, rank0: Gh) -> f64 {
    let r0 = f64::from(ceil_log2(rank0.h as usize).max(1));
    let r1 = f64::from(ceil_log2(rank1.h as usize).max(1));
    // Each value carries a Rank0 CP; each block (G0 values) shares a Rank1 CP.
    r0 + r1 / f64::from(rank0.g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn hss_roundtrip_structured() {
        let ranks = [Gh::new(2, 4), Gh::new(2, 4)];
        let m = gen::random_hss(8, 64, &ranks, 1);
        let c = HssCompressed::encode(&m, 4, 4);
        assert_eq!(c.decode(), m);
        assert_eq!(c.nonzeros(), m.nonzeros());
        // 2:4 at rank1 means half the blocks are non-empty.
        assert_eq!(c.nonempty_blocks(), 8 * (64 / 16) * 2);
    }

    #[test]
    fn hss_roundtrip_on_paper_example() {
        // Fig. 9: C1(2:4)→C0(2:4) row: blocks 0 and 2 of the first group
        // occupied, each with two values.
        let mut m = Matrix::zeros(1, 16);
        m.set(0, 0, 1.0); // block 0, offset 0 -> "a"
        m.set(0, 2, 2.0); // block 0, offset 2 -> "c"
        m.set(0, 8, 3.0); // block 2, offset 0 -> "j"
        m.set(0, 10, 4.0); // block 2, offset 2 -> "k"
        let c = HssCompressed::encode(&m, 4, 4);
        let row = &c.rows()[0];
        assert_eq!(row.values, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(row.rank0_cp, vec![0, 2, 0, 2]);
        assert_eq!(row.rank1_cp, vec![0, 2]); // first and third block
        assert_eq!(row.group_blocks, vec![2]);
        assert_eq!(c.decode(), m);
    }

    #[test]
    fn hss_roundtrip_unstructured_content() {
        // The format also holds arbitrary sparsity (fewer nonzeros than G:H).
        let m = gen::random_unstructured(8, 64, 0.9, 3);
        let c = HssCompressed::encode(&m, 4, 4);
        assert_eq!(c.decode(), m);
    }

    #[test]
    fn hss_metadata_accounting() {
        let ranks = [Gh::new(2, 4), Gh::new(2, 4)];
        let m = gen::random_hss(2, 32, &ranks, 5);
        let c = HssCompressed::encode(&m, 4, 4);
        // nnz = 2*32*0.25 = 16 values * 2 bits + blocks (8) * 2 bits = 48.
        assert_eq!(c.nonzeros(), 16);
        assert_eq!(c.metadata_bits(), 16 * 2 + 8 * 2);
        assert_eq!(c.data_bits(16), 256);
    }

    #[test]
    fn sparse_b_roundtrip() {
        let m = gen::random_unstructured(24, 6, 0.6, 9);
        let c = SparseB::encode(&m, 3, 4);
        assert_eq!(c.decode(), m);
        assert_eq!(c.nonzeros(), m.nonzeros());
    }

    #[test]
    fn sparse_b_dense_roundtrip() {
        let m = gen::random_dense(12, 4, 10);
        let c = SparseB::encode(&m, 3, 4);
        assert_eq!(c.decode(), m);
        assert_eq!(c.nonzeros(), 48);
    }

    #[test]
    fn sparse_b_metadata_matches_fig12_structure() {
        // K=24 with h1=3, h0=4: 2 groups of 3 blocks per column.
        let m = gen::random_unstructured(24, 2, 0.5, 11);
        let c = SparseB::encode(&m, 3, 4);
        let col = &c.columns()[0];
        assert_eq!(col.group_nnz.len(), 2);
        assert_eq!(col.block_end.len(), 6);
        // group counts must sum to the column nnz.
        let nnz: u32 = col.group_nnz.iter().sum();
        assert_eq!(nnz as usize, col.values.len());
        // block_end is non-decreasing and ends at nnz.
        assert!(col.block_end.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*col.block_end.last().unwrap() as usize, col.values.len());
    }

    #[test]
    fn csr_roundtrip_and_row_nnz() {
        let m = gen::random_unstructured(16, 16, 0.7, 13);
        let c = Csr::encode(&m);
        assert_eq!(c.decode(), m);
        let total: usize = (0..16).map(|r| c.row_nnz(r)).sum();
        assert_eq!(total, m.nonzeros());
        assert!(c.metadata_bits() > 0);
    }

    #[test]
    fn metadata_bits_per_value_helper() {
        // H0=4 -> 2 bits per value; H1=4 -> 2 bits per block of G0=2 values.
        let v = hss_metadata_bits_per_value(Gh::new(2, 4), Gh::new(2, 4));
        assert!((v - 3.0).abs() < 1e-12);
    }
}
