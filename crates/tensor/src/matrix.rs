use std::fmt;

use hl_fibertree::{Fibertree, FibertreeError};

/// A dense row-major `f32` matrix.
///
/// This is the ground-truth representation every compressed format and every
/// accelerator model in the workspace is checked against.
///
/// # Example
///
/// ```
/// use hl_tensor::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "rows must have equal length"
        );
        let data: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// The identity matrix of size `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major backing data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The element at `(row, col)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// A view of one row.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// A mutable view of one row — the bulk-update path kernels use
    /// instead of per-element [`set`](Self::set) calls.
    ///
    /// # Panics
    /// Panics if `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row {row} out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable row-major backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Number of nonzero elements.
    pub fn nonzeros(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Fraction of elements that are nonzero.
    pub fn density(&self) -> f64 {
        self.nonzeros() as f64 / self.data.len() as f64
    }

    /// Fraction of elements that are zero.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Reference GEMM: `self (M×K) · rhs (K×N) → M×N`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Self::zeros(self.rows, rhs.cols);
        for m in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[m * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[m * rhs.cols..(m + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Element-wise approximate equality with tolerance `eps`.
    pub fn approx_eq(&self, other: &Self, eps: f32) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= eps)
    }

    /// Converts to a two-rank [`Fibertree`] with the given rank names.
    ///
    /// # Errors
    /// Propagates construction errors (cannot occur for valid matrices).
    pub fn to_fibertree(
        &self,
        row_name: &str,
        col_name: &str,
    ) -> Result<Fibertree, FibertreeError> {
        let data: Vec<f64> = self.data.iter().map(|&v| f64::from(v)).collect();
        Fibertree::from_dense(&data, &[self.rows, self.cols], &[row_name, col_name])
    }

    /// Effectual multiplies in `self · rhs`: pairs `(a,b)` with `a≠0 ∧ b≠0`.
    ///
    /// This is the quantity sparse accelerators try to reduce work to
    /// (paper §2.1).
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn effectual_macs(&self, rhs: &Self) -> u64 {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        // For each k: (nonzeros in column k of A) * (nonzeros in row k of B).
        let mut a_col_nnz = vec![0u64; self.cols];
        for row in self.data.chunks_exact(self.cols) {
            for (nnz, &v) in a_col_nnz.iter_mut().zip(row) {
                if v != 0.0 {
                    *nnz += 1;
                }
            }
        }
        a_col_nnz
            .iter()
            .zip(rhs.data.chunks_exact(rhs.cols))
            .map(|(&a_nnz, b_row)| a_nnz * b_row.iter().filter(|&&v| v != 0.0).count() as u64)
            .sum()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}:", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row: Vec<String> = self
                .row(r)
                .iter()
                .take(12)
                .map(|v| format!("{v:6.2}"))
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                row.join(", "),
                if self.cols > 12 { ", …" } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(3).matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn density_and_nonzeros() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        assert_eq!(m.nonzeros(), 2);
        assert!((m.density() - 0.5).abs() < 1e-12);
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn effectual_macs_counts_nonzero_pairs() {
        // A: 2x2 with 2 nonzeros in col 0; B: 2x2 with 1 nonzero in row 0.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0]]);
        let b = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 5.0]]);
        // k=0: 2 * 1 = 2; k=1: 0 * 2 = 0.
        assert_eq!(a.effectual_macs(&b), 2);
        // Dense case equals M*K*N.
        let d1 = Matrix::from_fn(3, 4, |_, _| 1.0);
        let d2 = Matrix::from_fn(4, 5, |_, _| 1.0);
        assert_eq!(d1.effectual_macs(&d2), 3 * 4 * 5);
    }

    #[test]
    fn fibertree_conversion_preserves_nonzeros() {
        let m = Matrix::from_rows(&[&[1.0, 0.0, 3.0], &[0.0, 0.0, 4.0]]);
        let t = m.to_fibertree("M", "K").unwrap();
        assert_eq!(t.nonzeros(), 3);
        assert_eq!(t.get(&[0, 2]), 3.0);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!m.to_string().is_empty());
    }
}
