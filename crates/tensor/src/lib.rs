//! Tensors, workloads, and compression formats for the HighLight reproduction.
//!
//! This crate provides the *operational* tensor layer underneath the
//! fibertree *specification* layer ([`hl_fibertree`]):
//!
//! - [`Matrix`]: dense row-major `f32` matrices with a reference GEMM — every
//!   accelerator model in the workspace is validated against it;
//! - [`GemmShape`]: matrix-multiplication workload shapes (paper §6.1
//!   processes all DNN layers as matrix multiplications);
//! - [`conv`]: convolution layers and their Toeplitz (im2col) expansion into
//!   GEMMs (paper Fig. 8a);
//! - [`gen`]: random workload generators producing dense, unstructured
//!   sparse, `G:H` structured, and hierarchically (HSS) structured matrices;
//! - [`format`]: the paper's storage formats — the hierarchical offset-based
//!   coordinate-payload (CP) compression for HSS operand A (Fig. 9) and the
//!   three-level metadata format for unstructured sparse operand B
//!   (Fig. 12a) — with exact metadata bit accounting;
//! - [`bits`]: the bit-packed occupancy words the conformance checks and
//!   encoders use to process 64 positions per popcount instead of one per
//!   branch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod conv;
pub mod format;
pub mod gen;

mod matrix;
mod shape;

pub use matrix::Matrix;
pub use shape::GemmShape;
