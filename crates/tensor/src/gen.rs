//! Random workload generation.
//!
//! The paper's synthetic evaluation (§7.1.2) uses 1024×1024 operands with
//! controlled sparsity degrees. These generators produce matrices that are
//! dense, unstructured sparse (exact global sparsity), `G:H` structured, or
//! N-rank HSS structured — all deterministic given a seed.

use hl_fibertree::spec::Gh;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::bits;
use crate::matrix::Matrix;

fn nonzero_value(rng: &mut StdRng) -> f32 {
    // Magnitudes in [0.05, 1] with a random sign: avoids values that round to
    // zero while still exercising magnitude-based pruning.
    let mag = rng.gen_range(0.05f32..=1.0);
    if rng.gen_bool(0.5) {
        mag
    } else {
        -mag
    }
}

/// Generates a fully dense matrix with values in `[-1, -0.05] ∪ [0.05, 1]`.
pub fn random_dense(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| nonzero_value(&mut rng))
}

/// Generates a matrix with *exactly* `round(sparsity · rows · cols)` zeros at
/// uniformly random positions (unstructured sparsity).
///
/// # Panics
/// Panics if `sparsity` is not within `[0, 1]`.
pub fn random_unstructured(rows: usize, cols: usize, sparsity: f64, seed: u64) -> Matrix {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let total = rows * cols;
    let nnz = ((1.0 - sparsity) * total as f64).round() as usize;
    let mut idx: Vec<usize> = (0..total).collect();
    idx.shuffle(&mut rng);
    let mut m = Matrix::zeros(rows, cols);
    for &i in idx.iter().take(nnz) {
        m.set(i / cols, i % cols, nonzero_value(&mut rng));
    }
    m
}

/// Generates a matrix whose every row obeys `G:H` structured sparsity along
/// the columns: each aligned block of `H` columns holds exactly `G` nonzeros.
///
/// # Panics
/// Panics if `cols` is not a multiple of `H`.
pub fn random_gh(rows: usize, cols: usize, gh: Gh, seed: u64) -> Matrix {
    random_hss(rows, cols, &[gh], seed)
}

/// Generates a matrix whose rows obey an N-rank HSS pattern along the columns
/// (paper §4.1).
///
/// `ranks` is ordered highest to lowest (`[rank_{N-1}, …, rank_0]`), matching
/// the paper's `C_{N-1}(G:H)→…→C_0(G:H)` notation. Rank 0 constrains values
/// within blocks of `H_0`; rank 1 constrains which of `H_1` such blocks are
/// non-empty, and so on. Every group at every rank has *exactly* `G` occupied
/// children, so the matrix density is exactly `Π G_n/H_n`.
///
/// # Panics
/// Panics if `ranks` is empty or `cols` is not a multiple of `Π H_n`.
pub fn random_hss(rows: usize, cols: usize, ranks: &[Gh], seed: u64) -> Matrix {
    assert!(!ranks.is_empty(), "need at least one rank");
    let group: usize = ranks.iter().map(|gh| gh.h as usize).product();
    assert!(
        cols.is_multiple_of(group),
        "cols ({cols}) must be a multiple of the pattern group size ({group})"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for g in 0..cols / group {
            fill_group(&mut m, r, g * group, ranks, &mut rng);
        }
    }
    m
}

/// Recursively fills one group: pick exactly `G` of the `H` children at the
/// current (highest remaining) rank, then recurse into each chosen child.
fn fill_group(m: &mut Matrix, row: usize, start: usize, ranks: &[Gh], rng: &mut StdRng) {
    let gh = ranks[0];
    let child: usize = ranks[1..].iter().map(|r| r.h as usize).product();
    let mut children: Vec<usize> = (0..gh.h as usize).collect();
    children.shuffle(rng);
    for &c in children.iter().take(gh.g as usize) {
        if ranks.len() == 1 {
            m.set(row, start + c, nonzero_value(rng));
        } else {
            fill_group(m, row, start + c * child, &ranks[1..], rng);
        }
    }
}

/// Verifies that each row of `m` obeys the N-rank HSS pattern (at most `G`
/// occupied children per group at every rank). Returns the first violation
/// as `(row, rank_index_from_highest, group_start)` or `None` if conformant.
///
/// Conformant rows — the common case on the hot simulation paths — are
/// screened with bit-packed occupancy words and popcounts (64 columns per
/// step instead of one). Only a row the screen rejects re-runs the exact
/// per-element walk, so the reported violation tuple is identical to the
/// naive scan's.
pub fn check_hss(m: &Matrix, ranks: &[Gh]) -> Option<(usize, usize, usize)> {
    let group: usize = ranks.iter().map(|gh| gh.h as usize).product();
    if !m.cols().is_multiple_of(group) {
        return Some((0, 0, 0));
    }
    let cols = m.cols();
    let mut occ = Vec::new();
    let mut collapsed = Vec::new();
    for row in 0..m.rows() {
        bits::pack_occupancy(m.row(row), &mut occ);
        if row_occupancy_conformant(&mut occ, &mut collapsed, cols, ranks) {
            continue;
        }
        for g in 0..cols / group {
            if let Some((rank, start)) = check_group(m, row, g * group, ranks) {
                return Some((row, rank, start));
            }
        }
        unreachable!("popcount screen rejected a row the exact walk accepts");
    }
    None
}

/// Word-parallel conformance screen over one row's occupancy bitmap:
/// checks each rank lowest-to-highest by popcounting its `H`-bit groups,
/// then collapses every group to one "non-empty" bit for the rank above.
/// `occ` is clobbered; `scratch` is the collapse buffer.
fn row_occupancy_conformant(
    occ: &mut [u64],
    scratch: &mut Vec<u64>,
    cols: usize,
    ranks: &[Gh],
) -> bool {
    let mut len = cols;
    let cur = occ;
    for gh in ranks.iter().rev() {
        let h = gh.h as usize;
        let groups = len / h;
        scratch.clear();
        scratch.resize(groups.div_ceil(64), 0);
        for gi in 0..groups {
            let occupied = bits::popcount_range(cur, gi * h, h);
            if occupied > gh.g {
                return false;
            }
            if occupied > 0 {
                scratch[gi / 64] |= 1 << (gi % 64);
            }
        }
        cur[..scratch.len()].copy_from_slice(scratch);
        len = groups;
    }
    true
}

fn check_group(m: &Matrix, row: usize, start: usize, ranks: &[Gh]) -> Option<(usize, usize)> {
    let gh = ranks[0];
    let child: usize = ranks[1..].iter().map(|r| r.h as usize).product();
    let mut occupied = 0u32;
    for c in 0..gh.h as usize {
        let base = start + c * child;
        let nonempty = (0..child).any(|i| m.get(row, base + i) != 0.0);
        if nonempty {
            occupied += 1;
            if ranks.len() > 1 {
                if let Some(v) = check_group(m, row, base, &ranks[1..]) {
                    return Some((v.0 + 1, v.1));
                }
            }
        }
    }
    if occupied > gh.g {
        Some((0, start))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_has_no_zeros() {
        let m = random_dense(16, 16, 1);
        assert_eq!(m.nonzeros(), 256);
    }

    #[test]
    fn unstructured_hits_exact_sparsity() {
        let m = random_unstructured(32, 32, 0.75, 2);
        assert_eq!(m.nonzeros(), 256); // 25% of 1024
        let dense = random_unstructured(8, 8, 0.0, 3);
        assert_eq!(dense.nonzeros(), 64);
        let empty = random_unstructured(8, 8, 1.0, 4);
        assert_eq!(empty.nonzeros(), 0);
    }

    #[test]
    fn unstructured_is_deterministic_per_seed() {
        assert_eq!(
            random_unstructured(8, 8, 0.5, 9),
            random_unstructured(8, 8, 0.5, 9)
        );
        assert_ne!(
            random_unstructured(8, 8, 0.5, 9),
            random_unstructured(8, 8, 0.5, 10)
        );
    }

    #[test]
    fn gh_pattern_is_exact_per_block() {
        let gh = Gh::new(2, 4);
        let m = random_gh(8, 16, gh, 5);
        for r in 0..8 {
            for b in 0..4 {
                let nnz = (0..4).filter(|&i| m.get(r, b * 4 + i) != 0.0).count();
                assert_eq!(nnz, 2, "block must hold exactly G nonzeros");
            }
        }
        assert!((m.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hss_two_rank_density_is_product_of_fractions() {
        // C1(3:4) -> C0(2:4): density 3/4 * 2/4 = 0.375 (paper Fig. 5).
        let ranks = [Gh::new(3, 4), Gh::new(2, 4)];
        let m = random_hss(16, 64, &ranks, 7);
        assert!((m.density() - 0.375).abs() < 1e-12);
        assert_eq!(check_hss(&m, &ranks), None);
    }

    #[test]
    fn hss_three_rank_generation() {
        let ranks = [Gh::new(1, 2), Gh::new(3, 4), Gh::new(2, 4)];
        let m = random_hss(4, 64, &ranks, 8);
        assert!((m.density() - 0.5 * 0.75 * 0.5).abs() < 1e-12);
        assert_eq!(check_hss(&m, &ranks), None);
    }

    #[test]
    fn check_hss_catches_violation() {
        let ranks = [Gh::new(1, 4)];
        let mut m = random_gh(2, 8, Gh::new(1, 4), 11);
        // Corrupt: add a second nonzero to the first block of row 0.
        let filled = (0..4).find(|&i| m.get(0, i) != 0.0).unwrap();
        m.set(0, (filled + 1) % 4, 9.0);
        assert!(check_hss(&m, &ranks).is_some());
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn hss_requires_aligned_cols() {
        let _ = random_hss(2, 10, &[Gh::new(2, 4)], 0);
    }
}
