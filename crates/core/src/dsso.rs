use hl_arch::components::{MacUnit, MuxTree, RegFile, Sram, Vfmu};
use hl_arch::{AreaBreakdown, Comp, Tech};
use hl_sim::analytic::{meta_words, Accountant, Resources, TrafficModel};
use hl_sim::{Accelerator, EvalResult, OperandSparsity, Unsupported, Workload};
use hl_sparsity::Gh;
#[cfg(test)]
use hl_sparsity::HssPattern;

/// The dual-structured-sparse-operand (DSSO) design of §7.5.
///
/// DSSO supports dual-side HSS with **alternating dense ranks**: operand A
/// carries `C1(dense)→C0(2:4)` (Rank0 sparse, Rank1 dense) and operand B
/// carries `C1(2:{2≤H≤8})→C0(dense)` (Rank1 sparse, Rank0 dense). Because
/// the operands are never sparse at the same rank, each rank's SAF performs
/// only dense–sparse intersections, which are perfectly balanced by
/// construction — so dual-side speedup `(H0/G0)·(H1/G1)` comes cheaply.
///
/// The trade-off the paper highlights (Fig. 17): 2× better processing speed
/// than HighLight on commonly supported degrees, but fewer representable
/// operand-B sparsity degrees (one rank must stay dense).
#[derive(Debug, Clone)]
pub struct Dsso {
    tech: Tech,
    resources: Resources,
}

impl Default for Dsso {
    fn default() -> Self {
        Self {
            tech: Tech::n65(),
            resources: Resources::tc_class(256.0, 64.0),
        }
    }
}

impl Dsso {
    /// Creates the model with the shared Table 4 resources.
    pub fn new(tech: Tech) -> Self {
        Self {
            tech,
            resources: Resources::tc_class(256.0, 64.0),
        }
    }

    /// Operand A density factor: dense, or Rank0-sparse `2:{2≤H≤4}` with a
    /// dense upper rank.
    fn resolve_a(&self, a: &OperandSparsity) -> Result<f64, Unsupported> {
        let fail = |reason: String| {
            Err(Unsupported {
                design: "DSSO".into(),
                reason,
            })
        };
        match a {
            OperandSparsity::Dense => Ok(1.0),
            OperandSparsity::Unstructured { .. } => {
                fail("operand A must be dense or Rank0-structured".into())
            }
            OperandSparsity::Hss(p) => match p.ranks() {
                [] => Ok(1.0),
                [r0] if Self::rank0_ok(*r0) => Ok(r0.density()),
                [r1, r0] if r1.is_dense() && Self::rank0_ok(*r0) => Ok(r0.density()),
                _ => fail(format!(
                    "operand A pattern {p} must be C1(dense)→C0(2:{{2..4}})"
                )),
            },
        }
    }

    fn rank0_ok(gh: Gh) -> bool {
        gh.g == 2 && (2..=4).contains(&gh.h)
    }

    fn rank1_ok(gh: Gh) -> bool {
        gh.g == 2 && (2..=8).contains(&gh.h)
    }

    /// Operand B density factor: dense, or Rank1-sparse `2:{2≤H≤8}` with a
    /// dense lower rank.
    fn resolve_b(&self, b: &OperandSparsity) -> Result<f64, Unsupported> {
        let fail = |reason: String| {
            Err(Unsupported {
                design: "DSSO".into(),
                reason,
            })
        };
        match b {
            OperandSparsity::Dense => Ok(1.0),
            OperandSparsity::Unstructured { sparsity } if *sparsity == 0.0 => Ok(1.0),
            OperandSparsity::Unstructured { .. } => {
                fail("operand B must be dense or Rank1-structured".into())
            }
            OperandSparsity::Hss(p) => match p.ranks() {
                [] => Ok(1.0),
                [r1, r0] if Self::rank1_ok(*r1) && r0.is_dense() => Ok(r1.density()),
                _ => fail(format!(
                    "operand B pattern {p} must be C1(2:{{2..8}})→C0(dense)"
                )),
            },
        }
    }
}

impl Accelerator for Dsso {
    fn name(&self) -> &str {
        "DSSO"
    }

    fn evaluate(&self, w: &Workload) -> Result<EvalResult, Unsupported> {
        hl_sim::check_densities(self.name(), w)?;
        let d_a = self.resolve_a(&w.a)?;
        let d_b = self.resolve_b(&w.b)?;
        let macs = self.resources.macs as f64;
        // Dual-side skipping with perfect balance: the cycle factor is the
        // product of both operands' structured densities.
        let cycles = (w.dense_macs() * d_a * d_b / macs).ceil();

        let traffic = TrafficModel::new(w.shape, d_a, d_b, &self.resources);
        let mut acc = Accountant::new(self.tech.clone(), self.resources);

        let effectual = w.dense_macs() * d_a * d_b;
        acc.macs(effectual);
        acc.rf(2.0 * effectual / self.resources.spatial_accum as f64);
        acc.glb(traffic.a_glb_words + traffic.b_glb_words + traffic.z_glb_words);
        acc.dram(traffic.a_dram_words + traffic.b_dram_words + traffic.z_dram_words);
        acc.noc(traffic.a_glb_words + traffic.b_glb_words);

        // Single-level metadata per operand (§7.5): A carries Rank0 offsets
        // per value, B carries Rank1 offsets per (dense) block of H0 values.
        if d_a < 1.0 {
            let a_meta = meta_words(w.shape.a_elems() as f64 * d_a * 2.0);
            acc.glb_meta(a_meta * traffic.a_reuse);
            acc.dram(a_meta);
            acc.mux(Comp::MuxRank0, MuxTree::new(2, 4), effectual);
        }
        if d_b < 1.0 {
            let b_meta = meta_words(w.shape.b_elems() as f64 * d_b / 4.0 * 3.0);
            acc.glb_meta(b_meta * traffic.b_reuse);
            acc.dram(b_meta);
            acc.mux(Comp::MuxRank1, MuxTree::new(2, 8), effectual / 2.0);
            acc.vfmu(Vfmu::new(8, 4), traffic.b_glb_words);
        }

        Ok(EvalResult {
            design: "DSSO".into(),
            workload: w.name.clone(),
            cycles,
            energy: acc.into_energy(),
        })
    }

    fn area(&self) -> AreaBreakdown {
        let t = &self.tech;
        let res = &self.resources;
        let mut a = AreaBreakdown::new();
        a.record(Comp::Mac, res.macs as f64 * MacUnit.area_um2(t));
        a.record(Comp::Glb, Sram::new(res.glb_kb).area_um2(t));
        a.record(Comp::GlbMeta, Sram::new(res.glb_meta_kb).area_um2(t));
        a.record(
            Comp::RegFile,
            4.0 * RegFile::new(res.rf_kb / 4.0).area_um2(t),
        );
        let pes = res.macs as f64 / 2.0;
        a.record(Comp::MuxRank0, pes * MuxTree::new(2, 4).area_um2(t));
        a.record(Comp::MuxRank1, 4.0 * MuxTree::new(2, 8).area_um2(t));
        a.record(Comp::Vfmu, 4.0 * Vfmu::new(8, 4).area_um2(t));
        a
    }

    fn supported_patterns(&self) -> String {
        "A: dense; C1(dense)→C0(2:4) | B: dense; C1(2:{2≤H≤8})→C0(dense)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_24() -> OperandSparsity {
        OperandSparsity::Hss(HssPattern::two_rank(Gh::new(4, 4), Gh::new(2, 4)))
    }

    fn b_rank1(h: u32) -> OperandSparsity {
        OperandSparsity::Hss(HssPattern::two_rank(Gh::new(2, h), Gh::new(4, 4)))
    }

    #[test]
    fn fig17_dual_side_speedup_is_2x_over_single_side() {
        let d = Dsso::default();
        let r = d
            .evaluate(&Workload::synthetic(a_24(), b_rank1(4)))
            .unwrap();
        // factor = 0.5 (A rank0) * 0.5 (B rank1) = 0.25.
        let dense_cycles = 1024.0f64.powi(3) / 1024.0;
        assert!((dense_cycles / r.cycles - 4.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_scales_with_b_h1() {
        let d = Dsso::default();
        let dense_cycles = 1024.0f64.powi(3) / 1024.0;
        for h in [2u32, 4, 8] {
            let r = d
                .evaluate(&Workload::synthetic(a_24(), b_rank1(h)))
                .unwrap();
            let expect = 2.0 * f64::from(h) / 2.0;
            assert!((dense_cycles / r.cycles - expect).abs() < 1e-9, "H1={h}");
        }
    }

    #[test]
    fn rejects_unstructured_and_wrong_rank_patterns() {
        let d = Dsso::default();
        assert!(d
            .evaluate(&Workload::synthetic(
                OperandSparsity::unstructured(0.5),
                OperandSparsity::Dense
            ))
            .is_err());
        // B sparse at rank0 (not alternating) is rejected.
        let bad_b = OperandSparsity::Hss(HssPattern::two_rank(Gh::new(4, 4), Gh::new(2, 4)));
        assert!(d.evaluate(&Workload::synthetic(a_24(), bad_b)).is_err());
    }

    #[test]
    fn dense_both_sides_runs_at_dense_speed() {
        let d = Dsso::default();
        let r = d
            .evaluate(&Workload::synthetic(
                OperandSparsity::Dense,
                OperandSparsity::Dense,
            ))
            .unwrap();
        assert_eq!(r.cycles, 1024.0f64.powi(3) / 1024.0);
        assert_eq!(r.energy.sparsity_tax(), 0.0);
    }
}
