//! The HighLight accelerator model — the paper's primary contribution.
//!
//! [`HighLight`] is an analytical model of the §5–6 design: 1024 MACs in 4
//! PE arrays, a 256 KB + 64 KB (data + metadata) GLB, 4×2 KB register files,
//! and modularized sparse acceleration features (SAFs):
//!
//! - **Rank1 skipping** (PE-array level): only non-empty Rank1 blocks of the
//!   HSS operand A are distributed to PEs, with a VFMU providing
//!   variable-length streaming access over aligned GLB rows;
//! - **Rank0 skipping** (PE level): per-PE muxes select the operand-B words
//!   matching the Rank0 CPs, keeping all `G0` MACs busy;
//! - **Gating + compression** for unstructured sparse operand B: ineffectual
//!   MACs idle (energy savings, no cycle change) and B crosses DRAM/GLB
//!   compressed with the Fig. 12 three-level metadata.
//!
//! Supported operand A patterns: `C1(4:{4≤H≤8})→C0(2:{2≤H≤4})` plus dense
//! (Table 3) — 75% max weight sparsity in 15 exact degrees. Total speedup is
//! the product of per-rank `H/G` (perfect balance, §6.3), so latency scales
//! exactly with the pattern density.
//!
//! [`Dsso`] models the §7.5 dual-structured-sparse-operand variant: both
//! operands carry HSS with *alternating dense ranks*
//! (A `C1(dense)→C0(2:4)`, B `C1(2:{2≤H≤8})→C0(dense)`), so each rank's SAF
//! performs only dense–sparse intersections and dual-side speedup comes with
//! perfect balance.
//!
//! Functional correctness of the modeled dataflow is established by
//! [`hl_sim::micro`], whose cycle counts this model reproduces exactly
//! (see `tests/micro_vs_analytic.rs` at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dsso;
mod highlight;

pub use dsso::Dsso;
pub use highlight::{HighLight, HighLightConfig};

/// Constructs a default-configured design of this crate by its registry
/// name (`"HighLight"`, `"DSSO"`); `None` for any other name.
///
/// One half of the workspace-wide named design registry — the baselines
/// live in `hl-baselines` and the composed fallible registry in `hl-bench`.
pub fn design_by_name(name: &str) -> Option<Box<dyn hl_sim::Accelerator>> {
    match name {
        "HighLight" => Some(Box::new(HighLight::default())),
        "DSSO" => Some(Box::new(Dsso::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `Send + Sync` is required by the [`hl_sim::Accelerator`] supertrait
    /// so the engine can evaluate HighLight/DSSO cells from its worker pool.
    #[test]
    fn models_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HighLight>();
        assert_send_sync::<Dsso>();
        assert_send_sync::<HighLightConfig>();
    }
}
