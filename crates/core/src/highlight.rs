use hl_arch::components::{MacUnit, MuxTree, RegFile, Sram, Vfmu};
use hl_arch::{AreaBreakdown, Comp, Tech};
use hl_sim::analytic::{meta_words, Accountant, Resources, TrafficModel};
use hl_sim::{Accelerator, EvalResult, OperandSparsity, Unsupported, Workload};
use hl_sparsity::families::{highlight_a, HssFamily};
use hl_sparsity::HssPattern;
use hl_tensor::format::hss_metadata_bits_per_value;

/// Configuration of the HighLight accelerator (defaults follow Table 4 and
/// Table 3).
#[derive(Debug, Clone)]
pub struct HighLightConfig {
    /// Technology table.
    pub tech: Tech,
    /// Resource allocation (1024 MACs, 256+64 KB GLB, 8 KB RF).
    pub resources: Resources,
    /// Supported operand A pattern family.
    pub a_family: HssFamily,
    /// Apply the paper's conservative estimation: a 25%-sparse operand B is
    /// exploited as if 20% sparse (Fig. 13 footnote).
    pub conservative_b: bool,
    /// Enable the Rank1 skipping SAF (ablation hook; on in the paper).
    pub rank1_saf: bool,
    /// Enable the Rank0 skipping SAF (ablation hook; on in the paper).
    pub rank0_saf: bool,
    /// Enable operand-B gating + compression (ablation hook; on in the paper).
    pub b_gating: bool,
}

impl Default for HighLightConfig {
    fn default() -> Self {
        Self {
            tech: Tech::n65(),
            resources: Resources::tc_class(256.0, 64.0),
            a_family: highlight_a(),
            conservative_b: true,
            rank1_saf: true,
            rank0_saf: true,
            b_gating: true,
        }
    }
}

/// The HighLight accelerator analytical model (see crate docs).
#[derive(Debug, Clone)]
pub struct HighLight {
    config: HighLightConfig,
    name: String,
}

impl Default for HighLight {
    fn default() -> Self {
        Self::new(HighLightConfig::default())
    }
}

impl HighLight {
    /// Creates a model from a configuration.
    pub fn new(config: HighLightConfig) -> Self {
        Self {
            config,
            name: "HighLight".to_string(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HighLightConfig {
        &self.config
    }

    /// Resolves how operand A is processed: the exploited pattern (`None`
    /// means dense processing) — unsupported structured patterns fall back
    /// to an equal-density family member when one exists.
    fn resolve_a(&self, a: &OperandSparsity) -> Result<Option<HssPattern>, Unsupported> {
        match a {
            OperandSparsity::Dense => Ok(None),
            // Unstructured zeros carry no structure the SAFs can exploit;
            // the operand is processed as dense values (functionally exact).
            OperandSparsity::Unstructured { .. } => Ok(None),
            OperandSparsity::Hss(p) => {
                if p.is_dense() {
                    return Ok(None);
                }
                if !self.config.rank1_saf && !self.config.rank0_saf {
                    return Ok(None); // all SAFs ablated: dense processing
                }
                if self.config.a_family.supports(p) {
                    return Ok(Some(p.clone()));
                }
                // Same density expressible in the supported family ⇒ the
                // model would be pruned to that member instead.
                let near = self.config.a_family.closest_to_density(p.density_f64());
                if (near.density_f64() - p.density_f64()).abs() < 1e-9 {
                    Ok(Some(near))
                } else {
                    Err(Unsupported {
                        design: self.name.clone(),
                        reason: format!(
                            "operand A pattern {p} (density {:.3}) not representable in {}",
                            p.density_f64(),
                            self.supported_patterns()
                        ),
                    })
                }
            }
        }
    }

    /// The exploited operand-B sparsity (Fig. 13 footnote: 25% → 20%).
    fn effective_b_sparsity(&self, b: &OperandSparsity) -> f64 {
        if !self.config.b_gating {
            return 0.0;
        }
        let s = b.sparsity();
        if self.config.conservative_b && (s - 0.25).abs() < 1e-9 {
            0.20
        } else {
            s
        }
    }
}

impl Accelerator for HighLight {
    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(&self, w: &Workload) -> Result<EvalResult, Unsupported> {
        // Guards the TrafficModel density assert: a fully-pruned operand B
        // (stored density 0) is Unsupported, not a worker panic.
        hl_sim::check_densities(self.name(), w)?;
        let cfg = &self.config;
        let pattern = self.resolve_a(&w.a)?;
        // Hierarchical skipping: cycle factor = pattern density, exactly
        // (perfect balance, §6.3). Rank-level ablations clamp the factor to
        // the product of enabled ranks only.
        let d_a = match &pattern {
            None => 1.0,
            Some(p) => {
                let mut f = 1.0;
                let ranks = p.ranks();
                if cfg.rank1_saf {
                    f *= f64::from(ranks[0].g) / f64::from(ranks[0].h);
                }
                if cfg.rank0_saf {
                    f *= f64::from(ranks[1].g) / f64::from(ranks[1].h);
                }
                f
            }
        };
        let macs = cfg.resources.macs as f64;
        let cycles = (w.dense_macs() * d_a / macs).ceil();

        let s_b = self.effective_b_sparsity(&w.b);
        let d_b = 1.0 - s_b;
        let b_compressed = s_b > 0.0;

        // Stored densities (what crosses memories).
        let a_stored = pattern.as_ref().map_or(1.0, |p| p.density_f64());
        let b_stored = if b_compressed { d_b } else { 1.0 };

        let traffic = TrafficModel::new(w.shape, a_stored, b_stored, &cfg.resources);
        let mut acc = Accountant::new(cfg.tech.clone(), cfg.resources);

        // Compute: gating idles MACs on ineffectual B operands (§6.4).
        let active_macs = w.dense_macs() * d_a * d_b;
        acc.macs(active_macs);
        // Partial sums: one RF read-modify-write per spatial-accum group per
        // cycle (matches the micro-simulator's 2 accesses/step).
        acc.rf(2.0 * w.dense_macs() * d_a / cfg.resources.spatial_accum as f64);

        // Data traffic.
        acc.glb(traffic.a_glb_words + traffic.b_glb_words + traffic.z_glb_words);
        acc.dram(traffic.a_dram_words + traffic.b_dram_words + traffic.z_dram_words);
        acc.noc(traffic.a_glb_words + traffic.b_glb_words);

        // Metadata traffic (the compression-format tax).
        if let Some(p) = &pattern {
            let ranks = p.ranks();
            let bits_per_value = hss_metadata_bits_per_value(ranks[0], ranks[1]);
            let a_meta = meta_words(w.shape.a_elems() as f64 * a_stored * bits_per_value);
            acc.glb_meta(a_meta * traffic.a_reuse);
            acc.dram(a_meta);
        }
        if b_compressed {
            // Three-level Fig. 12 metadata: ~6 bits per group, ~10 per
            // block end, 2 bits per nonzero (K = 1024-class workloads).
            let groups = w.shape.b_elems() as f64 / 32.0;
            let blocks = w.shape.b_elems() as f64 / 4.0;
            let b_meta =
                meta_words(groups * 6.0 + blocks * 10.0 + w.shape.b_elems() as f64 * d_b * 2.0);
            acc.glb_meta(b_meta * traffic.b_reuse);
            acc.dram(b_meta);
            // Output compression for the next layer (Fig. 10's unit).
            acc.compressor(w.shape.z_elems() as f64);
        }

        // SAF energy: every operand-B word streams through a VFMU; each
        // A-side MAC slot costs a Rank0 select, each A block a Rank1 select.
        if pattern.is_some() {
            acc.vfmu(Vfmu::new(8, 4), traffic.b_glb_words);
            if cfg.rank0_saf {
                acc.mux(Comp::MuxRank0, MuxTree::new(2, 4), w.dense_macs() * d_a);
            }
            if cfg.rank1_saf {
                acc.mux(
                    Comp::MuxRank1,
                    MuxTree::new(4, 8),
                    w.dense_macs() * d_a / 2.0,
                );
            }
        }

        Ok(EvalResult {
            design: self.name.clone(),
            workload: w.name.clone(),
            cycles,
            energy: acc.into_energy(),
        })
    }

    fn area(&self) -> AreaBreakdown {
        let t = &self.config.tech;
        let res = &self.config.resources;
        let mut a = AreaBreakdown::new();
        a.record(Comp::Mac, res.macs as f64 * MacUnit.area_um2(t));
        a.record(Comp::Glb, Sram::new(res.glb_kb).area_um2(t));
        a.record(Comp::GlbMeta, Sram::new(res.glb_meta_kb).area_um2(t));
        a.record(
            Comp::RegFile,
            4.0 * RegFile::new(res.rf_kb / 4.0).area_um2(t),
        );
        // SAFs: a Rank0 mux pair per PE (G0 = 2 MACs per PE), a Rank1 mux
        // block + VFMU per PE array (4 arrays).
        let pes = res.macs as f64 / 2.0;
        a.record(Comp::MuxRank0, pes * MuxTree::new(2, 4).area_um2(t));
        a.record(Comp::MuxRank1, 4.0 * MuxTree::new(4, 8).area_um2(t));
        a.record(Comp::Vfmu, 4.0 * Vfmu::new(8, 4).area_um2(t));
        a
    }

    fn supported_patterns(&self) -> String {
        "A: dense; C1(4:{4≤H≤8})→C0(2:{2≤H≤4}) | B: dense; unstructured".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_sparsity::Gh;
    use hl_tensor::GemmShape;

    fn hss(s: f64) -> OperandSparsity {
        OperandSparsity::Hss(highlight_a().closest_to_density(1.0 - s))
    }

    #[test]
    fn dense_workload_matches_dense_cycles() {
        let hl = HighLight::default();
        let w = Workload::synthetic(OperandSparsity::Dense, OperandSparsity::Dense);
        let r = hl.evaluate(&w).unwrap();
        assert_eq!(r.cycles, (1024.0f64.powi(3) / 1024.0).ceil());
        // No sparsity tax on a dense workload (dense-mode processing).
        assert_eq!(r.energy.sparsity_tax(), 0.0);
    }

    #[test]
    fn structured_a_gets_exact_speedup() {
        let hl = HighLight::default();
        let dense = hl
            .evaluate(&Workload::synthetic(
                OperandSparsity::Dense,
                OperandSparsity::Dense,
            ))
            .unwrap();
        for s in [0.5, 0.75] {
            let r = hl
                .evaluate(&Workload::synthetic(hss(s), OperandSparsity::Dense))
                .unwrap();
            let speedup = dense.cycles / r.cycles;
            assert!(
                (speedup - 1.0 / (1.0 - s)).abs() < 1e-6,
                "expected {}x speedup, got {speedup}",
                1.0 / (1.0 - s)
            );
        }
    }

    #[test]
    fn b_sparsity_saves_energy_not_cycles() {
        let hl = HighLight::default();
        let base = hl
            .evaluate(&Workload::synthetic(hss(0.5), OperandSparsity::Dense))
            .unwrap();
        let gated = hl
            .evaluate(&Workload::synthetic(
                hss(0.5),
                OperandSparsity::unstructured(0.5),
            ))
            .unwrap();
        assert_eq!(base.cycles, gated.cycles, "gating must not change cycles");
        assert!(gated.energy.total() < base.energy.total());
    }

    #[test]
    fn conservative_b_footnote() {
        let hl = HighLight::default();
        let w25 = Workload::synthetic(hss(0.5), OperandSparsity::unstructured(0.25));
        let r25 = hl.evaluate(&w25).unwrap();
        let cfg = HighLightConfig {
            conservative_b: false,
            ..HighLightConfig::default()
        };
        let exact = HighLight::new(cfg).evaluate(&w25).unwrap();
        // Conservative estimation exploits less B sparsity -> more energy.
        assert!(r25.energy.total() > exact.energy.total());
    }

    #[test]
    fn unstructured_a_processed_densely() {
        let hl = HighLight::default();
        let r = hl
            .evaluate(&Workload::synthetic(
                OperandSparsity::unstructured(0.75),
                OperandSparsity::Dense,
            ))
            .unwrap();
        let dense = hl
            .evaluate(&Workload::synthetic(
                OperandSparsity::Dense,
                OperandSparsity::Dense,
            ))
            .unwrap();
        assert_eq!(r.cycles, dense.cycles);
    }

    #[test]
    fn unrepresentable_pattern_is_unsupported() {
        let hl = HighLight::default();
        // 7:8 density (12.5% sparsity) is not in the family.
        let p = OperandSparsity::Hss(HssPattern::one_rank(Gh::new(7, 8)));
        assert!(hl
            .evaluate(&Workload::synthetic(p, OperandSparsity::Dense))
            .is_err());
        // Equal-density fallback: one-rank 1:4 maps to a two-rank member.
        let q = OperandSparsity::Hss(HssPattern::one_rank(Gh::new(1, 4)));
        assert!(hl
            .evaluate(&Workload::synthetic(q, OperandSparsity::Dense))
            .is_ok());
    }

    #[test]
    fn saf_area_fraction_is_small() {
        let hl = HighLight::default();
        let area = hl.area();
        let saf = area.get(Comp::MuxRank0) + area.get(Comp::MuxRank1) + area.get(Comp::Vfmu);
        let frac = saf / area.total();
        assert!(
            frac < 0.12,
            "SAF area fraction should be small, got {frac:.3}"
        );
        assert!(frac > 0.01, "SAF area must be accounted, got {frac:.4}");
    }

    #[test]
    fn ablation_hooks_reduce_speedup() {
        let cfg = HighLightConfig {
            rank1_saf: false,
            ..HighLightConfig::default()
        };
        let hl = HighLight::new(cfg);
        let w = Workload::synthetic(hss(0.75), OperandSparsity::Dense);
        let r = hl.evaluate(&w).unwrap();
        // Only rank0's 2x remains out of the 4x.
        let dense = hl
            .evaluate(&Workload::synthetic(
                OperandSparsity::Dense,
                OperandSparsity::Dense,
            ))
            .unwrap();
        assert!((dense.cycles / r.cycles - 2.0).abs() < 1e-9);
    }

    #[test]
    fn small_shapes_round_cycles_up() {
        let hl = HighLight::default();
        let w = Workload::new(
            "tiny",
            GemmShape::new(8, 32, 8),
            OperandSparsity::Dense,
            OperandSparsity::Dense,
        );
        let r = hl.evaluate(&w).unwrap();
        assert_eq!(r.cycles, 2.0); // 2048 MACs / 1024
    }
}
