//! Per-request lifecycle tracing.
//!
//! Every request the event loop serves gets a trace ID — honored from a
//! client-supplied `X-Request-Id` header when it looks sane, generated
//! otherwise — that is echoed back on the response and stamped on every
//! structured log event the request produces. As the request moves
//! through the pipeline the server measures each stage
//! (parse → queue-wait → eval → serialize → write) and, once the last
//! response byte is flushed, folds the spans into a [`TraceRecord`]
//! pushed onto a fixed-size [`TraceRing`]. `GET /v1/trace` snapshots
//! the ring (newest last), filterable by route and minimum duration via
//! [`TraceQuery`].
//!
//! The ring never blocks a producer: each slot is guarded by its own
//! `Mutex` taken with `try_lock`, and a contended slot just bumps a
//! `dropped` counter. In practice all pushes come from the single
//! event-loop thread, so drops only occur if a reader holds a slot at
//! the exact wrap-around moment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;

/// How many completed traces the ring retains (`GET /v1/trace` can
/// return at most this many).
pub const TRACE_RING_CAPACITY: usize = 256;

/// A completed request lifecycle: identity, terminal outcome, and the
/// per-stage span breakdown in microseconds. The spans are measured
/// contiguously — each span ends exactly where the next begins — so
/// `parse + queue + eval + serialize + write == total` by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Trace ID (client-supplied `X-Request-Id` or generated).
    pub id: String,
    /// Route label, e.g. `"/v1/evaluate"`.
    pub route: &'static str,
    /// HTTP status of the response.
    pub status: u16,
    /// Terminal outcome: `"complete"`, `"coalesce_join"`,
    /// `"shed_overload"`, `"shed_deadline"`, `"quarantine"`,
    /// `"parse_error"`, `"timeout"`, or `"worker_died"`.
    pub outcome: &'static str,
    /// Server uptime (seconds) when the request was accepted.
    pub started_s: f64,
    /// Total accept-to-last-byte latency in microseconds.
    pub total_us: u64,
    /// Time spent parsing the request head + body.
    pub parse_us: u64,
    /// Time spent queued before a worker picked the job up (zero for
    /// inline GETs).
    pub queue_us: u64,
    /// Time spent evaluating in the worker (or inline handler).
    pub eval_us: u64,
    /// Time from eval completion until the response bytes were staged.
    pub serialize_us: u64,
    /// Time from staging until the kernel accepted the last byte.
    pub write_us: u64,
    /// EvalCache hits observed while this request ran.
    pub eval_cache_hits: u64,
    /// EvalCache misses observed while this request ran.
    pub eval_cache_misses: u64,
}

impl TraceRecord {
    /// Sum of the five spans; equals `total_us` by construction.
    pub fn span_sum_us(&self) -> u64 {
        self.parse_us + self.queue_us + self.eval_us + self.serialize_us + self.write_us
    }

    /// The canonical JSON view served by `GET /v1/trace`.
    pub fn to_json(&self) -> Json {
        let ms = |us: u64| Json::Num(us as f64 / 1000.0);
        Json::Obj(vec![
            ("id".to_string(), Json::str(self.id.clone())),
            ("route".to_string(), Json::str(self.route)),
            ("status".to_string(), Json::Num(f64::from(self.status))),
            ("outcome".to_string(), Json::str(self.outcome)),
            ("started_s".to_string(), Json::Num(self.started_s)),
            ("total_ms".to_string(), ms(self.total_us)),
            (
                "spans".to_string(),
                Json::Obj(vec![
                    ("parse_ms".to_string(), ms(self.parse_us)),
                    ("queue_ms".to_string(), ms(self.queue_us)),
                    ("eval_ms".to_string(), ms(self.eval_us)),
                    ("serialize_ms".to_string(), ms(self.serialize_us)),
                    ("write_ms".to_string(), ms(self.write_us)),
                ]),
            ),
            (
                "cache".to_string(),
                Json::Obj(vec![
                    (
                        "eval_hits".to_string(),
                        Json::Num(self.eval_cache_hits as f64),
                    ),
                    (
                        "eval_misses".to_string(),
                        Json::Num(self.eval_cache_misses as f64),
                    ),
                ]),
            ),
        ])
    }
}

/// Fixed-capacity ring of completed traces. Producers never block; see
/// the module docs for the contention story.
pub struct TraceRing {
    slots: Vec<Mutex<Option<TraceRecord>>>,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("pushed", &self.head.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new(TRACE_RING_CAPACITY)
    }
}

impl TraceRing {
    /// A ring holding the last `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces pushed over the ring's lifetime (including ones
    /// since overwritten).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Traces discarded because their slot was contended at push time.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Stores a completed trace, overwriting the oldest. Never blocks:
    /// a contended slot drops the record and bumps [`Self::dropped`].
    pub fn push(&self, record: TraceRecord) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = (seq % self.slots.len() as u64) as usize;
        match self.slots[idx].try_lock() {
            Ok(mut slot) => *slot = Some(record),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The retained traces, oldest first. Slots mid-write are skipped
    /// rather than waited on.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let mut out = Vec::new();
        for seq in head.saturating_sub(cap)..head {
            let idx = (seq % cap) as usize;
            if let Ok(slot) = self.slots[idx].try_lock() {
                if let Some(rec) = slot.as_ref() {
                    out.push(rec.clone());
                }
            }
        }
        out
    }
}

/// Cheap sequential trace-ID generator: a splitmix64 stream seeded from
/// the wall clock at construction, rendered as 16 lowercase hex chars.
#[derive(Debug)]
pub struct IdGen {
    state: AtomicU64,
}

impl Default for IdGen {
    fn default() -> Self {
        Self::new()
    }
}

impl IdGen {
    /// A generator seeded from the current wall-clock nanos.
    pub fn new() -> Self {
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0x9e37_79b9_7f4a_7c15, |d| d.as_nanos() as u64);
        Self::with_seed(seed)
    }

    /// A generator with a fixed seed (tests).
    pub fn with_seed(seed: u64) -> Self {
        Self {
            state: AtomicU64::new(seed),
        }
    }

    /// The next trace ID: 16 lowercase hex characters.
    pub fn next_id(&self) -> String {
        let x = self
            .state
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        format!("{z:016x}")
    }
}

/// True when a client-supplied `X-Request-Id` is safe to honor and echo:
/// 1–64 characters of `[A-Za-z0-9._-]`.
pub fn valid_request_id(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// Parsed filter for `GET /v1/trace`: `limit=N` (newest N),
/// `route=/v1/evaluate`, `min_ms=F` (total latency floor).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceQuery {
    /// Keep only the newest `limit` matching traces.
    pub limit: usize,
    /// Keep only traces whose route label equals this exactly.
    pub route: Option<String>,
    /// Keep only traces at least this many milliseconds long.
    pub min_ms: f64,
}

impl Default for TraceQuery {
    fn default() -> Self {
        Self {
            limit: TRACE_RING_CAPACITY,
            route: None,
            min_ms: 0.0,
        }
    }
}

impl TraceQuery {
    /// Parses a raw query string (no leading `?`). Unknown keys and
    /// malformed values are errors so typos 400 instead of silently
    /// returning everything.
    pub fn parse(query: &str) -> Result<TraceQuery, String> {
        let mut q = TraceQuery::default();
        for pair in query.split('&').filter(|p| !p.is_empty()) {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            match key {
                "limit" => {
                    let n: usize = value
                        .parse()
                        .map_err(|_| format!("invalid limit: {value:?}"))?;
                    if n == 0 {
                        return Err("limit must be >= 1".to_string());
                    }
                    q.limit = n;
                }
                "route" => q.route = Some(value.to_string()),
                "min_ms" => {
                    let ms: f64 = value
                        .parse()
                        .map_err(|_| format!("invalid min_ms: {value:?}"))?;
                    if !ms.is_finite() || ms < 0.0 {
                        return Err("min_ms must be finite and >= 0".to_string());
                    }
                    q.min_ms = ms;
                }
                other => return Err(format!("unknown trace query key: {other:?}")),
            }
        }
        Ok(q)
    }

    /// True when `rec` passes the route and duration filters.
    pub fn matches(&self, rec: &TraceRecord) -> bool {
        if let Some(route) = &self.route {
            if rec.route != route.as_str() {
                return false;
            }
        }
        rec.total_us as f64 / 1000.0 >= self.min_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, route: &'static str, total_us: u64) -> TraceRecord {
        TraceRecord {
            id: id.to_string(),
            route,
            status: 200,
            outcome: "complete",
            started_s: 1.5,
            total_us,
            parse_us: total_us / 5,
            queue_us: total_us / 5,
            eval_us: total_us / 5,
            serialize_us: total_us / 5,
            write_us: total_us - 4 * (total_us / 5),
            eval_cache_hits: 1,
            eval_cache_misses: 0,
        }
    }

    #[test]
    fn span_sum_equals_total_by_construction() {
        for total in [0, 1, 7, 12_345, 999_999] {
            assert_eq!(rec("x", "/v1/evaluate", total).span_sum_us(), total);
        }
    }

    #[test]
    fn ring_retains_newest_in_order() {
        let ring = TraceRing::new(4);
        for i in 0..10 {
            ring.push(rec(&format!("r{i}"), "/v1/evaluate", i * 100));
        }
        let snap = ring.snapshot();
        let ids: Vec<&str> = snap.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["r6", "r7", "r8", "r9"]);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn idgen_yields_distinct_hex_ids() {
        let ids = IdGen::with_seed(42);
        let a = ids.next_id();
        let b = ids.next_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(id.bytes().all(|c| c.is_ascii_hexdigit()));
            assert!(valid_request_id(id));
        }
        // Same seed, same stream.
        assert_eq!(IdGen::with_seed(42).next_id(), a);
    }

    #[test]
    fn request_id_validation() {
        assert!(valid_request_id("abc-123_x.y"));
        assert!(valid_request_id(&"a".repeat(64)));
        assert!(!valid_request_id(""));
        assert!(!valid_request_id(&"a".repeat(65)));
        assert!(!valid_request_id("has space"));
        assert!(!valid_request_id("new\nline"));
        assert!(!valid_request_id("héllo"));
    }

    #[test]
    fn query_parses_and_filters() {
        let q = TraceQuery::parse("limit=2&route=/v1/evaluate&min_ms=0.5").unwrap();
        assert_eq!(q.limit, 2);
        assert_eq!(q.route.as_deref(), Some("/v1/evaluate"));
        assert!(q.matches(&rec("a", "/v1/evaluate", 600)));
        assert!(!q.matches(&rec("b", "/v1/evaluate", 400)));
        assert!(!q.matches(&rec("c", "/v1/search", 600)));
        assert_eq!(TraceQuery::parse("").unwrap(), TraceQuery::default());
        assert!(TraceQuery::parse("limit=0").is_err());
        assert!(TraceQuery::parse("limit=abc").is_err());
        assert!(TraceQuery::parse("min_ms=-1").is_err());
        assert!(TraceQuery::parse("min_ms=nan").is_err());
        assert!(TraceQuery::parse("bogus=1").is_err());
    }

    #[test]
    fn to_json_shape() {
        let j = rec("abc", "/v1/evaluate", 5000).to_json();
        assert_eq!(j.get("id").and_then(Json::as_str), Some("abc"));
        assert_eq!(j.get("total_ms").and_then(Json::as_f64), Some(5.0));
        let spans = j.get("spans").unwrap();
        assert_eq!(spans.get("parse_ms").and_then(Json::as_f64), Some(1.0));
        let cache = j.get("cache").unwrap();
        assert_eq!(cache.get("eval_hits").and_then(Json::as_f64), Some(1.0));
        // Round-trips through the codec.
        let text = j.encode();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }
}
