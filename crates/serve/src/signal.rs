//! SIGTERM / SIGINT → shutdown-flag plumbing.
//!
//! The server polls [`shutdown_requested`] in its accept loop; the
//! `hl-serve` binary calls [`install_handlers`] once at startup so
//! `kill -TERM` and ctrl-c drain the worker pool instead of aborting
//! mid-request. There is no `libc` crate in this dependency-free
//! workspace, so the unix implementation declares the two-argument
//! `signal(2)` binding itself — the handler only stores to an atomic,
//! which is async-signal-safe.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once a termination signal has been received (or
/// [`request_shutdown`] was called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Sets the process-wide shutdown flag, as if a signal had arrived.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM and SIGINT handlers that set the shutdown flag.
/// No-op on non-unix targets (the flag can still be set programmatically).
pub fn install_handlers() {
    imp::install();
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::{Ordering, SHUTDOWN};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    // SAFETY: `signal(2)` from the always-linked platform libc;
    // `sighandler_t` is a pointer-sized function pointer on every
    // supported unix, so this signature matches the C prototype.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install() {
        // SAFETY: installing a handler that performs a single atomic store
        // is async-signal-safe, and `on_signal` has the exact signature
        // `signal(2)` expects.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_shutdown_sets_the_flag() {
        // Note: the flag is process-global and sticky; this is the only
        // test that touches it.
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
    }

    #[test]
    fn handlers_install_without_crashing() {
        install_handlers();
    }
}
