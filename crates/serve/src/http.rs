//! Minimal HTTP/1.1 — incremental request parsing, response
//! serialization, and the error → status-code mapping.
//!
//! The server speaks a deliberately small slice of the protocol, enough
//! for JSON API clients and `curl`:
//!
//! - **keep-alive and pipelining**: parsing is incremental over a
//!   per-connection byte buffer ([`parse_request`] returns
//!   [`ParseStatus::Incomplete`] until a full request has arrived and
//!   reports how many bytes it consumed so the next pipelined request
//!   can follow in the same buffer); connections stay open unless the
//!   client sends `Connection: close` ([`Request::keep_alive`]);
//! - request bodies are sized by `Content-Length` and capped at
//!   [`MAX_BODY_BYTES`] (an oversized declaration → 413 *before* the
//!   payload arrives); chunked **request** bodies are rejected with 411;
//! - response bodies above [`CHUNK_THRESHOLD`] are sent with
//!   `Transfer-Encoding: chunked` (large `/v1/sweep` results stream in
//!   [`CHUNK_SIZE`]-byte chunks), smaller ones with `Content-Length` —
//!   which is why only HTTP/1.1 is spoken: an HTTP/1.0 client cannot
//!   parse chunked responses, so `HTTP/1.0` request lines get a 505;
//! - a stalled client cannot pin the server: the event loop arms a
//!   whole-request deadline per connection and answers 408 when a
//!   partial request stops progressing (see [`crate::server`]).

/// Maximum accepted request-body size in bytes.
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// Maximum accepted total request-head (request line + headers) size.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Response bodies above this size are sent chunked.
pub const CHUNK_THRESHOLD: usize = 8 * 1024;

/// Chunk payload size for chunked responses.
pub const CHUNK_SIZE: usize = 4 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercase as sent.
    pub method: String,
    /// Request path, without the query string.
    pub path: String,
    /// Query string (may be empty; no decoding is applied).
    pub query: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive unless the `Connection` header
    /// lists the `close` token.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            None => true,
            Some(v) => !v
                .split(',')
                .any(|tok| tok.trim().eq_ignore_ascii_case("close")),
        }
    }
}

/// Why a request could not be parsed, carrying the status code the
/// connection should answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// HTTP status to answer with (4xx).
    pub status: u16,
    /// Human-readable reason (becomes the JSON error body).
    pub reason: String,
}

impl ParseError {
    /// An error answering with `status`.
    pub fn new(status: u16, reason: impl Into<String>) -> Self {
        Self {
            status,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}: {}",
            self.status,
            reason_phrase(self.status),
            self.reason
        )
    }
}

impl std::error::Error for ParseError {}

/// The outcome of one incremental parse attempt over a connection's
/// receive buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseStatus {
    /// The buffer does not yet hold one complete request; read more.
    Incomplete,
    /// One complete request, consuming the first `usize` buffer bytes
    /// (drain them; a pipelined successor may start right after).
    Complete(Request, usize),
    /// The buffer starts with a malformed request; answer with this
    /// error and close (resynchronizing after a parse error is not
    /// worth the ambiguity).
    Bad(ParseError),
}

/// Parses at most one request from the front of `buf` without consuming
/// it — the caller drains the reported byte count on
/// [`ParseStatus::Complete`]. Purely a function of the buffer contents,
/// which is what makes keep-alive and pipelining trivial for the event
/// loop: append bytes, parse, repeat.
pub fn parse_request(buf: &[u8]) -> ParseStatus {
    // Locate the end of the head: the first empty line. Lines are
    // `\n`-terminated with the `\r` optional.
    let Some(head_len) = find_head_end(buf) else {
        return if buf.len() > MAX_HEAD_BYTES {
            ParseStatus::Bad(ParseError::new(431, "request head too large"))
        } else {
            ParseStatus::Incomplete
        };
    };
    if head_len > MAX_HEAD_BYTES {
        return ParseStatus::Bad(ParseError::new(431, "request head too large"));
    }
    let head = String::from_utf8_lossy(&buf[..head_len]);
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    let (method, path, query) = match parse_request_line(request_line) {
        Ok(t) => t,
        Err(e) => return ParseStatus::Bad(e),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return ParseStatus::Bad(ParseError::new(
                400,
                format!("malformed header line {line:?}"),
            ));
        };
        if name.is_empty() || name.contains(' ') {
            return ParseStatus::Bad(ParseError::new(
                400,
                format!("malformed header name {name:?}"),
            ));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };

    if let Some(te) = req.header("transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return ParseStatus::Bad(ParseError::new(
                411,
                "chunked request bodies are not supported; send Content-Length",
            ));
        }
    }
    let len = match req.header("content-length") {
        None => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return ParseStatus::Bad(ParseError::new(400, format!("bad Content-Length {v:?}")));
            }
        },
    };
    if len > MAX_BODY_BYTES {
        return ParseStatus::Bad(ParseError::new(
            413,
            format!("body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"),
        ));
    }
    let total = head_len + len;
    if buf.len() < total {
        return ParseStatus::Incomplete;
    }
    req.body = buf[head_len..total].to_vec();
    ParseStatus::Complete(req, total)
}

/// Index one past the head-terminating empty line, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut line_start = 0;
    for (i, &b) in buf.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        let line = &buf[line_start..i];
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        if line.is_empty() && line_start > 0 {
            return Some(i + 1);
        }
        line_start = i + 1;
    }
    None
}

fn parse_request_line(line: &str) -> Result<(String, String, String), ParseError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::new(
            400,
            format!("malformed request line {line:?}"),
        ));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::new(400, format!("malformed method {method:?}")));
    }
    if !target.starts_with('/') {
        return Err(ParseError::new(
            400,
            format!("target must be absolute, got {target:?}"),
        ));
    }
    // HTTP/1.0 is rejected too: large responses are chunked, which a
    // 1.0 client cannot parse.
    if version != "HTTP/1.1" {
        return Err(ParseError::new(
            505,
            format!("unsupported version {version:?}; use HTTP/1.1"),
        ));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok((method.to_string(), path, query))
}

/// A response ready to be serialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Optional `Retry-After` header value in seconds — set on 503s so
    /// shed clients know when backing off is long enough.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
            retry_after: None,
        }
    }

    /// Attaches a `Retry-After: seconds` header.
    pub fn with_retry_after(mut self, seconds: u32) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Serializes the response; bodies above [`CHUNK_THRESHOLD`] are
    /// sent with chunked transfer encoding (legal on keep-alive
    /// connections — the terminating `0\r\n\r\n` delimits the body).
    ///
    /// The bytes are a pure function of `(self, keep_alive)`, which is
    /// what the `/v1` ↔ legacy-alias byte-identity guarantee and the
    /// coalescing path lean on: one computed [`Response`] serializes
    /// identically for every waiter with the same connection mode.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        self.to_bytes_with_id(keep_alive, None)
    }

    /// [`Self::to_bytes`] plus an optional `X-Request-Id` echo header.
    /// With `request_id: None` the output is byte-identical to
    /// `to_bytes(keep_alive)`; the id must already satisfy
    /// [`crate::trace::valid_request_id`] (the server validates or
    /// generates it) so it cannot split the header block.
    pub fn to_bytes_with_id(&self, keep_alive: bool, request_id: Option<&str>) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nConnection: {}\r\n",
                self.status,
                reason_phrase(self.status),
                self.content_type,
                if keep_alive { "keep-alive" } else { "close" },
            )
            .as_bytes(),
        );
        if let Some(id) = request_id {
            out.extend_from_slice(format!("X-Request-Id: {id}\r\n").as_bytes());
        }
        if let Some(seconds) = self.retry_after {
            out.extend_from_slice(format!("Retry-After: {seconds}\r\n").as_bytes());
        }
        if self.body.len() > CHUNK_THRESHOLD {
            out.extend_from_slice(b"Transfer-Encoding: chunked\r\n\r\n");
            for chunk in self.body.chunks(CHUNK_SIZE) {
                out.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
                out.extend_from_slice(chunk);
                out.extend_from_slice(b"\r\n");
            }
            out.extend_from_slice(b"0\r\n\r\n");
        } else {
            out.extend_from_slice(
                format!("Content-Length: {}\r\n\r\n", self.body.len()).as_bytes(),
            );
            out.extend_from_slice(&self.body);
        }
        out
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(raw: &str) -> (Request, usize) {
        match parse_request(raw.as_bytes()) {
            ParseStatus::Complete(r, n) => (r, n),
            ParseStatus::Bad(e) => panic!("expected ok, got {e}"),
            ParseStatus::Incomplete => panic!("expected ok, got incomplete"),
        }
    }

    fn parse_bad(raw: &str) -> ParseError {
        match parse_request(raw.as_bytes()) {
            ParseStatus::Bad(e) => e,
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let (r, n) = parse_ok("GET /designs?x=1&y=2 HTTP/1.1\r\nHost: a\r\nX-Th: 3\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/designs");
        assert_eq!(r.query, "x=1&y=2");
        assert_eq!(r.header("host"), Some("a"));
        assert_eq!(
            r.header("X-TH"),
            Some("3"),
            "header lookup is case-insensitive"
        );
        assert!(r.body.is_empty());
        assert_eq!(
            n,
            "GET /designs?x=1&y=2 HTTP/1.1\r\nHost: a\r\nX-Th: 3\r\n\r\n".len()
        );
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let raw = "POST /evaluate HTTP/1.1\r\nContent-Length: 4\r\n\r\n{} \nEXTRA";
        let (r, n) = parse_ok(raw);
        assert_eq!(r.body, b"{} \n");
        assert_eq!(n, raw.len() - "EXTRA".len(), "trailing bytes stay queued");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw =
            "GET /healthz HTTP/1.1\r\n\r\nPOST /evaluate HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let (first, n) = parse_ok(raw);
        assert_eq!(first.path, "/healthz");
        let (second, m) = parse_ok(&raw[n..]);
        assert_eq!(second.path, "/evaluate");
        assert_eq!(second.body, b"{}");
        assert_eq!(n + m, raw.len());
    }

    #[test]
    fn incomplete_requests_wait_for_more_bytes() {
        for raw in [
            "",
            "GET /x HT",
            "GET /x HTTP/1.1\r\nHost: a",
            "GET /x HTTP/1.1\r\nHost: a\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab",
        ] {
            assert_eq!(
                parse_request(raw.as_bytes()),
                ParseStatus::Incomplete,
                "{raw:?}"
            );
        }
    }

    #[test]
    fn keep_alive_defaults_on_and_honors_close() {
        let (r, _) = parse_ok("GET /x HTTP/1.1\r\n\r\n");
        assert!(r.keep_alive(), "HTTP/1.1 defaults to keep-alive");
        let (r, _) = parse_ok("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!r.keep_alive());
        let (r, _) = parse_ok("GET /x HTTP/1.1\r\nConnection: Close\r\n\r\n");
        assert!(!r.keep_alive(), "token match is case-insensitive");
        let (r, _) = parse_ok("GET /x HTTP/1.1\r\nConnection: keep-alive\r\n\r\n");
        assert!(r.keep_alive());
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for (raw, status) in [
            ("\r\n\r\n", 400),
            ("GARBAGE\r\n\r\n", 400),
            ("GET /x\r\n\r\n", 400),
            ("GET /x HTTP/1.1 extra\r\n\r\n", 400),
            ("get /x HTTP/1.1\r\n\r\n", 400),
            ("GET x HTTP/1.1\r\n\r\n", 400),
            ("GET /x HTTP/2\r\n\r\n", 505),
            ("GET /x HTTP/1.0\r\n\r\n", 505),
            ("GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n", 400),
            ("GET /x HTTP/1.1\r\nbad name: v\r\n\r\n", 400),
            ("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (
                "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                411,
            ),
        ] {
            let e = parse_bad(raw);
            assert_eq!(e.status, status, "{raw:?} → {}", e.reason);
        }
    }

    #[test]
    fn oversized_declarations_are_rejected_before_the_payload() {
        // 413 fires from the head alone — no body bytes present yet.
        let e = parse_bad(&format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        ));
        assert_eq!(e.status, 413);
        let long = "a".repeat(MAX_HEAD_BYTES + 2);
        let e = parse_bad(&format!("GET /{long} HTTP/1.1\r\n\r\n"));
        assert_eq!(e.status, 431);
        let e = parse_bad(&format!("GET /x HTTP/1.1\r\nH: {long}\r\n\r\n"));
        assert_eq!(e.status, 431);
        // A head that never terminates is rejected once it exceeds the
        // cap, not buffered forever.
        let e = parse_bad(&"a".repeat(MAX_HEAD_BYTES + 1));
        assert_eq!(e.status, 431);
    }

    #[test]
    fn small_responses_use_content_length() {
        let text =
            String::from_utf8(Response::json(200, r#"{"ok":true}"#).to_bytes(false)).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let text = String::from_utf8(Response::json(200, r#"{"ok":true}"#).to_bytes(true)).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn request_id_header_is_injected_without_changing_the_rest() {
        let resp = Response::json(200, r#"{"ok":true}"#);
        // No id → byte-identical to the plain serialization.
        assert_eq!(resp.to_bytes_with_id(true, None), resp.to_bytes(true));
        let tagged =
            String::from_utf8(resp.to_bytes_with_id(true, Some("abc123def4567890"))).unwrap();
        assert!(tagged.contains("X-Request-Id: abc123def4567890\r\n"));
        // Removing the one injected header restores the plain bytes.
        let stripped = tagged.replacen("X-Request-Id: abc123def4567890\r\n", "", 1);
        assert_eq!(stripped.into_bytes(), resp.to_bytes(true));
        // Orders with Retry-After: Connection, X-Request-Id, Retry-After.
        let shed = String::from_utf8(
            Response::json(503, "{}")
                .with_retry_after(1)
                .to_bytes_with_id(false, Some("id1")),
        )
        .unwrap();
        let conn = shed.find("Connection:").unwrap();
        let rid = shed.find("X-Request-Id:").unwrap();
        let retry = shed.find("Retry-After:").unwrap();
        assert!(conn < rid && rid < retry);
    }

    #[test]
    fn retry_after_header_is_emitted_only_when_set() {
        let plain = String::from_utf8(Response::json(503, "{}").to_bytes(true)).unwrap();
        assert!(!plain.contains("Retry-After"));
        let shed = String::from_utf8(Response::json(503, "{}").with_retry_after(2).to_bytes(true))
            .unwrap();
        assert!(shed.contains("Retry-After: 2\r\n"));
        assert!(shed.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn large_responses_are_chunked() {
        let body = vec![b'x'; CHUNK_THRESHOLD + CHUNK_SIZE + 17];
        let text = String::from_utf8(Response::json(200, body.clone()).to_bytes(true)).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(text.ends_with("0\r\n\r\n"));
        // Reassemble the chunks and compare.
        let payload = text.split_once("\r\n\r\n").unwrap().1;
        let mut rest = payload;
        let mut reassembled = Vec::new();
        loop {
            let (size, tail) = rest.split_once("\r\n").unwrap();
            let n = usize::from_str_radix(size, 16).unwrap();
            if n == 0 {
                break;
            }
            reassembled.extend_from_slice(&tail.as_bytes()[..n]);
            rest = &tail[n + 2..];
        }
        assert_eq!(reassembled, body);
    }

    #[test]
    fn reason_phrases_cover_emitted_codes() {
        for code in [200, 400, 404, 405, 408, 411, 413, 422, 431, 500, 503, 505] {
            assert_ne!(reason_phrase(code), "Unknown", "{code}");
        }
        assert_eq!(reason_phrase(418), "Unknown");
    }
}
