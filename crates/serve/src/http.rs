//! Minimal HTTP/1.1 on top of `std::io` — request parsing, response
//! writing, and the error → status-code mapping.
//!
//! The server speaks a deliberately small slice of the protocol, enough
//! for JSON API clients and `curl`:
//!
//! - one request per connection (`Connection: close` on every response);
//! - request bodies are sized by `Content-Length` and capped at
//!   [`MAX_BODY_BYTES`] (oversized → 413 *before* reading the payload);
//!   chunked **request** bodies are rejected with 411;
//! - response bodies above [`CHUNK_THRESHOLD`] are sent with
//!   `Transfer-Encoding: chunked` (large `/sweep` results stream in
//!   [`CHUNK_SIZE`]-byte chunks), smaller ones with `Content-Length` —
//!   which is why only HTTP/1.1 is spoken: an HTTP/1.0 client cannot
//!   parse chunked responses, so `HTTP/1.0` request lines get a 505;
//! - a stalled client cannot pin a worker: the server arms per-read
//!   socket timeouts **and** [`read_request`] enforces a whole-request
//!   deadline, so trickling one byte per read never extends the budget
//!   (both map to 408 best-effort).

use std::io::{self, BufRead, Write};
use std::time::Instant;

/// Maximum accepted request-body size in bytes.
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// Maximum accepted total request-head (request line + headers) size.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Response bodies above this size are sent chunked.
pub const CHUNK_THRESHOLD: usize = 8 * 1024;

/// Chunk payload size for chunked responses.
pub const CHUNK_SIZE: usize = 4 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercase as sent.
    pub method: String,
    /// Request path, without the query string.
    pub path: String,
    /// Query string (may be empty; no decoding is applied).
    pub query: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed, carrying the status code the
/// connection should answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// HTTP status to answer with (4xx).
    pub status: u16,
    /// Human-readable reason (becomes the JSON error body).
    pub reason: String,
}

impl ParseError {
    fn new(status: u16, reason: impl Into<String>) -> Self {
        Self {
            status,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}: {}",
            self.status,
            reason_phrase(self.status),
            self.reason
        )
    }
}

impl std::error::Error for ParseError {}

/// The outcome of reading one request off a connection.
pub enum Parsed {
    /// A complete request.
    Ok(Request),
    /// The request is malformed; answer with this error.
    Bad(ParseError),
    /// The client closed the connection (or timed out) before sending a
    /// complete request head; nothing to answer.
    Closed,
}

/// Maps an I/O failure while reading the head: stalled sockets (the
/// server arms a read timeout) get a best-effort 408, anything else is a
/// peer that went away.
fn io_outcome(e: &io::Error) -> Parsed {
    if matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    ) {
        Parsed::Bad(ParseError::new(408, "timed out reading the request"))
    } else {
        Parsed::Closed
    }
}

/// Reads and parses one request from `reader`, giving up with a 408 once
/// `deadline` passes (checked between reads, so the worst case is one
/// socket-level read timeout past the deadline — a trickling client
/// cannot stretch its welcome byte by byte).
///
/// I/O errors while reading the head are treated as [`Parsed::Closed`]
/// (there is no one to answer) except read timeouts (408); errors after a
/// syntactically valid head map to 4xx via [`Parsed::Bad`].
pub fn read_request(reader: &mut impl BufRead, deadline: Instant) -> Parsed {
    let mut line = String::new();
    match read_crlf_line(reader, &mut line, MAX_HEAD_BYTES, deadline) {
        Ok(0) => return Parsed::Closed,
        Ok(_) => {}
        Err(LineError::TooLong) => {
            return Parsed::Bad(ParseError::new(431, "request line too long"));
        }
        Err(LineError::Deadline) => return deadline_exceeded(),
        Err(LineError::Io(e)) => return io_outcome(&e),
    }
    let (method, path, query) = match parse_request_line(line.trim_end_matches(['\r', '\n'])) {
        Ok(t) => t,
        Err(e) => return Parsed::Bad(e),
    };

    let mut headers = Vec::new();
    let mut head_bytes = line.len();
    loop {
        let mut h = String::new();
        match read_crlf_line(reader, &mut h, MAX_HEAD_BYTES, deadline) {
            Ok(0) => return Parsed::Closed,
            Ok(n) => head_bytes += n,
            Err(LineError::TooLong) => {
                return Parsed::Bad(ParseError::new(431, "header line too long"));
            }
            Err(LineError::Deadline) => return deadline_exceeded(),
            Err(LineError::Io(e)) => return io_outcome(&e),
        }
        if head_bytes > MAX_HEAD_BYTES {
            return Parsed::Bad(ParseError::new(431, "request head too large"));
        }
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Parsed::Bad(ParseError::new(400, format!("malformed header line {h:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Parsed::Bad(ParseError::new(
                400,
                format!("malformed header name {name:?}"),
            ));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };

    if let Some(te) = req.header("transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Parsed::Bad(ParseError::new(
                411,
                "chunked request bodies are not supported; send Content-Length",
            ));
        }
    }
    let len = match req.header("content-length") {
        None => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Parsed::Bad(ParseError::new(400, format!("bad Content-Length {v:?}")));
            }
        },
    };
    if len > MAX_BODY_BYTES {
        return Parsed::Bad(ParseError::new(
            413,
            format!("body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"),
        ));
    }
    if len > 0 {
        let mut body = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            if Instant::now() >= deadline {
                return deadline_exceeded();
            }
            match reader.read(&mut body[filled..]) {
                Ok(0) => {
                    return Parsed::Bad(ParseError::new(400, "connection closed mid-body"));
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return io_outcome(&e),
            }
        }
        req.body = body;
    }
    Parsed::Ok(req)
}

fn deadline_exceeded() -> Parsed {
    Parsed::Bad(ParseError::new(
        408,
        "request took too long to arrive in full",
    ))
}

fn parse_request_line(line: &str) -> Result<(String, String, String), ParseError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::new(
            400,
            format!("malformed request line {line:?}"),
        ));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::new(400, format!("malformed method {method:?}")));
    }
    if !target.starts_with('/') {
        return Err(ParseError::new(
            400,
            format!("target must be absolute, got {target:?}"),
        ));
    }
    // HTTP/1.0 is rejected too: large responses are chunked, which a
    // 1.0 client cannot parse.
    if version != "HTTP/1.1" {
        return Err(ParseError::new(
            505,
            format!("unsupported version {version:?}; use HTTP/1.1"),
        ));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok((method.to_string(), path, query))
}

enum LineError {
    TooLong,
    Deadline,
    Io(io::Error),
}

/// Reads one `\n`-terminated line (CRLF tolerated) with a length cap and
/// a whole-request deadline, returning the number of bytes consumed
/// (0 on a clean EOF).
fn read_crlf_line(
    reader: &mut impl BufRead,
    out: &mut String,
    max: usize,
    deadline: Instant,
) -> Result<usize, LineError> {
    let mut bytes = Vec::new();
    loop {
        if Instant::now() >= deadline {
            return Err(LineError::Deadline);
        }
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                bytes.push(byte[0]);
                if byte[0] == b'\n' {
                    break;
                }
                if bytes.len() > max {
                    return Err(LineError::TooLong);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(LineError::Io(e)),
        }
    }
    let n = bytes.len();
    out.push_str(&String::from_utf8_lossy(&bytes));
    Ok(n)
}

/// A response ready to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// Writes the response; bodies above [`CHUNK_THRESHOLD`] are sent with
    /// chunked transfer encoding. Output is buffered, so a response costs
    /// one or two `write` syscalls instead of several per chunk.
    ///
    /// # Errors
    /// Propagates socket write errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut w = io::BufWriter::with_capacity(16 * 1024, w);
        let w = &mut w;
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nConnection: close\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
        );
        w.write_all(head.as_bytes())?;
        if self.body.len() > CHUNK_THRESHOLD {
            w.write_all(b"Transfer-Encoding: chunked\r\n\r\n")?;
            for chunk in self.body.chunks(CHUNK_SIZE) {
                write!(w, "{:x}\r\n", chunk.len())?;
                w.write_all(chunk)?;
                w.write_all(b"\r\n")?;
            }
            w.write_all(b"0\r\n\r\n")?;
        } else {
            write!(w, "Content-Length: {}\r\n\r\n", self.body.len())?;
            w.write_all(&self.body)?;
        }
        w.flush()
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn far_deadline() -> Instant {
        Instant::now() + std::time::Duration::from_secs(30)
    }

    fn parse(raw: &str) -> Parsed {
        read_request(&mut BufReader::new(raw.as_bytes()), far_deadline())
    }

    fn parse_ok(raw: &str) -> Request {
        match parse(raw) {
            Parsed::Ok(r) => r,
            Parsed::Bad(e) => panic!("expected ok, got {e}"),
            Parsed::Closed => panic!("expected ok, got closed"),
        }
    }

    fn parse_bad(raw: &str) -> ParseError {
        match parse(raw) {
            Parsed::Bad(e) => e,
            Parsed::Ok(r) => panic!("expected error, got {r:?}"),
            Parsed::Closed => panic!("expected error, got closed"),
        }
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let r = parse_ok("GET /designs?x=1&y=2 HTTP/1.1\r\nHost: a\r\nX-Th: 3\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/designs");
        assert_eq!(r.query, "x=1&y=2");
        assert_eq!(r.header("host"), Some("a"));
        assert_eq!(
            r.header("X-TH"),
            Some("3"),
            "header lookup is case-insensitive"
        );
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let r = parse_ok("POST /evaluate HTTP/1.1\r\nContent-Length: 4\r\n\r\n{} \nEXTRA");
        assert_eq!(r.body, b"{} \n");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        for (raw, status) in [
            ("\r\n\r\n", 400),
            ("GARBAGE\r\n\r\n", 400),
            ("GET /x\r\n\r\n", 400),
            ("GET /x HTTP/1.1 extra\r\n\r\n", 400),
            ("get /x HTTP/1.1\r\n\r\n", 400),
            ("GET x HTTP/1.1\r\n\r\n", 400),
            ("GET /x HTTP/2\r\n\r\n", 505),
            ("GET /x HTTP/1.0\r\n\r\n", 505),
            ("GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n", 400),
            ("GET /x HTTP/1.1\r\nbad name: v\r\n\r\n", 400),
            ("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (
                "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                411,
            ),
            ("POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort", 400),
        ] {
            let e = parse_bad(raw);
            assert_eq!(e.status, status, "{raw:?} → {}", e.reason);
        }
    }

    #[test]
    fn oversized_declarations_are_rejected_before_reading() {
        let e = parse_bad(&format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        ));
        assert_eq!(e.status, 413);
        let long = "a".repeat(MAX_HEAD_BYTES + 2);
        let e = parse_bad(&format!("GET /{long} HTTP/1.1\r\n\r\n"));
        assert_eq!(e.status, 431);
        let e = parse_bad(&format!("GET /x HTTP/1.1\r\nH: {long}\r\n\r\n"));
        assert_eq!(e.status, 431);
    }

    #[test]
    fn eof_before_a_request_is_closed_not_an_error() {
        assert!(matches!(parse(""), Parsed::Closed));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nHost: a"),
            Parsed::Closed
        ));
    }

    #[test]
    fn expired_deadline_maps_to_408() {
        // An already-expired deadline must abort immediately (the check
        // sits between reads, so a trickling client cannot stretch the
        // request budget byte by byte).
        let past = Instant::now() - std::time::Duration::from_millis(1);
        for raw in ["GET /x HTTP/1.1\r\n\r\n", "POST /x"] {
            let e = match read_request(&mut BufReader::new(raw.as_bytes()), past) {
                Parsed::Bad(e) => e,
                _ => panic!("expected 408 for {raw:?}"),
            };
            assert_eq!(e.status, 408);
        }
    }

    #[test]
    fn small_responses_use_content_length() {
        let mut out = Vec::new();
        Response::json(200, r#"{"ok":true}"#)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn large_responses_are_chunked() {
        let body = vec![b'x'; CHUNK_THRESHOLD + CHUNK_SIZE + 17];
        let mut out = Vec::new();
        Response::json(200, body.clone())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(text.ends_with("0\r\n\r\n"));
        // Reassemble the chunks and compare.
        let payload = text.split_once("\r\n\r\n").unwrap().1;
        let mut rest = payload;
        let mut reassembled = Vec::new();
        loop {
            let (size, tail) = rest.split_once("\r\n").unwrap();
            let n = usize::from_str_radix(size, 16).unwrap();
            if n == 0 {
                break;
            }
            reassembled.extend_from_slice(&tail.as_bytes()[..n]);
            rest = &tail[n + 2..];
        }
        assert_eq!(reassembled, body);
    }

    #[test]
    fn reason_phrases_cover_emitted_codes() {
        for code in [200, 400, 404, 405, 408, 411, 413, 422, 431, 500, 503, 505] {
            assert_ne!(reason_phrase(code), "Unknown", "{code}");
        }
        assert_eq!(reason_phrase(418), "Unknown");
    }
}
