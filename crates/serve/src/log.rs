//! Structured JSON-lines logging for the serving core.
//!
//! One [`Logger`] lives on the [`crate::api::App`] and is shared by the
//! event loop, the worker pool, and the snapshot machinery. Every event
//! is a single JSON object on one line — machine-parseable with the
//! repo's own [`crate::json`] codec — carrying at least `ts`, `level`,
//! and `event`, plus whatever context fields the call site attaches
//! (`trace_id`, `route`, `status`, `duration_ms`, …).
//!
//! The logger is leveled ([`Level`], settable at runtime via
//! `--log-level`) and rate-limited: past
//! [`Logger::DEFAULT_EVENTS_PER_SEC`] events in a one-second window,
//! further events are counted and dropped instead of written, and the
//! next window opens with a `log_events_dropped` notice so the loss is
//! visible in the stream itself. Emission never blocks the caller on
//! slow sinks longer than the sink's own write; a failed write is
//! ignored (stderr going away must not take the server with it).

use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::json::Json;

/// Log severity, from most to least severe. The logger emits an event
/// when its level is at or above the event's (e.g. an `Info` logger
/// emits `Error`, `Warn`, and `Info`, but not `Debug`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The server lost something it should not have (failed snapshot
    /// save, fatal subsystem error).
    Error = 0,
    /// Degraded but coped: slow requests, injected faults, shed work.
    Warn = 1,
    /// Lifecycle events (boot, drain, snapshot load/save).
    Info = 2,
    /// Per-request events.
    Debug = 3,
}

impl Level {
    /// Parses a level name (case-insensitive): `error`, `warn`, `info`,
    /// or `debug`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    /// The wire label (`"error"`, `"warn"`, `"info"`, `"debug"`).
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

/// A shared in-memory sink for tests: hand
/// [`SharedBuffer::make_sink`] to [`Logger::set_sink`] and read back
/// everything the logger wrote with [`SharedBuffer::contents`].
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// An empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A `Write` handle over the same underlying buffer.
    pub fn make_sink(&self) -> Box<dyn Write + Send> {
        Box::new(SharedBufferSink {
            buf: Arc::clone(&self.buf),
        })
    }

    /// Everything written so far, lossily decoded as UTF-8.
    pub fn contents(&self) -> String {
        let buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        String::from_utf8_lossy(&buf).into_owned()
    }
}

struct SharedBufferSink {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl Write for SharedBufferSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The JSON-lines logger. See the module docs for the event shape.
pub struct Logger {
    level: AtomicU8,
    sink: Mutex<Box<dyn Write + Send>>,
    limit: u64,
    window: Mutex<Window>,
    emitted: AtomicU64,
    dropped: AtomicU64,
}

struct Window {
    start: Instant,
    count: u64,
    dropped: u64,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("level", &self.level())
            .field("limit", &self.limit)
            .finish_non_exhaustive()
    }
}

impl Default for Logger {
    fn default() -> Self {
        Self::new()
    }
}

impl Logger {
    /// Rate-limit ceiling: events per one-second window before the
    /// logger starts dropping (and counting) instead of writing.
    pub const DEFAULT_EVENTS_PER_SEC: u64 = 4096;

    /// A stderr logger at [`Level::Info`] with the default rate limit.
    pub fn new() -> Self {
        Self::with_sink(Box::new(std::io::stderr()))
    }

    /// A logger over an arbitrary sink (tests use [`SharedBuffer`]).
    pub fn with_sink(sink: Box<dyn Write + Send>) -> Self {
        Self {
            level: AtomicU8::new(Level::Info as u8),
            sink: Mutex::new(sink),
            limit: Self::DEFAULT_EVENTS_PER_SEC,
            window: Mutex::new(Window {
                start: Instant::now(),
                count: 0,
                dropped: 0,
            }),
            emitted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Replaces the sink (tests capture output this way).
    pub fn set_sink(&self, sink: Box<dyn Write + Send>) {
        *self.sink.lock().unwrap_or_else(|e| e.into_inner()) = sink;
    }

    /// Sets the emission level.
    pub fn set_level(&self, level: Level) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// The current emission level.
    pub fn level(&self) -> Level {
        Level::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// True when an event at `level` would be emitted (cheap pre-check
    /// so call sites can skip building fields for disabled levels).
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level()
    }

    /// Events written so far.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Events dropped by the rate limiter so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Emits one structured event: a single JSON line with `ts` (unix
    /// seconds), `level`, `event`, then `fields` in the given order.
    pub fn log(&self, level: Level, event: &str, fields: &[(&str, Json)]) {
        if !self.enabled(level) {
            return;
        }
        let rolled_over = {
            let mut w = self.window.lock().unwrap_or_else(|e| e.into_inner());
            if w.start.elapsed().as_secs() >= 1 {
                let lost = w.dropped;
                w.start = Instant::now();
                w.count = 1;
                w.dropped = 0;
                (lost > 0).then_some(lost)
            } else if w.count >= self.limit {
                w.dropped += 1;
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            } else {
                w.count += 1;
                None
            }
        };
        if let Some(lost) = rolled_over {
            self.write_line(Level::Warn, "log_events_dropped", {
                &[("count", Json::Num(lost as f64))]
            });
        }
        self.write_line(level, event, fields);
    }

    /// [`Logger::log`] at [`Level::Error`].
    pub fn error(&self, event: &str, fields: &[(&str, Json)]) {
        self.log(Level::Error, event, fields);
    }

    /// [`Logger::log`] at [`Level::Warn`].
    pub fn warn(&self, event: &str, fields: &[(&str, Json)]) {
        self.log(Level::Warn, event, fields);
    }

    /// [`Logger::log`] at [`Level::Info`].
    pub fn info(&self, event: &str, fields: &[(&str, Json)]) {
        self.log(Level::Info, event, fields);
    }

    /// [`Logger::log`] at [`Level::Debug`].
    pub fn debug(&self, event: &str, fields: &[(&str, Json)]) {
        self.log(Level::Debug, event, fields);
    }

    fn write_line(&self, level: Level, event: &str, fields: &[(&str, Json)]) {
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0.0, |d| (d.as_secs_f64() * 1000.0).round() / 1000.0);
        let mut members = Vec::with_capacity(3 + fields.len());
        members.push(("ts".to_string(), Json::Num(ts)));
        members.push(("level".to_string(), Json::str(level.label())));
        members.push(("event".to_string(), Json::str(event)));
        for (k, v) in fields {
            members.push(((*k).to_string(), v.clone()));
        }
        let mut line = Json::Obj(members).encode();
        line.push('\n');
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        // A dead sink must never take the server down with it.
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.flush();
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture_logger() -> (Logger, SharedBuffer) {
        let buf = SharedBuffer::new();
        let logger = Logger::with_sink(buf.make_sink());
        (logger, buf)
    }

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(l.label()), Some(l));
        }
    }

    #[test]
    fn events_are_one_parseable_json_line_each() {
        let (logger, buf) = capture_logger();
        logger.info(
            "request",
            &[
                ("trace_id", Json::str("abc123")),
                ("route", Json::str("/v1/evaluate")),
                ("status", Json::Num(200.0)),
                ("duration_ms", Json::Num(1.25)),
            ],
        );
        logger.error("snapshot_save_failed", &[("path", Json::str("/tmp/x"))]);
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("level").and_then(Json::as_str), Some("info"));
        assert_eq!(first.get("event").and_then(Json::as_str), Some("request"));
        assert_eq!(first.get("trace_id").and_then(Json::as_str), Some("abc123"));
        assert_eq!(first.get("status").and_then(Json::as_f64), Some(200.0));
        assert!(first.get("ts").and_then(Json::as_f64).unwrap() > 0.0);
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("level").and_then(Json::as_str), Some("error"));
        assert_eq!(logger.emitted(), 2);
    }

    #[test]
    fn level_gates_emission() {
        let (logger, buf) = capture_logger();
        logger.set_level(Level::Warn);
        assert!(logger.enabled(Level::Error));
        assert!(!logger.enabled(Level::Info));
        logger.debug("hidden", &[]);
        logger.info("hidden", &[]);
        logger.warn("visible", &[]);
        logger.error("visible", &[]);
        assert_eq!(buf.contents().lines().count(), 2);
        logger.set_level(Level::Debug);
        logger.debug("now-visible", &[]);
        assert_eq!(buf.contents().lines().count(), 3);
    }

    #[test]
    fn rate_limit_drops_and_counts() {
        let (logger, buf) = capture_logger();
        for _ in 0..(Logger::DEFAULT_EVENTS_PER_SEC + 10) {
            logger.info("spam", &[]);
        }
        assert_eq!(logger.emitted(), Logger::DEFAULT_EVENTS_PER_SEC);
        assert_eq!(logger.dropped(), 10);
        assert_eq!(
            buf.contents().lines().count() as u64,
            Logger::DEFAULT_EVENTS_PER_SEC
        );
    }
}
