//! The typed wire-schema layer: one typed struct per request wire type,
//! canonical JSON encoders for the response wire types, and the
//! structured error body every 4xx/5xx answers with.
//!
//! Handlers used to parse raw [`Json`] by hand, re-implementing
//! missing-field/unknown-field/range checks per endpoint. This module
//! centralizes that:
//!
//! - [`ObjReader`] is the declarative field extractor: it rejects
//!   non-objects and unknown fields up front, then lends out typed
//!   accessors (`req_str`, `opt_f64`, …) whose failures are
//!   [`SchemaError`] values with stable, user-facing messages;
//! - each request wire type ([`EvaluateRequest`], [`SweepRequest`],
//!   [`SearchRequest`], [`EvaluateModelRequest`]) parses with
//!   `from_body`/`from_json` and re-encodes with `to_json`, and the two
//!   compose to the identity (`parse(encode(x)) == x`, the proptest in
//!   `tests/schema_roundtrip.rs`);
//! - the pruning-spec grammar (`"dense"` | `{"unstructured": d}` |
//!   `{"hss": [[g, h], …]}`) lives here as [`pruning_spec`] /
//!   [`pruning_spec_json`], shared by `/v1/evaluate_model` and the
//!   round-trip tests;
//! - the canonical response encoders ([`eval_result_json`],
//!   [`network_eval_json`], [`search_outcome_json`]) are the single
//!   source of truth the byte-identity acceptance tests compare against;
//! - every 4xx/5xx renders as `{"error": {"code": …, "message": …}}`
//!   ([`ErrorBody`]), with [`error_code`] mapping status → stable code.
//!
//! Error enums follow the `thiserror` idiom (structured variants, a
//! hand-written `Display`, `std::error::Error`) — there is no crates.io
//! access in this workspace, so the derive is spelled out.

use hl_bench::{SearchOutcome, SearchPoint};
use hl_models::accuracy::PruningConfig;
use hl_sim::network::{LayerEval, NetworkEval};
use hl_sim::EvalResult;
use hl_sparsity::{Gh, HssPattern};
use hl_tensor::GemmShape;

use crate::json::Json;

/// Largest accepted GEMM dimension (the analytical models are closed-form,
/// but keep request shapes sane).
pub const MAX_DIM: usize = 1 << 26;

/// Largest accepted dense MAC count `m·k·n` (2⁵³, the last f64-exact
/// integer): per-dimension caps alone would let the product overflow the
/// `u64` MAC arithmetic and serve garbage results.
pub const MAX_MACS: u128 = 1 << 53;

/// Largest accepted sparsity degree (HighLight's co-design family tops out
/// at 93.75%; leave headroom without allowing degenerate fully-empty
/// operands).
pub const MAX_DEGREE: f64 = 0.99;

/// Largest accepted `/v1/search` accuracy-loss budget in metric points (a
/// whole top-1 / BLEU scale — anything above means "unconstrained").
pub const MAX_BUDGET: f64 = 100.0;

/// Hard server-side cap on `/v1/sweep` result rows; requests may lower it
/// with `"limit"` but never raise it.
pub const MAX_SWEEP_ROWS: usize = 256;

/// Largest accepted `/v1/evaluate_model` HSS group size (product of the
/// per-rank `H` values): the co-design families top out at 32, and the
/// accuracy surrogate synthesizes (and caches) group-aligned weight
/// matrices, so the group size bounds per-request memory.
pub const MAX_GROUP_SIZE: usize = 64;

/// Largest accepted per-request `deadline_ms` (one hour — beyond that a
/// deadline stops being a deadline).
pub const MAX_DEADLINE_MS: u64 = 3_600_000;

/// Why a request body failed schema validation (`thiserror` idiom:
/// structured variants, hand-written `Display`, `std::error::Error`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The body is not valid UTF-8.
    NotUtf8,
    /// The body is not valid JSON (carries the codec's message).
    BadJson(String),
    /// The body (or a sub-value) is not a JSON object where one is
    /// required.
    NotAnObject,
    /// A required field is absent.
    Missing {
        /// The missing field.
        field: &'static str,
    },
    /// A field holds the wrong JSON type.
    WrongType {
        /// The offending field (quoted in the message).
        field: String,
        /// What the schema expects, e.g. `"a string"`.
        expected: &'static str,
    },
    /// A field the endpoint's schema does not define.
    UnknownField {
        /// The offending field.
        field: String,
        /// Comma-joined list of the fields the schema accepts.
        allowed: String,
    },
    /// A well-typed value that fails a semantic constraint (range,
    /// cardinality, grammar); the message is complete and user-facing.
    Invalid {
        /// The full validation message.
        message: String,
    },
}

impl SchemaError {
    fn invalid(message: impl Into<String>) -> Self {
        Self::Invalid {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotUtf8 => f.write_str("request body is not valid UTF-8"),
            Self::BadJson(msg) => f.write_str(msg),
            Self::NotAnObject => f.write_str("request body must be a JSON object"),
            Self::Missing { field } => write!(f, "missing required field {field:?}"),
            Self::WrongType { field, expected } => write!(f, "{field:?} must be {expected}"),
            Self::UnknownField { field, allowed } => {
                write!(f, "unknown field {field:?}; allowed: {allowed}")
            }
            Self::Invalid { message } => f.write_str(message),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Declarative field extraction over one JSON object: construction
/// rejects non-objects and unknown fields, accessors reject wrong types
/// and missing required fields — every wire struct's `from_json` is a
/// straight-line sequence of these calls.
pub struct ObjReader<'a> {
    members: &'a [(String, Json)],
}

impl<'a> ObjReader<'a> {
    /// Wraps `v`, rejecting non-objects and any field outside `allowed`.
    ///
    /// # Errors
    /// [`SchemaError::NotAnObject`] / [`SchemaError::UnknownField`].
    pub fn over(v: &'a Json, allowed: &[&str]) -> Result<Self, SchemaError> {
        let Json::Obj(members) = v else {
            return Err(SchemaError::NotAnObject);
        };
        for (k, _) in members {
            if !allowed.contains(&k.as_str()) {
                return Err(SchemaError::UnknownField {
                    field: k.clone(),
                    allowed: allowed.join(", "),
                });
            }
        }
        Ok(Self { members })
    }

    /// The raw field, if present.
    pub fn get(&self, key: &str) -> Option<&'a Json> {
        self.members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A required field of any type.
    ///
    /// # Errors
    /// [`SchemaError::Missing`].
    pub fn req(&self, key: &'static str) -> Result<&'a Json, SchemaError> {
        self.get(key).ok_or(SchemaError::Missing { field: key })
    }

    /// A required string field.
    ///
    /// # Errors
    /// [`SchemaError::Missing`] / [`SchemaError::WrongType`].
    pub fn req_str(&self, key: &'static str) -> Result<&'a str, SchemaError> {
        self.req(key)?.as_str().ok_or(SchemaError::WrongType {
            field: key.into(),
            expected: "a string",
        })
    }

    /// A required numeric field.
    ///
    /// # Errors
    /// [`SchemaError::Missing`] / [`SchemaError::WrongType`].
    pub fn req_f64(&self, key: &'static str) -> Result<f64, SchemaError> {
        self.req(key)?.as_f64().ok_or(SchemaError::WrongType {
            field: key.into(),
            expected: "a number",
        })
    }

    /// An optional numeric field.
    ///
    /// # Errors
    /// [`SchemaError::WrongType`] when present but not a number.
    pub fn opt_f64(&self, key: &'static str) -> Result<Option<f64>, SchemaError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v.as_f64().map(Some).ok_or(SchemaError::WrongType {
                field: key.into(),
                expected: "a number",
            }),
        }
    }
}

/// Parses a request body into JSON: UTF-8, JSON syntax, and the
/// "top level must be an object" rule (empty bodies included).
///
/// # Errors
/// [`SchemaError::NotUtf8`] / [`SchemaError::BadJson`] /
/// [`SchemaError::NotAnObject`].
pub fn parse_body_json(body: &[u8]) -> Result<Json, SchemaError> {
    let text = std::str::from_utf8(body).map_err(|_| SchemaError::NotUtf8)?;
    if text.trim().is_empty() {
        return Err(SchemaError::NotAnObject);
    }
    let v = Json::parse(text).map_err(|e| SchemaError::BadJson(e.to_string()))?;
    if !matches!(v, Json::Obj(_)) {
        return Err(SchemaError::NotAnObject);
    }
    Ok(v)
}

/// Validates one GEMM dimension-ish integer field (also used for
/// `"limit"`): a non-negative integer no larger than [`MAX_DIM`].
fn int_field(reader: &ObjReader<'_>, key: &'static str) -> Result<Option<usize>, SchemaError> {
    let Some(n) = reader.opt_f64(key)? else {
        return Ok(None);
    };
    if n.fract() != 0.0 || n < 0.0 || n > MAX_DIM as f64 {
        return Err(SchemaError::invalid(format!(
            "{key:?} must be an integer in [0, {MAX_DIM}], got {n}"
        )));
    }
    Ok(Some(n as usize))
}

/// Resolves the optional `m`/`k`/`n` fields (default 1024 each) and
/// enforces the dense-MAC product cap.
fn shape_fields(reader: &ObjReader<'_>) -> Result<GemmShape, SchemaError> {
    let mut dims = [1024usize; 3];
    for (i, key) in ["m", "k", "n"].into_iter().enumerate() {
        if let Some(n) = int_field(reader, key)? {
            if n == 0 {
                return Err(SchemaError::invalid(format!("{key:?} must be at least 1")));
            }
            dims[i] = n;
        }
    }
    let macs = dims.iter().map(|&d| d as u128).product::<u128>();
    if macs > MAX_MACS {
        return Err(SchemaError::invalid(format!(
            "m*k*n = {macs} dense MACs exceeds the {MAX_MACS} limit"
        )));
    }
    Ok(GemmShape::new(dims[0], dims[1], dims[2]))
}

fn check_degree(n: f64, key: &str) -> Result<f64, SchemaError> {
    if !(0.0..=MAX_DEGREE).contains(&n) {
        return Err(SchemaError::invalid(format!(
            "{key:?} must be a sparsity degree in [0, {MAX_DEGREE}], got {n}"
        )));
    }
    Ok(n)
}

fn degree_field(reader: &ObjReader<'_>, key: &'static str) -> Result<f64, SchemaError> {
    match reader.opt_f64(key)? {
        None => Ok(0.0),
        Some(n) => check_degree(n, key),
    }
}

/// Validates the optional `deadline_ms` field every POST wire type
/// accepts: a non-negative integer number of milliseconds the client is
/// willing to wait. Work still queued past the deadline is shed with a
/// 503 instead of being evaluated (see `crate::server`). `0` is legal
/// and means "already expired" — useful for probing the shed path.
fn deadline_field(reader: &ObjReader<'_>) -> Result<Option<u64>, SchemaError> {
    let Some(n) = reader.opt_f64("deadline_ms")? else {
        return Ok(None);
    };
    if n.fract() != 0.0 || n < 0.0 || n > MAX_DEADLINE_MS as f64 {
        return Err(SchemaError::invalid(format!(
            "\"deadline_ms\" must be an integer in [0, {MAX_DEADLINE_MS}], got {n}"
        )));
    }
    Ok(Some(n as u64))
}

/// Appends `deadline_ms` to a canonical encoding only when present —
/// requests without a deadline encode byte-identically to the pre-
/// deadline wire format.
fn push_deadline(members: &mut Vec<(String, Json)>, deadline_ms: Option<u64>) {
    if let Some(ms) = deadline_ms {
        members.push(("deadline_ms".into(), Json::Num(ms as f64)));
    }
}

fn shape_members(shape: GemmShape) -> [(String, Json); 3] {
    [
        ("m".into(), Json::Num(shape.m as f64)),
        ("k".into(), Json::Num(shape.k as f64)),
        ("n".into(), Json::Num(shape.n as f64)),
    ]
}

/// `POST /v1/evaluate`: one `(design, shape, sparsity-degree)` cell.
/// Optional wire fields arrive resolved (`shape` defaults to 1024³,
/// degrees to dense 0.0).
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluateRequest {
    /// Registered design name (existence is checked by the handler — the
    /// schema layer owns shapes, not registries).
    pub design: String,
    /// GEMM dimensions.
    pub shape: GemmShape,
    /// Operand A target sparsity degree in `[0, MAX_DEGREE]`.
    pub a_sparsity: f64,
    /// Operand B target sparsity degree in `[0, MAX_DEGREE]`.
    pub b_sparsity: f64,
    /// Optional per-request deadline in milliseconds (absent → the
    /// server's `--default-deadline`, if any).
    pub deadline_ms: Option<u64>,
}

impl EvaluateRequest {
    /// The fields this wire type accepts.
    pub const FIELDS: &'static [&'static str] = &[
        "design",
        "m",
        "k",
        "n",
        "a_sparsity",
        "b_sparsity",
        "deadline_ms",
    ];

    /// Parses from a request body.
    ///
    /// # Errors
    /// Any [`SchemaError`].
    pub fn from_body(body: &[u8]) -> Result<Self, SchemaError> {
        Self::from_json(&parse_body_json(body)?)
    }

    /// Parses from a JSON value; inverse of [`EvaluateRequest::to_json`].
    ///
    /// # Errors
    /// Any [`SchemaError`].
    pub fn from_json(v: &Json) -> Result<Self, SchemaError> {
        let reader = ObjReader::over(v, Self::FIELDS)?;
        Ok(Self {
            design: reader.req_str("design")?.to_string(),
            shape: shape_fields(&reader)?,
            a_sparsity: degree_field(&reader, "a_sparsity")?,
            b_sparsity: degree_field(&reader, "b_sparsity")?,
            deadline_ms: deadline_field(&reader)?,
        })
    }

    /// The canonical wire encoding (all fields explicit; the deadline
    /// stays absent when unset).
    pub fn to_json(&self) -> Json {
        let mut members = vec![("design".into(), Json::str(&self.design))];
        members.extend(shape_members(self.shape));
        members.push(("a_sparsity".into(), Json::Num(self.a_sparsity)));
        members.push(("b_sparsity".into(), Json::Num(self.b_sparsity)));
        push_deadline(&mut members, self.deadline_ms);
        Json::Obj(members)
    }
}

/// `POST /v1/evaluate_model`: a design × model × pruning-config cell.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluateModelRequest {
    /// Registered design name.
    pub design: String,
    /// Registered model name.
    pub model: String,
    /// Weight-pruning configuration (absent on the wire → dense).
    pub pruning: PruningConfig,
    /// Optional per-request deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl EvaluateModelRequest {
    /// The fields this wire type accepts.
    pub const FIELDS: &'static [&'static str] = &["design", "model", "pruning", "deadline_ms"];

    /// Parses from a request body.
    ///
    /// # Errors
    /// Any [`SchemaError`].
    pub fn from_body(body: &[u8]) -> Result<Self, SchemaError> {
        Self::from_json(&parse_body_json(body)?)
    }

    /// Parses from a JSON value; inverse of
    /// [`EvaluateModelRequest::to_json`].
    ///
    /// # Errors
    /// Any [`SchemaError`].
    pub fn from_json(v: &Json) -> Result<Self, SchemaError> {
        let reader = ObjReader::over(v, Self::FIELDS)?;
        Ok(Self {
            design: reader.req_str("design")?.to_string(),
            model: reader.req_str("model")?.to_string(),
            pruning: pruning_spec(reader.get("pruning"))?,
            deadline_ms: deadline_field(&reader)?,
        })
    }

    /// The canonical wire encoding (all fields explicit; the deadline
    /// stays absent when unset).
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("design".into(), Json::str(&self.design)),
            ("model".into(), Json::str(&self.model)),
            ("pruning".into(), pruning_spec_json(&self.pruning)),
        ];
        push_deadline(&mut members, self.deadline_ms);
        Json::Obj(members)
    }
}

/// `POST /v1/search`: co-design search under an accuracy-loss budget.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    /// Registered design name.
    pub design: String,
    /// Registered model name.
    pub model: String,
    /// Accuracy-loss budget in metric points, `[0, MAX_BUDGET]`.
    pub budget: f64,
    /// Optional per-request deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl SearchRequest {
    /// The fields this wire type accepts.
    pub const FIELDS: &'static [&'static str] = &["design", "model", "budget", "deadline_ms"];

    /// Parses from a request body.
    ///
    /// # Errors
    /// Any [`SchemaError`].
    pub fn from_body(body: &[u8]) -> Result<Self, SchemaError> {
        Self::from_json(&parse_body_json(body)?)
    }

    /// Parses from a JSON value; inverse of [`SearchRequest::to_json`].
    ///
    /// # Errors
    /// Any [`SchemaError`].
    pub fn from_json(v: &Json) -> Result<Self, SchemaError> {
        let reader = ObjReader::over(v, Self::FIELDS)?;
        let budget = reader.req_f64("budget")?;
        if !(0.0..=MAX_BUDGET).contains(&budget) {
            return Err(SchemaError::invalid(format!(
                "\"budget\" must be an accuracy-loss budget in [0, {MAX_BUDGET}] \
                 metric points, got {budget}"
            )));
        }
        Ok(Self {
            design: reader.req_str("design")?.to_string(),
            model: reader.req_str("model")?.to_string(),
            budget,
            deadline_ms: deadline_field(&reader)?,
        })
    }

    /// The canonical wire encoding (the deadline stays absent when
    /// unset).
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("design".into(), Json::str(&self.design)),
            ("model".into(), Json::str(&self.model)),
            ("budget".into(), Json::Num(self.budget)),
        ];
        push_deadline(&mut members, self.deadline_ms);
        Json::Obj(members)
    }
}

/// `POST /v1/sweep`: a sparsity-degree grid over a design set. `None`
/// keeps a wire field absent — the handler resolves registry-dependent
/// defaults (all designs, the Fig. 13 degrees), which the schema layer
/// deliberately does not know about.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Design names (absent → every registered design).
    pub designs: Option<Vec<String>>,
    /// Operand A sparsity degrees (absent → the Fig. 13 ladder).
    pub a_degrees: Option<Vec<f64>>,
    /// Operand B sparsity degrees (absent → the Fig. 13 ladder).
    pub b_degrees: Option<Vec<f64>>,
    /// GEMM dimensions.
    pub shape: GemmShape,
    /// Requested row cap (absent → the server-side maximum; the handler
    /// clamps to [`MAX_SWEEP_ROWS`] either way).
    pub limit: Option<usize>,
    /// Optional per-request deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl SweepRequest {
    /// The fields this wire type accepts.
    pub const FIELDS: &'static [&'static str] = &[
        "designs",
        "a_degrees",
        "b_degrees",
        "m",
        "k",
        "n",
        "limit",
        "deadline_ms",
    ];

    /// Parses from a request body.
    ///
    /// # Errors
    /// Any [`SchemaError`].
    pub fn from_body(body: &[u8]) -> Result<Self, SchemaError> {
        Self::from_json(&parse_body_json(body)?)
    }

    /// Parses from a JSON value; inverse of [`SweepRequest::to_json`].
    ///
    /// # Errors
    /// Any [`SchemaError`].
    pub fn from_json(v: &Json) -> Result<Self, SchemaError> {
        let reader = ObjReader::over(v, Self::FIELDS)?;
        let designs = match reader.get("designs") {
            None => None,
            Some(v) => {
                let arr = v.as_arr().ok_or(SchemaError::WrongType {
                    field: "designs".into(),
                    expected: "an array",
                })?;
                if arr.is_empty() {
                    return Err(SchemaError::invalid("\"designs\" must not be empty"));
                }
                Some(
                    arr.iter()
                        .map(|d| {
                            d.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| SchemaError::invalid("design names must be strings"))
                        })
                        .collect::<Result<_, _>>()?,
                )
            }
        };
        let limit = match int_field(&reader, "limit")? {
            None => None,
            Some(0) => return Err(SchemaError::invalid("\"limit\" must be at least 1")),
            Some(n) => Some(n),
        };
        Ok(Self {
            designs,
            a_degrees: degrees_field(&reader, "a_degrees")?,
            b_degrees: degrees_field(&reader, "b_degrees")?,
            shape: shape_fields(&reader)?,
            limit,
            deadline_ms: deadline_field(&reader)?,
        })
    }

    /// The canonical wire encoding (optional fields stay absent).
    pub fn to_json(&self) -> Json {
        let mut members = Vec::new();
        if let Some(designs) = &self.designs {
            members.push((
                "designs".into(),
                Json::Arr(designs.iter().map(Json::str).collect()),
            ));
        }
        for (key, degrees) in [
            ("a_degrees", &self.a_degrees),
            ("b_degrees", &self.b_degrees),
        ] {
            if let Some(degrees) = degrees {
                members.push((
                    key.into(),
                    Json::Arr(degrees.iter().map(|&d| Json::Num(d)).collect()),
                ));
            }
        }
        members.extend(shape_members(self.shape));
        if let Some(limit) = self.limit {
            members.push(("limit".into(), Json::Num(limit as f64)));
        }
        push_deadline(&mut members, self.deadline_ms);
        Json::Obj(members)
    }
}

fn degrees_field(
    reader: &ObjReader<'_>,
    key: &'static str,
) -> Result<Option<Vec<f64>>, SchemaError> {
    match reader.get(key) {
        None => Ok(None),
        Some(v) => {
            let arr = v.as_arr().ok_or(SchemaError::WrongType {
                field: key.into(),
                expected: "an array",
            })?;
            if arr.is_empty() {
                return Err(SchemaError::invalid(format!("{key:?} must not be empty")));
            }
            arr.iter()
                .map(|d| {
                    check_degree(
                        d.as_f64().ok_or_else(|| {
                            SchemaError::invalid(format!("{key:?} entries must be numbers"))
                        })?,
                        key,
                    )
                })
                .collect::<Result<_, _>>()
                .map(Some)
        }
    }
}

/// Parses the `"pruning"` wire field into a [`PruningConfig`]: absent or
/// `"dense"` → no pruning, `{"unstructured": degree}` → unstructured
/// magnitude pruning, `{"hss": [[g, h], ...]}` → an HSS pattern,
/// outermost rank first. Inverse of [`pruning_spec_json`].
///
/// # Errors
/// [`SchemaError::Invalid`] with a complete grammar/range message.
pub fn pruning_spec(v: Option<&Json>) -> Result<PruningConfig, SchemaError> {
    let Some(v) = v else {
        return Ok(PruningConfig::Dense);
    };
    if let Some(s) = v.as_str() {
        if s == "dense" {
            return Ok(PruningConfig::Dense);
        }
        return Err(SchemaError::invalid(format!(
            "\"pruning\" string must be \"dense\", got {s:?}"
        )));
    }
    let Json::Obj(members) = v else {
        return Err(SchemaError::invalid(
            "\"pruning\" must be \"dense\", {\"unstructured\": degree}, \
             or {\"hss\": [[g, h], ...]}",
        ));
    };
    match members.as_slice() {
        [(key, value)] if key == "unstructured" => {
            let degree = value
                .as_f64()
                .ok_or_else(|| SchemaError::invalid("\"pruning.unstructured\" must be a number"))?;
            // Pruning configs accept the full [0, 1] range — including the
            // fully-pruned 1.0 extreme, which the hardened designs answer
            // with per-layer `Unsupported` outcomes rather than a panic.
            if !(0.0..=1.0).contains(&degree) {
                return Err(SchemaError::invalid(format!(
                    "\"pruning.unstructured\" must be a sparsity degree in [0, 1], got {degree}"
                )));
            }
            Ok(PruningConfig::Unstructured { sparsity: degree })
        }
        [(key, value)] if key == "hss" => {
            let ranks = value
                .as_arr()
                .ok_or_else(|| SchemaError::invalid("\"pruning.hss\" must be an array"))?;
            if ranks.is_empty() || ranks.len() > 3 {
                return Err(SchemaError::invalid(
                    "\"pruning.hss\" must hold 1 to 3 [g, h] ranks",
                ));
            }
            let mut ghs = Vec::new();
            for rank in ranks {
                let pair = rank.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                    SchemaError::invalid("\"pruning.hss\" ranks must be [g, h] pairs")
                })?;
                let g = gh_component(&pair[0])?;
                let h = gh_component(&pair[1])?;
                // The typed core validation (density > 1, division by
                // zero) maps straight to a 400 here.
                ghs.push(Gh::try_new(g, h).map_err(|e| SchemaError::invalid(e.to_string()))?);
            }
            let pattern = HssPattern::new(ghs);
            // The group size (product of the per-rank H values) bounds the
            // weight-matrix columns the accuracy surrogate synthesizes and
            // retains in the long-lived cache; unbounded, one request could
            // pin gigabytes. Real co-design families top out at 32.
            if pattern.group_size() > MAX_GROUP_SIZE {
                return Err(SchemaError::invalid(format!(
                    "\"pruning.hss\" group size (product of H values) must \
                     not exceed {MAX_GROUP_SIZE}, got {}",
                    pattern.group_size()
                )));
            }
            Ok(PruningConfig::Hss(pattern))
        }
        _ => Err(SchemaError::invalid(
            "\"pruning\" must hold exactly one of \"unstructured\" or \"hss\"",
        )),
    }
}

fn gh_component(v: &Json) -> Result<u32, SchemaError> {
    let n = v
        .as_f64()
        .ok_or_else(|| SchemaError::invalid("\"pruning.hss\" entries must be numbers"))?;
    if n.fract() != 0.0 || !(1.0..=64.0).contains(&n) {
        return Err(SchemaError::invalid(format!(
            "G:H components must be integers in [1, 64], got {n}"
        )));
    }
    Ok(n as u32)
}

/// The canonical wire encoding of a [`PruningConfig`]; inverse of
/// [`pruning_spec`].
pub fn pruning_spec_json(config: &PruningConfig) -> Json {
    match config {
        PruningConfig::Dense => Json::str("dense"),
        PruningConfig::Unstructured { sparsity } => {
            Json::Obj(vec![("unstructured".into(), Json::Num(*sparsity))])
        }
        PruningConfig::Hss(pattern) => Json::Obj(vec![(
            "hss".into(),
            Json::Arr(
                pattern
                    .ranks()
                    .iter()
                    .map(|gh| {
                        Json::Arr(vec![Json::Num(f64::from(gh.g)), Json::Num(f64::from(gh.h))])
                    })
                    .collect(),
            ),
        )]),
    }
}

/// The canonical JSON view of a [`GemmShape`].
pub fn shape_json(shape: GemmShape) -> Json {
    Json::Obj(shape_members(shape).into())
}

/// The canonical JSON view of one [`EvalResult`] — shared by
/// `/v1/evaluate`, `/v1/sweep`, and the offline byte-identity acceptance
/// test.
pub fn eval_result_json(r: &EvalResult) -> Json {
    Json::Obj(vec![
        ("design".into(), Json::str(&r.design)),
        ("workload".into(), Json::str(&r.workload)),
        ("cycles".into(), Json::Num(r.cycles)),
        ("latency_s".into(), Json::Num(r.latency_s())),
        ("energy_j".into(), Json::Num(r.energy_j())),
        ("edp".into(), Json::Num(r.edp())),
        (
            "energy_pj".into(),
            Json::Obj(
                r.energy
                    .iter()
                    .map(|(c, pj)| (c.label().to_string(), Json::Num(pj)))
                    .collect(),
            ),
        ),
    ])
}

/// The canonical JSON view of one [`NetworkEval`] — shared by
/// `/v1/evaluate_model` and the offline byte-identity acceptance test:
/// per-layer breakdowns (each with its [`EvalResult`] or the unsupported
/// reason) plus aggregate totals (`null` when any layer cannot run).
pub fn network_eval_json(eval: &NetworkEval) -> Json {
    let layers: Vec<Json> = eval.layers.iter().map(layer_eval_json).collect();
    let totals = match (
        eval.cycles(),
        eval.energy_j(),
        eval.latency_s(),
        eval.edp(),
        eval.ed2(),
        eval.utilization(),
    ) {
        (Some(cycles), Some(energy_j), Some(latency_s), Some(edp), Some(ed2), Some(u)) => {
            Json::Obj(vec![
                ("cycles".into(), Json::Num(cycles)),
                ("latency_s".into(), Json::Num(latency_s)),
                ("energy_j".into(), Json::Num(energy_j)),
                ("edp".into(), Json::Num(edp)),
                ("ed2".into(), Json::Num(ed2)),
                ("utilization".into(), Json::Num(u)),
            ])
        }
        _ => Json::Null,
    };
    Json::Obj(vec![
        ("design".into(), Json::str(&eval.design)),
        ("network".into(), Json::str(&eval.network)),
        ("supported".into(), Json::Bool(eval.supported())),
        ("layers".into(), Json::Arr(layers)),
        ("totals".into(), totals),
    ])
}

fn layer_eval_json(layer: &LayerEval) -> Json {
    let mut members = vec![
        ("name".into(), Json::str(layer.name())),
        ("count".into(), Json::Num(f64::from(layer.count))),
        ("shape".into(), shape_json(layer.workload.shape)),
        ("a".into(), Json::str(layer.workload.a.to_string())),
        ("b".into(), Json::str(layer.workload.b.to_string())),
    ];
    match &layer.outcome {
        Ok(result) => {
            members.push(("supported".into(), Json::Bool(true)));
            members.push(("result".into(), eval_result_json(result)));
        }
        Err(unsupported) => {
            members.push(("supported".into(), Json::Bool(false)));
            members.push(("reason".into(), Json::str(unsupported.to_string())));
        }
    }
    Json::Obj(members)
}

/// The canonical JSON view of one co-design [`SearchOutcome`] — shared by
/// `POST /v1/search` and the offline byte-identity acceptance test, so
/// the served response and the `codesign` search agree byte for byte.
pub fn search_outcome_json(outcome: &SearchOutcome) -> Json {
    let points: Vec<Json> = outcome.points.iter().map(search_point_json).collect();
    Json::Obj(vec![
        ("design".into(), Json::str(&outcome.design)),
        ("model".into(), Json::str(&outcome.model)),
        ("metric".into(), Json::str(outcome.metric)),
        ("budget".into(), Json::Num(outcome.budget)),
        ("candidates".into(), Json::Num(outcome.candidates as f64)),
        ("unsupported".into(), Json::Num(outcome.unsupported as f64)),
        (
            "front".into(),
            Json::Arr(
                outcome
                    .points
                    .iter()
                    .filter(|p| p.on_front)
                    .map(search_point_json)
                    .collect(),
            ),
        ),
        (
            "best".into(),
            outcome.best_point().map_or(Json::Null, search_point_json),
        ),
        ("points".into(), Json::Arr(points)),
    ])
}

fn search_point_json(p: &SearchPoint) -> Json {
    Json::Obj(vec![
        ("config".into(), Json::str(&p.label)),
        ("weight_sparsity".into(), Json::Num(p.weight_sparsity)),
        ("loss".into(), Json::Num(p.loss)),
        ("edp".into(), Json::Num(p.edp)),
        ("energy_j".into(), Json::Num(p.energy_j)),
        ("latency_s".into(), Json::Num(p.latency_s)),
        ("on_front".into(), Json::Bool(p.on_front)),
        ("within_budget".into(), Json::Bool(p.within_budget)),
    ])
}

/// The structured error wire type: every 4xx/5xx response body is
/// `{"error": {"code": …, "message": …}}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorBody {
    /// Stable machine-readable code (see [`error_code`]).
    pub code: String,
    /// Human-readable message.
    pub message: String,
}

impl ErrorBody {
    /// The error body for a status code and message.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            code: error_code(status).into(),
            message: message.into(),
        }
    }

    /// Parses from a response body; inverse of [`ErrorBody::to_json`].
    ///
    /// # Errors
    /// [`SchemaError`] when the body is not a structured error object.
    pub fn from_json(v: &Json) -> Result<Self, SchemaError> {
        let err = v
            .get("error")
            .ok_or(SchemaError::Missing { field: "error" })?;
        let reader = ObjReader::over(err, &["code", "message"])?;
        Ok(Self {
            code: reader.req_str("code")?.to_string(),
            message: reader.req_str("message")?.to_string(),
        })
    }

    /// The canonical wire encoding.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![(
            "error".into(),
            Json::Obj(vec![
                ("code".into(), Json::str(&self.code)),
                ("message".into(), Json::str(&self.message)),
            ]),
        )])
    }
}

/// Stable machine-readable code for each status the server emits.
pub fn error_code(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        408 => "timeout",
        411 => "length_required",
        413 => "payload_too_large",
        422 => "unprocessable",
        431 => "headers_too_large",
        500 => "internal",
        503 => "overloaded",
        505 => "http_version_unsupported",
        _ => "error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_round_trips_and_defaults() {
        let v = Json::parse(r#"{"design":"HighLight","a_sparsity":0.5}"#).unwrap();
        let req = EvaluateRequest::from_json(&v).unwrap();
        assert_eq!(req.design, "HighLight");
        assert_eq!(req.shape, GemmShape::new(1024, 1024, 1024));
        assert_eq!((req.a_sparsity, req.b_sparsity), (0.5, 0.0));
        assert_eq!(EvaluateRequest::from_json(&req.to_json()).unwrap(), req);
    }

    #[test]
    fn schema_error_messages_are_stable() {
        for (body, needle) in [
            ("", "JSON object"),
            ("[1,2]", "JSON object"),
            ("{\"design\":\"TC\"", "invalid JSON"),
            ("{}", "missing required field"),
            (r#"{"design":42}"#, "\"design\" must be a string"),
            (r#"{"design":"TC","bogus":1}"#, "unknown field"),
            (r#"{"design":"TC","a_sparsity":1.5}"#, "sparsity degree"),
            (r#"{"design":"TC","m":0}"#, "at least 1"),
            (r#"{"design":"TC","m":2.5}"#, "integer"),
        ] {
            let err = EvaluateRequest::from_body(body.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "{body}: {msg}");
        }
        let bad = vec![0xff, 0xfe];
        assert_eq!(
            EvaluateRequest::from_body(&bad).unwrap_err(),
            SchemaError::NotUtf8
        );
    }

    #[test]
    fn sweep_keeps_optional_fields_absent() {
        let req = SweepRequest::from_body(br#"{"m":64,"k":32,"n":16}"#).unwrap();
        assert_eq!(req.designs, None);
        assert_eq!(req.a_degrees, None);
        assert_eq!(req.limit, None);
        let encoded = req.to_json();
        assert!(encoded.get("designs").is_none());
        assert!(encoded.get("limit").is_none());
        assert_eq!(SweepRequest::from_json(&encoded).unwrap(), req);

        let full = SweepRequest {
            designs: Some(vec!["TC".into(), "HighLight".into()]),
            a_degrees: Some(vec![0.0, 0.5]),
            b_degrees: Some(vec![0.25]),
            shape: GemmShape::new(64, 64, 64),
            limit: Some(7),
            deadline_ms: Some(250),
        };
        assert_eq!(SweepRequest::from_json(&full.to_json()).unwrap(), full);
    }

    #[test]
    fn deadlines_parse_validate_and_stay_absent() {
        // Absent stays absent: the canonical encoding without a deadline
        // is byte-identical to the pre-deadline wire format.
        let v = Json::parse(r#"{"design":"TC"}"#).unwrap();
        let req = EvaluateRequest::from_json(&v).unwrap();
        assert_eq!(req.deadline_ms, None);
        assert!(req.to_json().get("deadline_ms").is_none());

        let v = Json::parse(r#"{"design":"TC","deadline_ms":0}"#).unwrap();
        let req = EvaluateRequest::from_json(&v).unwrap();
        assert_eq!(req.deadline_ms, Some(0), "0 is legal (already expired)");
        assert_eq!(EvaluateRequest::from_json(&req.to_json()).unwrap(), req);

        for body in [
            r#"{"design":"TC","deadline_ms":-1}"#,
            r#"{"design":"TC","deadline_ms":1.5}"#,
            r#"{"design":"TC","deadline_ms":3600001}"#,
            r#"{"design":"TC","deadline_ms":"soon"}"#,
        ] {
            let err = EvaluateRequest::from_body(body.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("deadline_ms"), "{body}: {err}");
        }

        // Every POST wire type accepts the field.
        let model =
            EvaluateModelRequest::from_body(br#"{"design":"TC","model":"x","deadline_ms":5}"#)
                .unwrap();
        assert_eq!(model.deadline_ms, Some(5));
        let search =
            SearchRequest::from_body(br#"{"design":"TC","model":"x","budget":1,"deadline_ms":5}"#)
                .unwrap();
        assert_eq!(search.deadline_ms, Some(5));
        let sweep = SweepRequest::from_body(br#"{"deadline_ms":5}"#).unwrap();
        assert_eq!(sweep.deadline_ms, Some(5));
    }

    #[test]
    fn pruning_specs_round_trip() {
        for spec in [
            PruningConfig::Dense,
            PruningConfig::Unstructured { sparsity: 0.65 },
            PruningConfig::Hss(HssPattern::two_rank(Gh::new(4, 8), Gh::new(2, 4))),
        ] {
            let wire = pruning_spec_json(&spec);
            assert_eq!(pruning_spec(Some(&wire)).unwrap(), spec);
        }
        assert_eq!(pruning_spec(None).unwrap(), PruningConfig::Dense);
    }

    #[test]
    fn search_budget_is_range_checked() {
        let ok = SearchRequest::from_body(
            br#"{"design":"HighLight","model":"DeiT-small","budget":0.5}"#,
        )
        .unwrap();
        assert_eq!(SearchRequest::from_json(&ok.to_json()).unwrap(), ok);
        for body in [
            r#"{"design":"TC","model":"ResNet50","budget":-1}"#,
            r#"{"design":"TC","model":"ResNet50","budget":101}"#,
        ] {
            let err = SearchRequest::from_body(body.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("accuracy-loss budget"), "{err}");
        }
    }

    #[test]
    fn error_body_round_trips_with_stable_codes() {
        let body = ErrorBody::new(400, "nope");
        assert_eq!(body.code, "bad_request");
        assert_eq!(ErrorBody::from_json(&body.to_json()).unwrap(), body);
        for (status, code) in [(404, "not_found"), (503, "overloaded"), (418, "error")] {
            assert_eq!(error_code(status), code);
        }
    }
}
