//! Deterministic fault-injection plane for the serving core.
//!
//! A [`FaultPlane`] is parsed from a compact spec string (the
//! `HL_FAULTS` environment variable or the `--faults` flag) and threaded
//! through the event loop, the worker pool, and the snapshot loader as
//! an `Option<Arc<FaultPlane>>` — `None` in production, so every
//! injection point collapses to a single branch on an absent option.
//!
//! # Spec grammar
//!
//! Comma-separated `key=value` pairs:
//!
//! ```text
//! seed=42,worker_panic=0.05,conn_read_err=0.01,stall_ms=20,snapshot=bitflip
//! ```
//!
//! | key               | meaning                                          |
//! |-------------------|--------------------------------------------------|
//! | `seed`            | u64 seed for the decision stream (default 0)     |
//! | `conn_read_err`   | P(`ECONNRESET` on a connection read)             |
//! | `conn_read_short` | P(a read is truncated to one byte)               |
//! | `conn_write_err`  | P(`ECONNRESET` on a connection write)            |
//! | `conn_write_short`| P(a write is truncated to one byte)              |
//! | `eintr`           | P(`EINTR` on a connection read or write)         |
//! | `worker_panic`    | P(a worker panics instead of evaluating a job)   |
//! | `worker_stall`    | P(a worker sleeps `stall_ms` before evaluating)  |
//! | `stall_ms`        | stall duration in milliseconds (default 50)      |
//! | `spurious_wake`   | P(the poller reports zero events for a wait)     |
//! | `snapshot`        | `truncate` or `bitflip` the snapshot text on load|
//!
//! # Determinism
//!
//! Each injection point keeps its own draw counter; the decision for
//! draw *n* at point *p* is a pure function of `(seed, p, n)` via a
//! splitmix64 hash. The *set* of faults injected at each point is
//! therefore identical across runs with the same seed and the same
//! per-point draw counts, independent of thread interleaving — which
//! request absorbs which fault may vary, but the failure pressure does
//! not, so a chaos run at a fixed seed is reproducible in aggregate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Named fault-injection points, each with an independent probability
/// and decision stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// `ECONNRESET` surfaced from a connection read.
    ConnReadErr,
    /// A connection read truncated to a single byte.
    ConnReadShort,
    /// `ECONNRESET` surfaced from a connection write.
    ConnWriteErr,
    /// A connection write truncated to a single byte.
    ConnWriteShort,
    /// `EINTR` surfaced from a connection read or write.
    Eintr,
    /// A worker thread panics instead of evaluating its job.
    WorkerPanic,
    /// A worker thread sleeps for [`FaultPlane::stall`] before evaluating.
    WorkerStall,
    /// The poller reports zero ready events for one wait.
    SpuriousWake,
}

impl FaultPoint {
    /// Every injection point, in spec-key order.
    pub const ALL: [FaultPoint; 8] = [
        FaultPoint::ConnReadErr,
        FaultPoint::ConnReadShort,
        FaultPoint::ConnWriteErr,
        FaultPoint::ConnWriteShort,
        FaultPoint::Eintr,
        FaultPoint::WorkerPanic,
        FaultPoint::WorkerStall,
        FaultPoint::SpuriousWake,
    ];

    /// The spec key naming this point.
    pub fn key(self) -> &'static str {
        match self {
            FaultPoint::ConnReadErr => "conn_read_err",
            FaultPoint::ConnReadShort => "conn_read_short",
            FaultPoint::ConnWriteErr => "conn_write_err",
            FaultPoint::ConnWriteShort => "conn_write_short",
            FaultPoint::Eintr => "eintr",
            FaultPoint::WorkerPanic => "worker_panic",
            FaultPoint::WorkerStall => "worker_stall",
            FaultPoint::SpuriousWake => "spurious_wake",
        }
    }

    fn index(self) -> usize {
        FaultPoint::ALL.iter().position(|p| *p == self).unwrap_or(0)
    }
}

/// How to corrupt the snapshot text before parsing it on load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFault {
    /// Drop the second half of the document (a torn write).
    Truncate,
    /// Flip one bit of one seed-chosen byte (silent media corruption).
    BitFlip,
}

const N_POINTS: usize = FaultPoint::ALL.len();
const DEFAULT_STALL_MS: u64 = 50;

/// A seeded, schedule-driven fault plane. See the module docs for the
/// spec grammar and determinism contract.
#[derive(Debug)]
pub struct FaultPlane {
    seed: u64,
    probs: [f64; N_POINTS],
    stall: Duration,
    snapshot: Option<SnapshotFault>,
    draws: [AtomicU64; N_POINTS],
    injected: [AtomicU64; N_POINTS],
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform f64 in [0, 1) using the top 53 bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlane {
    /// Parse a fault spec string. Returns a human-readable error for an
    /// unknown key, an unparsable value, or a probability outside
    /// `[0, 1]`. The empty string is a valid all-zero (inert) plane.
    pub fn parse(spec: &str) -> Result<FaultPlane, String> {
        let mut plane = FaultPlane {
            seed: 0,
            probs: [0.0; N_POINTS],
            stall: Duration::from_millis(DEFAULT_STALL_MS),
            snapshot: None,
            draws: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}`: expected key=value"))?;
            match key {
                "seed" => {
                    plane.seed = value
                        .parse()
                        .map_err(|_| format!("fault spec seed `{value}`: expected u64"))?;
                }
                "stall_ms" => {
                    let ms: u64 = value
                        .parse()
                        .map_err(|_| format!("fault spec stall_ms `{value}`: expected u64"))?;
                    plane.stall = Duration::from_millis(ms);
                }
                "snapshot" => {
                    plane.snapshot = Some(match value {
                        "truncate" => SnapshotFault::Truncate,
                        "bitflip" => SnapshotFault::BitFlip,
                        other => {
                            return Err(format!(
                                "fault spec snapshot `{other}`: expected truncate or bitflip"
                            ));
                        }
                    });
                }
                _ => {
                    let point = FaultPoint::ALL
                        .iter()
                        .find(|p| p.key() == key)
                        .ok_or_else(|| format!("fault spec: unknown key `{key}`"))?;
                    let p: f64 = value
                        .parse()
                        .map_err(|_| format!("fault spec {key} `{value}`: expected probability"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("fault spec {key} `{value}`: must be in [0, 1]"));
                    }
                    plane.probs[point.index()] = p;
                }
            }
        }
        Ok(plane)
    }

    /// Build a plane from the `HL_FAULTS` environment variable.
    /// Returns `None` when the variable is unset or empty; a malformed
    /// spec is an error so typos don't silently disable chaos runs.
    pub fn from_env() -> Result<Option<Arc<FaultPlane>>, String> {
        match std::env::var("HL_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => Ok(Some(Arc::new(FaultPlane::parse(&spec)?))),
            _ => Ok(None),
        }
    }

    /// The seed this plane draws its decision stream from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draw the next decision for `point`: true means inject the fault.
    /// Each call advances that point's draw counter.
    pub fn fire(&self, point: FaultPoint) -> bool {
        let i = point.index();
        let p = self.probs[i];
        if p <= 0.0 {
            return false;
        }
        let n = self.draws[i].fetch_add(1, Ordering::Relaxed);
        // Salt the point index into the high bits so the streams of
        // different points at the same seed are independent.
        let h = splitmix64(self.seed ^ ((i as u64 + 1) << 56) ^ n);
        let hit = p >= 1.0 || unit(h) < p;
        if hit {
            self.injected[i].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// How long [`FaultPoint::WorkerStall`] sleeps when it fires.
    pub fn stall(&self) -> Duration {
        self.stall
    }

    /// The configured snapshot corruption mode, if any.
    pub fn snapshot_fault(&self) -> Option<SnapshotFault> {
        self.snapshot
    }

    /// Corrupt snapshot text in place per the configured mode. Returns
    /// true when the text was modified (a no-op without a `snapshot=`
    /// key or on an empty document).
    pub fn corrupt_snapshot(&self, text: &mut String) -> bool {
        let Some(mode) = self.snapshot else {
            return false;
        };
        if text.is_empty() {
            return false;
        }
        match mode {
            SnapshotFault::Truncate => {
                let cut = text.len() / 2;
                // Back off to a char boundary; snapshot text is ASCII
                // in practice but a torn write must not split a char.
                let cut = (0..=cut)
                    .rev()
                    .find(|&i| text.is_char_boundary(i))
                    .unwrap_or(0);
                text.truncate(cut);
            }
            SnapshotFault::BitFlip => {
                let mut bytes = std::mem::take(text).into_bytes();
                let i = splitmix64(self.seed ^ 0x5EED_5EED) as usize % bytes.len();
                // Flip a low bit that keeps ASCII bytes ASCII, so the
                // corrupted document is still valid UTF-8.
                bytes[i] ^= if bytes[i] < 0x70 { 0x10 } else { 0x01 };
                *text = String::from_utf8_lossy(&bytes).into_owned();
            }
        }
        true
    }

    /// How many times `point` has fired so far.
    pub fn injected(&self, point: FaultPoint) -> u64 {
        self.injected[point.index()].load(Ordering::Relaxed)
    }

    /// Total faults injected across every point.
    pub fn injected_total(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_inert() {
        let plane = FaultPlane::parse("").expect("empty spec parses");
        for point in FaultPoint::ALL {
            for _ in 0..100 {
                assert!(!plane.fire(point), "{} fired at p=0", point.key());
            }
        }
        assert_eq!(plane.injected_total(), 0);
    }

    #[test]
    fn probability_one_always_fires() {
        let plane = FaultPlane::parse("seed=7,worker_panic=1.0").expect("spec parses");
        for _ in 0..50 {
            assert!(plane.fire(FaultPoint::WorkerPanic));
        }
        assert_eq!(plane.injected(FaultPoint::WorkerPanic), 50);
        assert!(!plane.fire(FaultPoint::WorkerStall));
    }

    #[test]
    fn decision_stream_is_deterministic_per_seed() {
        let spec = "seed=42,conn_read_err=0.3,worker_panic=0.1";
        let a = FaultPlane::parse(spec).expect("spec parses");
        let b = FaultPlane::parse(spec).expect("spec parses");
        for _ in 0..500 {
            assert_eq!(
                a.fire(FaultPoint::ConnReadErr),
                b.fire(FaultPoint::ConnReadErr)
            );
            assert_eq!(
                a.fire(FaultPoint::WorkerPanic),
                b.fire(FaultPoint::WorkerPanic)
            );
        }
        assert_eq!(
            a.injected(FaultPoint::ConnReadErr),
            b.injected(FaultPoint::ConnReadErr)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlane::parse("seed=1,conn_read_err=0.5").expect("spec parses");
        let b = FaultPlane::parse("seed=2,conn_read_err=0.5").expect("spec parses");
        let stream = |plane: &FaultPlane| -> Vec<bool> {
            (0..64)
                .map(|_| plane.fire(FaultPoint::ConnReadErr))
                .collect()
        };
        assert_ne!(stream(&a), stream(&b));
    }

    #[test]
    fn probabilities_land_near_target() {
        let plane = FaultPlane::parse("seed=9,eintr=0.25").expect("spec parses");
        let hits = (0..10_000)
            .filter(|_| plane.fire(FaultPoint::Eintr))
            .count();
        assert!((2000..3000).contains(&hits), "25% of 10k draws, got {hits}");
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(FaultPlane::parse("bogus=1").is_err());
        assert!(FaultPlane::parse("worker_panic=1.5").is_err());
        assert!(FaultPlane::parse("worker_panic=-0.1").is_err());
        assert!(FaultPlane::parse("worker_panic").is_err());
        assert!(FaultPlane::parse("seed=nope").is_err());
        assert!(FaultPlane::parse("snapshot=shred").is_err());
    }

    #[test]
    fn stall_and_snapshot_modes_parse() {
        let plane =
            FaultPlane::parse("stall_ms=120,snapshot=truncate,worker_stall=1").expect("parses");
        assert_eq!(plane.stall(), Duration::from_millis(120));
        assert_eq!(plane.snapshot_fault(), Some(SnapshotFault::Truncate));
        assert!(plane.fire(FaultPoint::WorkerStall));
    }

    #[test]
    fn truncate_halves_the_text() {
        let plane = FaultPlane::parse("snapshot=truncate").expect("parses");
        let mut text = "{\"format\":2,\"entries\":[1,2,3]}".to_string();
        let orig = text.clone();
        assert!(plane.corrupt_snapshot(&mut text));
        assert_eq!(text.len(), orig.len() / 2);
        assert!(orig.starts_with(&text));
    }

    #[test]
    fn bitflip_changes_exactly_one_byte() {
        let plane = FaultPlane::parse("seed=3,snapshot=bitflip").expect("parses");
        let orig = "{\"format\":2,\"crc32\":\"deadbeef\",\"entries\":[]}".to_string();
        let mut text = orig.clone();
        assert!(plane.corrupt_snapshot(&mut text));
        assert_eq!(text.len(), orig.len());
        let diffs = orig
            .bytes()
            .zip(text.bytes())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn corruption_without_mode_is_a_no_op() {
        let plane = FaultPlane::parse("worker_panic=1").expect("parses");
        let mut text = "{\"format\":2}".to_string();
        assert!(!plane.corrupt_snapshot(&mut text));
        assert_eq!(text, "{\"format\":2}");
    }
}
