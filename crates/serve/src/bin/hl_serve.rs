//! `hl-serve` — the HTTP evaluation server binary.
//!
//! ```text
//! hl-serve [--addr HOST:PORT] [--workers N] [--max-connections N]
//!          [--snapshot PATH] [--snapshot-interval SECS]
//!          [--default-deadline MS] [--faults SPEC]
//!          [--log-level LEVEL] [--trace-slow-ms MS]
//! ```
//!
//! The worker pool (and the shared sweep engine) default to `HL_THREADS`
//! when set, otherwise the machine's available parallelism. The
//! evaluation-cache snapshot path may also come from the
//! `HL_SERVE_SNAPSHOT` environment variable (the flag wins); when set,
//! the cache is loaded from it at boot, saved every
//! `--snapshot-interval` seconds, and saved back on graceful drain.
//! `--default-deadline` sheds queued work whose wait exceeds the given
//! budget even when the request body carries no `deadline_ms`.
//! `--faults` (or `HL_FAULTS`; the flag wins) arms the deterministic
//! fault-injection plane — see `hl_serve::faults` for the spec grammar.
//! `--log-level` (error|warn|info|debug, default info) gates the
//! structured JSON-lines log on stderr; `--trace-slow-ms` additionally
//! logs any request slower than the threshold at warn level (0 logs
//! everything). SIGTERM and ctrl-c drain in-flight requests before the
//! process exits.

// hl-lint: allow-file(no-raw-eprintln-in-serve, boot/usage errors precede Logger construction and this binary's stderr is the operator terminal, not the JSON log stream)
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use hl_serve::api::App;
use hl_serve::faults::FaultPlane;
use hl_serve::json::Json;
use hl_serve::log::Level;
use hl_serve::server::{Server, ServerConfig};
use hl_serve::signal;

const USAGE: &str = "usage: hl-serve [--addr HOST:PORT] [--workers N] [--max-connections N] \
     [--snapshot PATH] [--snapshot-interval SECS] [--default-deadline MS] [--faults SPEC] \
     [--log-level error|warn|info|debug] [--trace-slow-ms MS]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    if let Ok(path) = std::env::var("HL_SERVE_SNAPSHOT") {
        if !path.is_empty() {
            config.snapshot = Some(path.into());
        }
    }
    let mut faults_spec: Option<String> = None;
    let mut log_level = Level::Info;
    let mut trace_slow: Option<Duration> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => config.addr = v,
                None => return usage(),
            },
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.workers = n,
                _ => return usage(),
            },
            "--max-connections" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.max_connections = n,
                _ => return usage(),
            },
            "--snapshot" => match args.next() {
                Some(v) => config.snapshot = Some(v.into()),
                None => return usage(),
            },
            "--snapshot-interval" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n >= 1 => config.snapshot_interval = Some(Duration::from_secs(n)),
                _ => return usage(),
            },
            "--default-deadline" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n >= 1 => config.default_deadline = Some(Duration::from_millis(n)),
                _ => return usage(),
            },
            "--faults" => match args.next() {
                Some(v) => faults_spec = Some(v),
                None => return usage(),
            },
            "--log-level" => match args.next().and_then(|v| Level::parse(&v)) {
                Some(level) => log_level = level,
                None => return usage(),
            },
            "--trace-slow-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => trace_slow = Some(Duration::from_millis(ms)),
                None => return usage(),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    // The flag wins over HL_FAULTS; a malformed spec from either source
    // is a startup error, not a silently unarmed plane.
    let faults = match faults_spec {
        Some(spec) => match FaultPlane::parse(&spec) {
            Ok(plane) => Some(Arc::new(plane)),
            Err(e) => {
                eprintln!("hl-serve: bad --faults spec: {e}");
                return ExitCode::from(2);
            }
        },
        None => match FaultPlane::from_env() {
            Ok(plane) => plane,
            Err(e) => {
                eprintln!("hl-serve: bad HL_FAULTS spec: {e}");
                return ExitCode::from(2);
            }
        },
    };
    config.faults = faults;

    let app = App::new();
    app.logger().set_level(log_level);
    app.set_trace_slow(trace_slow);
    if let Some(plane) = &config.faults {
        app.logger().warn(
            "fault_injection_armed",
            &[
                ("seed", Json::Num(plane.seed() as f64)),
                ("note", Json::str("not for production")),
            ],
        );
    }

    let server = match Server::bind(config.clone(), app) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hl-serve: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hl-serve: no local address: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "hl-serve listening on http://{addr} ({} workers, {} connections max)",
        config.workers, config.max_connections
    );
    println!(
        "endpoints: GET /v1/healthz  GET /v1/designs  GET /v1/metrics  GET /v1/models  \
         GET /v1/trace  POST /v1/evaluate  POST /v1/evaluate_model  POST /v1/sweep  \
         POST /v1/search"
    );
    if let Some(path) = &config.snapshot {
        println!("snapshot: {}", path.display());
    }

    signal::install_handlers();
    let shutdown = match server.shutdown_switch() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hl-serve: no shutdown switch: {e}");
            return ExitCode::FAILURE;
        }
    };
    let watcher = std::thread::spawn(move || {
        while !signal::shutdown_requested() && !shutdown.is_triggered() {
            std::thread::sleep(Duration::from_millis(50));
        }
        shutdown.trigger();
    });

    let result = server.run();
    // run() only returns once shutdown is flagged; the watcher exits with it.
    signal::request_shutdown();
    let _ = watcher.join();
    match result {
        Ok(()) => {
            println!("hl-serve: drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hl-serve: server error: {e}");
            ExitCode::FAILURE
        }
    }
}
