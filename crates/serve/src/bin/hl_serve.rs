//! `hl-serve` — the HTTP evaluation server binary.
//!
//! ```text
//! hl-serve [--addr HOST:PORT] [--workers N]
//! ```
//!
//! The worker pool (and the shared sweep engine) default to `HL_THREADS`
//! when set, otherwise the machine's available parallelism. SIGTERM and
//! ctrl-c drain in-flight requests before the process exits.

use std::process::ExitCode;
use std::time::Duration;

use hl_serve::api::App;
use hl_serve::server::{Server, ServerConfig};
use hl_serve::signal;

fn usage() -> ExitCode {
    eprintln!("usage: hl-serve [--addr HOST:PORT] [--workers N]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => config.addr = v,
                None => return usage(),
            },
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => {
                    config.workers = n;
                    config.backlog = n * 4;
                }
                _ => return usage(),
            },
            "--help" | "-h" => {
                println!("usage: hl-serve [--addr HOST:PORT] [--workers N]");
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let server = match Server::bind(config.clone(), App::new()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hl-serve: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hl-serve: no local address: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "hl-serve listening on http://{addr} ({} workers)",
        config.workers
    );
    println!(
        "endpoints: GET /healthz  GET /designs  GET /metrics  GET /models  \
         POST /evaluate  POST /evaluate_model  POST /sweep  POST /search"
    );

    signal::install_handlers();
    let shutdown = match server.shutdown_switch() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hl-serve: no shutdown switch: {e}");
            return ExitCode::FAILURE;
        }
    };
    let watcher = std::thread::spawn(move || {
        while !signal::shutdown_requested() && !shutdown.is_triggered() {
            std::thread::sleep(Duration::from_millis(50));
        }
        shutdown.trigger();
    });

    let result = server.run();
    // run() only returns once shutdown is flagged; the watcher exits with it.
    signal::request_shutdown();
    let _ = watcher.join();
    match result {
        Ok(()) => {
            println!("hl-serve: drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hl-serve: server error: {e}");
            ExitCode::FAILURE
        }
    }
}
