//! `hl-client` — a CLI for the `hl-serve` API that renders responses as
//! aligned tables.
//!
//! ```text
//! hl-client [--addr HOST:PORT] health
//! hl-client [--addr HOST:PORT] designs
//! hl-client [--addr HOST:PORT] metrics
//! hl-client [--addr HOST:PORT] evaluate --design D [--m M --k K --n N] [--a S] [--b S]
//! hl-client [--addr HOST:PORT] sweep [--designs A,B] [--a 0,0.5] [--b 0,0.25]
//!                                    [--m M --k K --n N] [--limit N]
//! ```

use std::process::ExitCode;

use hl_serve::client::{get_json, post_json};
use hl_serve::json::Json;
use hl_serve::DEFAULT_ADDR;

const USAGE: &str =
    "usage: hl-client [--addr HOST:PORT] <health|designs|metrics|evaluate|sweep> [options]
  evaluate --design D [--m M --k K --n N] [--a SPARSITY] [--b SPARSITY]
  sweep [--designs A,B,...] [--a D1,D2,...] [--b D1,D2,...] [--m M --k K --n N] [--limit N]";

fn fail(msg: &str) -> ExitCode {
    eprintln!("hl-client: {msg}");
    ExitCode::FAILURE
}

fn num(v: Option<&Json>) -> f64 {
    v.and_then(Json::as_f64).unwrap_or(f64::NAN)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = DEFAULT_ADDR.to_string();
    let mut command = None;
    let mut options: Vec<(String, String)> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if name == "help" {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            let Some(value) = it.next() else {
                return fail(&format!("--{name} needs a value\n{USAGE}"));
            };
            if name == "addr" {
                addr = value;
            } else {
                options.push((name.to_string(), value));
            }
        } else if command.is_none() {
            command = Some(arg);
        } else {
            return fail(&format!("unexpected argument {arg:?}\n{USAGE}"));
        }
    }
    let Some(command) = command else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let opt = |name: &str| {
        options
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };

    let result = match command.as_str() {
        "health" => get_json(&addr, "/healthz").map(|(s, v)| (s, render_kv(&v))),
        "metrics" => get_json(&addr, "/metrics").map(|(s, v)| (s, render_metrics(&v))),
        "designs" => get_json(&addr, "/designs").map(|(s, v)| (s, render_designs(&v))),
        "evaluate" => {
            let mut body = Vec::new();
            match opt("design") {
                Some(d) => body.push(("design".to_string(), Json::str(d))),
                None => return fail(&format!("evaluate requires --design\n{USAGE}")),
            }
            for (flag, field) in [
                ("m", "m"),
                ("k", "k"),
                ("n", "n"),
                ("a", "a_sparsity"),
                ("b", "b_sparsity"),
            ] {
                if let Some(v) = opt(flag) {
                    let Ok(n) = v.parse::<f64>() else {
                        return fail(&format!("--{flag} must be a number, got {v:?}"));
                    };
                    body.push((field.to_string(), Json::Num(n)));
                }
            }
            post_json(&addr, "/evaluate", &Json::Obj(body)).map(|(s, v)| (s, render_evaluate(&v)))
        }
        "sweep" => {
            let mut body = Vec::new();
            if let Some(list) = opt("designs") {
                body.push((
                    "designs".to_string(),
                    Json::Arr(list.split(',').map(Json::str).collect()),
                ));
            }
            for (flag, field) in [("a", "a_degrees"), ("b", "b_degrees")] {
                if let Some(list) = opt(flag) {
                    let mut degrees = Vec::new();
                    for part in list.split(',') {
                        let Ok(n) = part.parse::<f64>() else {
                            return fail(&format!(
                                "--{flag} entries must be numbers, got {part:?}"
                            ));
                        };
                        degrees.push(Json::Num(n));
                    }
                    body.push((field.to_string(), Json::Arr(degrees)));
                }
            }
            for flag in ["m", "k", "n", "limit"] {
                if let Some(v) = opt(flag) {
                    let Ok(n) = v.parse::<f64>() else {
                        return fail(&format!("--{flag} must be a number, got {v:?}"));
                    };
                    body.push((flag.to_string(), Json::Num(n)));
                }
            }
            post_json(&addr, "/sweep", &Json::Obj(body)).map(|(s, v)| (s, render_sweep(&v)))
        }
        other => return fail(&format!("unknown command {other:?}\n{USAGE}")),
    };

    match result {
        Ok((200, text)) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Ok((status, text)) => {
            eprintln!("hl-client: HTTP {status}\n{text}");
            ExitCode::FAILURE
        }
        Err(e) => fail(&format!("request to {addr} failed: {e}")),
    }
}

/// Key/value lines for flat objects (health).
fn render_kv(v: &Json) -> String {
    let Json::Obj(members) = v else {
        return v.encode();
    };
    let width = members.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    members
        .iter()
        .map(|(k, val)| format!("{k:>width$}  {}", render_scalar(val)))
        .collect::<Vec<_>>()
        .join("\n")
}

fn render_scalar(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.encode(),
    }
}

fn render_metrics(v: &Json) -> String {
    let Json::Obj(members) = v else {
        return v.encode();
    };
    let mut out = String::new();
    for (section, val) in members {
        match val {
            Json::Obj(_) => {
                out.push_str(&format!("[{section}]\n{}\n\n", render_kv(val)));
            }
            _ => out.push_str(&format!("{section}: {}\n\n", render_scalar(val))),
        }
    }
    out.trim_end().to_string()
}

fn render_designs(v: &Json) -> String {
    let empty = Vec::new();
    let designs = v.get("designs").and_then(Json::as_arr).unwrap_or(&empty);
    let mut out = format!(
        "{:<10} {:>9} {:>9} {:>8}  {}\n",
        "design", "area_mm2", "tax_mm2", "swap", "supported patterns"
    );
    for d in designs {
        out.push_str(&format!(
            "{:<10} {:>9.3} {:>9.3} {:>8}  {}\n",
            d.get("name").and_then(Json::as_str).unwrap_or("?"),
            num(d.get("area_mm2")),
            num(d.get("sparsity_tax_mm2")),
            if d.get("swappable").and_then(Json::as_bool).unwrap_or(false) {
                "yes"
            } else {
                "no"
            },
            d.get("supported_patterns")
                .and_then(Json::as_str)
                .unwrap_or("?"),
        ));
    }
    out.trim_end().to_string()
}

fn render_evaluate(v: &Json) -> String {
    let mut out = String::new();
    for key in ["design", "workload", "a", "b"] {
        out.push_str(&format!(
            "{key:>10}  {}\n",
            v.get(key).and_then(Json::as_str).unwrap_or("?")
        ));
    }
    if v.get("supported").and_then(Json::as_bool) != Some(true) {
        out.push_str(&format!(
            "{:>10}  {}\n",
            "reason",
            v.get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unsupported")
        ));
        return out.trim_end().to_string();
    }
    let Some(r) = v.get("result") else {
        return out.trim_end().to_string();
    };
    out.push_str(&format!("{:>10}  {:.4e}\n", "cycles", num(r.get("cycles"))));
    out.push_str(&format!(
        "{:>10}  {:.4e} s\n",
        "latency",
        num(r.get("latency_s"))
    ));
    out.push_str(&format!(
        "{:>10}  {:.4e} J\n",
        "energy",
        num(r.get("energy_j"))
    ));
    out.push_str(&format!("{:>10}  {:.4e} J*s\n", "EDP", num(r.get("edp"))));
    if let Some(Json::Obj(parts)) = r.get("energy_pj") {
        out.push_str("energy breakdown (pJ):\n");
        for (comp, pj) in parts {
            out.push_str(&format!(
                "{comp:>12}  {:.4e}\n",
                pj.as_f64().unwrap_or(f64::NAN)
            ));
        }
    }
    out.trim_end().to_string()
}

fn render_sweep(v: &Json) -> String {
    let empty = Vec::new();
    let names: Vec<&str> = v
        .get("designs")
        .and_then(Json::as_arr)
        .unwrap_or(&empty)
        .iter()
        .filter_map(Json::as_str)
        .collect();
    let rows = v.get("rows").and_then(Json::as_arr).unwrap_or(&empty);
    let mut out = format!("EDP (J*s) per design; {} rows\n", rows.len());
    out.push_str(&format!("{:>6} {:>6}", "A%", "B%"));
    for n in &names {
        out.push_str(&format!(" {n:>12}"));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!(
            "{:>6.1} {:>6.1}",
            num(row.get("a_sparsity")) * 100.0,
            num(row.get("b_sparsity")) * 100.0
        ));
        for cell in row.get("results").and_then(Json::as_arr).unwrap_or(&empty) {
            match cell.get("edp").and_then(Json::as_f64) {
                Some(edp) => out.push_str(&format!(" {edp:>12.4e}")),
                None => out.push_str(&format!(" {:>12}", "n/a")),
            }
        }
        out.push('\n');
    }
    if v.get("truncated").and_then(Json::as_bool) == Some(true) {
        out.push_str(&format!(
            "(truncated: {} of {} rows)\n",
            rows.len(),
            num(v.get("rows_total")) as usize
        ));
    }
    out.trim_end().to_string()
}
