//! `hl-client` — a CLI for the `hl-serve` `/v1` API that renders
//! responses as aligned tables. All requests for one invocation share a
//! keep-alive connection.
//!
//! ```text
//! hl-client [--addr HOST:PORT] health
//! hl-client [--addr HOST:PORT] designs
//! hl-client [--addr HOST:PORT] models
//! hl-client [--addr HOST:PORT] metrics [--prometheus]
//! hl-client [--addr HOST:PORT] trace [--limit N] [--route PATH] [--min-ms MS]
//! hl-client [--addr HOST:PORT] evaluate --design D [--m M --k K --n N] [--a S] [--b S]
//! hl-client [--addr HOST:PORT] model DESIGN MODEL [--unstructured S | --hss G:H[,G:H]]
//! hl-client [--addr HOST:PORT] search DESIGN MODEL [--budget POINTS]
//! hl-client [--addr HOST:PORT] sweep [--designs A,B] [--a 0,0.5] [--b 0,0.25]
//!                                    [--m M --k K --n N] [--limit N]
//! hl-client checklog   # validate JSON-lines log fed on stdin
//! hl-client promcheck  # validate a Prometheus exposition fed on stdin
//! ```
//!
//! `metrics --prometheus` prints the raw text exposition unmodified (a
//! curl-equivalent passthrough for scrapers); `trace` renders the
//! server's request-trace ring as a span waterfall. `checklog` and
//! `promcheck` are offline validators used by CI smoke tests: both read
//! stdin, print a one-line summary, and exit nonzero on the first
//! malformed line.

// hl-lint: allow-file(no-raw-eprintln-in-serve, hl-client is an interactive CLI whose stderr is the user's terminal; it never emits the server's JSON log stream)
use std::io::Read;
use std::process::ExitCode;

use hl_serve::client::Client;
use hl_serve::json::Json;
use hl_serve::DEFAULT_ADDR;

const USAGE: &str =
    "usage: hl-client [--addr HOST:PORT] <health|designs|models|metrics|trace|evaluate|model|search|sweep|checklog|promcheck> [options]
  metrics [--prometheus]
  trace [--limit N] [--route PATH] [--min-ms MS]
  evaluate --design D [--m M --k K --n N] [--a SPARSITY] [--b SPARSITY]
  model DESIGN MODEL [--unstructured SPARSITY | --hss G:H[,G:H...]]
  search DESIGN MODEL [--budget POINTS]
  sweep [--designs A,B,...] [--a D1,D2,...] [--b D1,D2,...] [--m M --k K --n N] [--limit N]
  checklog   (reads a JSON-lines log from stdin)
  promcheck  (reads a Prometheus exposition from stdin)";

fn fail(msg: &str) -> ExitCode {
    eprintln!("hl-client: {msg}");
    ExitCode::FAILURE
}

fn num(v: Option<&Json>) -> f64 {
    v.and_then(Json::as_f64).unwrap_or(f64::NAN)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = DEFAULT_ADDR.to_string();
    let mut positionals: Vec<String> = Vec::new();
    let mut options: Vec<(String, String)> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if name == "help" {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            // Boolean flags take no value operand.
            if name == "prometheus" {
                options.push((name.to_string(), "true".to_string()));
                continue;
            }
            let Some(value) = it.next() else {
                return fail(&format!("--{name} needs a value\n{USAGE}"));
            };
            if name == "addr" {
                addr = value;
            } else {
                options.push((name.to_string(), value));
            }
        } else {
            positionals.push(arg);
        }
    }
    let Some(command) = positionals.first().cloned() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // Only `model` and `search` take positional operands (DESIGN MODEL).
    let operand_limit = if command == "model" || command == "search" {
        3
    } else {
        1
    };
    if positionals.len() > operand_limit {
        return fail(&format!(
            "unexpected argument {:?}\n{USAGE}",
            positionals[operand_limit]
        ));
    }

    // Reject options the command does not consume: a typo'd flag (e.g.
    // --unstructered) would otherwise silently evaluate something else
    // than the user asked for.
    let allowed: &[&str] = match command.as_str() {
        "evaluate" => &["design", "m", "k", "n", "a", "b"],
        "model" => &["unstructured", "hss"],
        "search" => &["budget"],
        "sweep" => &["designs", "a", "b", "m", "k", "n", "limit"],
        "metrics" => &["prometheus"],
        "trace" => &["limit", "route", "min-ms"],
        _ => &[],
    };
    if let Some((name, _)) = options.iter().find(|(n, _)| !allowed.contains(&n.as_str())) {
        return fail(&format!("unknown option --{name} for {command}\n{USAGE}"));
    }

    let opt = |name: &str| {
        options
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };

    // Offline validators: no server involved, stdin in, verdict out.
    if command == "checklog" {
        return check_log_stdin();
    }
    if command == "promcheck" {
        return check_prom_stdin();
    }

    let mut client = Client::new(addr.clone());
    let result = match command.as_str() {
        "health" => client
            .get_json("/v1/healthz")
            .map(|(s, v)| (s, render_kv(&v))),
        "metrics" if opt("prometheus").is_some() => {
            // Raw passthrough: what a scraper sees, byte for byte.
            client
                .send("GET", "/v1/metrics?format=prometheus", None)
                .map(|(s, text)| (s, text.trim_end().to_string()))
        }
        "metrics" => client
            .get_json("/v1/metrics")
            .map(|(s, v)| (s, render_metrics(&v))),
        "trace" => {
            let mut query = Vec::new();
            for (flag, key) in [("limit", "limit"), ("route", "route"), ("min-ms", "min_ms")] {
                if let Some(v) = opt(flag) {
                    query.push(format!("{key}={v}"));
                }
            }
            let path = if query.is_empty() {
                "/v1/trace".to_string()
            } else {
                format!("/v1/trace?{}", query.join("&"))
            };
            client.get_json(&path).map(|(s, v)| (s, render_trace(&v)))
        }
        "designs" => client
            .get_json("/v1/designs")
            .map(|(s, v)| (s, render_designs(&v))),
        "models" => client
            .get_json("/v1/models")
            .map(|(s, v)| (s, render_models(&v))),
        "model" => {
            let [_, design, model] = positionals.as_slice() else {
                return fail(&format!("model requires DESIGN and MODEL\n{USAGE}"));
            };
            let mut body = vec![
                ("design".to_string(), Json::str(design)),
                ("model".to_string(), Json::str(model)),
            ];
            match (opt("unstructured"), opt("hss")) {
                (Some(_), Some(_)) => return fail("pass either --unstructured or --hss, not both"),
                (Some(s), None) => {
                    let Ok(n) = s.parse::<f64>() else {
                        return fail(&format!("--unstructured must be a number, got {s:?}"));
                    };
                    body.push((
                        "pruning".to_string(),
                        Json::Obj(vec![("unstructured".to_string(), Json::Num(n))]),
                    ));
                }
                (None, Some(spec)) => {
                    let mut ranks = Vec::new();
                    for part in spec.split(',') {
                        let Some((g, h)) = part.split_once(':') else {
                            return fail(&format!("--hss ranks must be G:H, got {part:?}"));
                        };
                        let (Ok(g), Ok(h)) = (g.parse::<f64>(), h.parse::<f64>()) else {
                            return fail(&format!("--hss components must be numbers: {part:?}"));
                        };
                        ranks.push(Json::Arr(vec![Json::Num(g), Json::Num(h)]));
                    }
                    body.push((
                        "pruning".to_string(),
                        Json::Obj(vec![("hss".to_string(), Json::Arr(ranks))]),
                    ));
                }
                (None, None) => {}
            }
            client
                .post_json("/v1/evaluate_model", &Json::Obj(body))
                .map(|(s, v)| (s, render_model(&v)))
        }
        "search" => {
            let [_, design, model] = positionals.as_slice() else {
                return fail(&format!("search requires DESIGN and MODEL\n{USAGE}"));
            };
            let budget = match opt("budget") {
                None => 0.5,
                Some(s) => match s.parse::<f64>() {
                    Ok(n) => n,
                    Err(_) => {
                        return fail(&format!("--budget must be a number, got {s:?}"));
                    }
                },
            };
            let body = Json::Obj(vec![
                ("design".to_string(), Json::str(design)),
                ("model".to_string(), Json::str(model)),
                ("budget".to_string(), Json::Num(budget)),
            ]);
            client
                .post_json("/v1/search", &body)
                .map(|(s, v)| (s, render_search(&v)))
        }
        "evaluate" => {
            let mut body = Vec::new();
            match opt("design") {
                Some(d) => body.push(("design".to_string(), Json::str(d))),
                None => return fail(&format!("evaluate requires --design\n{USAGE}")),
            }
            for (flag, field) in [
                ("m", "m"),
                ("k", "k"),
                ("n", "n"),
                ("a", "a_sparsity"),
                ("b", "b_sparsity"),
            ] {
                if let Some(v) = opt(flag) {
                    let Ok(n) = v.parse::<f64>() else {
                        return fail(&format!("--{flag} must be a number, got {v:?}"));
                    };
                    body.push((field.to_string(), Json::Num(n)));
                }
            }
            client
                .post_json("/v1/evaluate", &Json::Obj(body))
                .map(|(s, v)| (s, render_evaluate(&v)))
        }
        "sweep" => {
            let mut body = Vec::new();
            if let Some(list) = opt("designs") {
                body.push((
                    "designs".to_string(),
                    Json::Arr(list.split(',').map(Json::str).collect()),
                ));
            }
            for (flag, field) in [("a", "a_degrees"), ("b", "b_degrees")] {
                if let Some(list) = opt(flag) {
                    let mut degrees = Vec::new();
                    for part in list.split(',') {
                        let Ok(n) = part.parse::<f64>() else {
                            return fail(&format!(
                                "--{flag} entries must be numbers, got {part:?}"
                            ));
                        };
                        degrees.push(Json::Num(n));
                    }
                    body.push((field.to_string(), Json::Arr(degrees)));
                }
            }
            for flag in ["m", "k", "n", "limit"] {
                if let Some(v) = opt(flag) {
                    let Ok(n) = v.parse::<f64>() else {
                        return fail(&format!("--{flag} must be a number, got {v:?}"));
                    };
                    body.push((flag.to_string(), Json::Num(n)));
                }
            }
            client
                .post_json("/v1/sweep", &Json::Obj(body))
                .map(|(s, v)| (s, render_sweep(&v)))
        }
        other => return fail(&format!("unknown command {other:?}\n{USAGE}")),
    };

    match result {
        Ok((200, text)) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Ok((status, text)) => {
            eprintln!("hl-client: HTTP {status}\n{text}");
            ExitCode::FAILURE
        }
        Err(e) => fail(&format!("request to {addr} failed: {e}")),
    }
}

/// Validates a JSON-lines structured log fed on stdin: every non-empty
/// line must parse as a JSON object carrying `ts`, `level`, and `event`.
fn check_log_stdin() -> ExitCode {
    let mut text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut text) {
        return fail(&format!("cannot read stdin: {e}"));
    }
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = match Json::parse(line) {
            Ok(doc) => doc,
            Err(e) => return fail(&format!("line {}: not JSON: {e}\n{line}", i + 1)),
        };
        for field in ["ts", "level", "event"] {
            if doc.get(field).is_none() {
                return fail(&format!("line {}: missing {field:?}\n{line}", i + 1));
            }
        }
        lines += 1;
    }
    if lines == 0 {
        return fail("no structured log lines on stdin");
    }
    println!("checklog: {lines} structured log lines ok");
    ExitCode::SUCCESS
}

/// Validates a Prometheus text exposition fed on stdin (`# TYPE` once
/// per family, samples attributable, histogram buckets cumulative).
fn check_prom_stdin() -> ExitCode {
    let mut text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut text) {
        return fail(&format!("cannot read stdin: {e}"));
    }
    match hl_serve::prom::validate_exposition(&text) {
        Ok(()) => {
            let families = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
            println!("promcheck: {families} metric families ok");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("invalid exposition: {e}")),
    }
}

/// The `/v1/trace` ring as a span waterfall, newest last.
fn render_trace(v: &Json) -> String {
    if let Some(msg) = render_error(v) {
        return msg;
    }
    let empty = Vec::new();
    let traces = v.get("traces").and_then(Json::as_arr).unwrap_or(&empty);
    let mut out = format!(
        "{} traces (ring capacity {}, {} dropped)\n",
        num(v.get("count")) as usize,
        num(v.get("capacity")) as usize,
        num(v.get("dropped")) as usize,
    );
    out.push_str(&format!(
        "{:<18} {:<20} {:>4} {:<14} {:>9} {:>7} {:>7} {:>8} {:>7} {:>7}  {}\n",
        "id",
        "route",
        "st",
        "outcome",
        "total_ms",
        "parse",
        "queue",
        "eval",
        "ser",
        "write",
        "waterfall"
    ));
    for t in traces {
        let spans = t.get("spans");
        let span = |key: &str| spans.map_or(f64::NAN, |s| num(s.get(key)));
        let total = num(t.get("total_ms"));
        out.push_str(&format!(
            "{:<18} {:<20} {:>4} {:<14} {:>9.3} {:>7.3} {:>7.3} {:>8.3} {:>7.3} {:>7.3}  {}\n",
            t.get("id").and_then(Json::as_str).unwrap_or("?"),
            t.get("route").and_then(Json::as_str).unwrap_or("?"),
            num(t.get("status")) as u16,
            t.get("outcome").and_then(Json::as_str).unwrap_or("?"),
            total,
            span("parse_ms"),
            span("queue_ms"),
            span("eval_ms"),
            span("serialize_ms"),
            span("write_ms"),
            waterfall_bar(
                &[
                    ('p', span("parse_ms")),
                    ('q', span("queue_ms")),
                    ('e', span("eval_ms")),
                    ('s', span("serialize_ms")),
                    ('w', span("write_ms")),
                ],
                total,
            ),
        ));
    }
    out.trim_end().to_string()
}

/// A fixed-width bar of span letters, each segment sized by its share
/// of the total (every nonzero span shows at least one cell).
fn waterfall_bar(spans: &[(char, f64)], total_ms: f64) -> String {
    const WIDTH: usize = 24;
    if total_ms.is_nan() || total_ms <= 0.0 {
        return String::new();
    }
    let mut bar = String::new();
    for &(letter, ms) in spans {
        if ms.is_nan() || ms <= 0.0 {
            continue;
        }
        let cells = ((ms / total_ms) * WIDTH as f64).round().max(1.0) as usize;
        for _ in 0..cells.min(WIDTH) {
            bar.push(letter);
        }
    }
    bar.truncate(WIDTH);
    format!("[{bar}]")
}

/// The server's structured `{"error":{"code","message"}}` body, when
/// the response is one.
fn render_error(v: &Json) -> Option<String> {
    let e = v.get("error")?;
    let code = e.get("code").and_then(Json::as_str).unwrap_or("error");
    let msg = e.get("message").and_then(Json::as_str).unwrap_or("?");
    Some(format!("error ({code}): {msg}"))
}

/// Key/value lines for flat objects (health).
fn render_kv(v: &Json) -> String {
    let Json::Obj(members) = v else {
        return v.encode();
    };
    let width = members.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    members
        .iter()
        .map(|(k, val)| format!("{k:>width$}  {}", render_scalar(val)))
        .collect::<Vec<_>>()
        .join("\n")
}

fn render_scalar(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.encode(),
    }
}

fn render_metrics(v: &Json) -> String {
    let Json::Obj(members) = v else {
        return v.encode();
    };
    let mut out = String::new();
    for (section, val) in members {
        match val {
            Json::Obj(_) => {
                out.push_str(&format!("[{section}]\n{}\n\n", render_kv(val)));
            }
            _ => out.push_str(&format!("{section}: {}\n\n", render_scalar(val))),
        }
    }
    out.trim_end().to_string()
}

fn render_designs(v: &Json) -> String {
    let empty = Vec::new();
    let designs = v.get("designs").and_then(Json::as_arr).unwrap_or(&empty);
    let mut out = format!(
        "{:<10} {:>9} {:>9} {:>8}  {}\n",
        "design", "area_mm2", "tax_mm2", "swap", "supported patterns"
    );
    for d in designs {
        out.push_str(&format!(
            "{:<10} {:>9.3} {:>9.3} {:>8}  {}\n",
            d.get("name").and_then(Json::as_str).unwrap_or("?"),
            num(d.get("area_mm2")),
            num(d.get("sparsity_tax_mm2")),
            if d.get("swappable").and_then(Json::as_bool).unwrap_or(false) {
                "yes"
            } else {
                "no"
            },
            d.get("supported_patterns")
                .and_then(Json::as_str)
                .unwrap_or("?"),
        ));
    }
    out.trim_end().to_string()
}

fn render_models(v: &Json) -> String {
    let empty = Vec::new();
    let models = v.get("models").and_then(Json::as_arr).unwrap_or(&empty);
    let mut out = format!(
        "{:<16} {:>9} {:>7} {:>8} {:>10} {:>7}  {}\n",
        "model", "metric", "layers", "GMACs", "prunable%", "act%", "dense layers"
    );
    for m in models {
        out.push_str(&format!(
            "{:<16} {:>9} {:>7} {:>8.2} {:>10.1} {:>7.1}  {}\n",
            m.get("name").and_then(Json::as_str).unwrap_or("?"),
            m.get("metric").and_then(Json::as_str).unwrap_or("?"),
            num(m.get("layer_shapes")) as usize,
            num(m.get("gmacs")),
            num(m.get("prunable_fraction")) * 100.0,
            num(m.get("avg_activation_sparsity")) * 100.0,
            if m.get("has_dense_layers").and_then(Json::as_bool) == Some(true) {
                "yes"
            } else {
                "no"
            },
        ));
    }
    out.trim_end().to_string()
}

/// The `/v1/evaluate_model` per-layer table plus the network totals.
fn render_model(v: &Json) -> String {
    // Error responses carry none of the table fields; show the server's
    // reason instead of a placeholder table.
    if let Some(msg) = render_error(v) {
        return msg;
    }
    let mut out = format!(
        "{} on {} ({}), pruning {} (weights {:.1}% sparse, est. loss {:.2})\n\n",
        v.get("design").and_then(Json::as_str).unwrap_or("?"),
        v.get("model").and_then(Json::as_str).unwrap_or("?"),
        v.get("metric").and_then(Json::as_str).unwrap_or("?"),
        v.get("pruning").and_then(Json::as_str).unwrap_or("?"),
        num(v.get("weight_sparsity")) * 100.0,
        num(v.get("accuracy_loss")),
    );
    let Some(network) = v.get("network") else {
        return out.trim_end().to_string();
    };
    let empty = Vec::new();
    let layers = network
        .get("layers")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    out.push_str(&format!(
        "{:<16} {:>5} {:>22} {:>12} {:>12} {:>12}\n",
        "layer", "count", "m x k x n", "cycles", "energy (J)", "EDP (J*s)"
    ));
    for l in layers {
        let shape = format!(
            "{} x {} x {}",
            l.get("shape").map_or(f64::NAN, |s| num(s.get("m"))),
            l.get("shape").map_or(f64::NAN, |s| num(s.get("k"))),
            l.get("shape").map_or(f64::NAN, |s| num(s.get("n"))),
        );
        let name = l.get("name").and_then(Json::as_str).unwrap_or("?");
        let count = num(l.get("count")) as usize;
        if l.get("supported").and_then(Json::as_bool) == Some(true) {
            let r = l.get("result");
            out.push_str(&format!(
                "{name:<16} {count:>5} {shape:>22} {:>12.4e} {:>12.4e} {:>12.4e}\n",
                r.map_or(f64::NAN, |r| num(r.get("cycles"))),
                r.map_or(f64::NAN, |r| num(r.get("energy_j"))),
                r.map_or(f64::NAN, |r| num(r.get("edp"))),
            ));
        } else {
            out.push_str(&format!(
                "{name:<16} {count:>5} {shape:>22}  unsupported: {}\n",
                l.get("reason").and_then(Json::as_str).unwrap_or("?")
            ));
        }
    }
    match network.get("totals") {
        Some(Json::Null) | None => {
            out.push_str("\ntotals: n/a (some layers are unsupported)\n");
        }
        Some(t) => {
            out.push_str(&format!(
                "\ntotals: {:.4e} cycles, {:.4e} s, {:.4e} J, EDP {:.4e} J*s, \
                 utilization {:.1}%\n",
                num(t.get("cycles")),
                num(t.get("latency_s")),
                num(t.get("energy_j")),
                num(t.get("edp")),
                num(t.get("utilization")) * 100.0,
            ));
        }
    }
    out.trim_end().to_string()
}

/// The `/v1/search` Pareto-front table plus the budget-best line.
fn render_search(v: &Json) -> String {
    if let Some(msg) = render_error(v) {
        return msg;
    }
    let mut out = format!(
        "{} on {} ({}), budget {:.2} points: {} candidates, {} unsupported\n\n",
        v.get("design").and_then(Json::as_str).unwrap_or("?"),
        v.get("model").and_then(Json::as_str).unwrap_or("?"),
        v.get("metric").and_then(Json::as_str).unwrap_or("?"),
        num(v.get("budget")),
        num(v.get("candidates")) as usize,
        num(v.get("unsupported")) as usize,
    );
    let empty = Vec::new();
    let front = v.get("front").and_then(Json::as_arr).unwrap_or(&empty);
    let best_config = v
        .get("best")
        .and_then(|b| b.get("config"))
        .and_then(Json::as_str);
    out.push_str(&format!(
        "{:<26} {:>9} {:>10} {:>10} {:>6}\n",
        "Pareto front", "sparsity", "loss", "EDP", "best"
    ));
    for p in front {
        let config = p.get("config").and_then(Json::as_str).unwrap_or("?");
        out.push_str(&format!(
            "{config:<26} {:>8.1}% {:>10.3} {:>10.3} {:>6}\n",
            num(p.get("weight_sparsity")) * 100.0,
            num(p.get("loss")),
            num(p.get("edp")),
            if Some(config) == best_config {
                "<=="
            } else {
                ""
            },
        ));
    }
    match v.get("best") {
        Some(Json::Null) | None => out.push_str("\nno configuration stays within the budget"),
        Some(b) => out.push_str(&format!(
            "\nbest within budget: {} (loss {:.3}, EDP {:.3}x dense TC)",
            b.get("config").and_then(Json::as_str).unwrap_or("?"),
            num(b.get("loss")),
            num(b.get("edp")),
        )),
    }
    out
}

fn render_evaluate(v: &Json) -> String {
    if let Some(msg) = render_error(v) {
        return msg;
    }
    let mut out = String::new();
    for key in ["design", "workload", "a", "b"] {
        out.push_str(&format!(
            "{key:>10}  {}\n",
            v.get(key).and_then(Json::as_str).unwrap_or("?")
        ));
    }
    if v.get("supported").and_then(Json::as_bool) != Some(true) {
        out.push_str(&format!(
            "{:>10}  {}\n",
            "reason",
            v.get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unsupported")
        ));
        return out.trim_end().to_string();
    }
    let Some(r) = v.get("result") else {
        return out.trim_end().to_string();
    };
    out.push_str(&format!("{:>10}  {:.4e}\n", "cycles", num(r.get("cycles"))));
    out.push_str(&format!(
        "{:>10}  {:.4e} s\n",
        "latency",
        num(r.get("latency_s"))
    ));
    out.push_str(&format!(
        "{:>10}  {:.4e} J\n",
        "energy",
        num(r.get("energy_j"))
    ));
    out.push_str(&format!("{:>10}  {:.4e} J*s\n", "EDP", num(r.get("edp"))));
    if let Some(Json::Obj(parts)) = r.get("energy_pj") {
        out.push_str("energy breakdown (pJ):\n");
        for (comp, pj) in parts {
            out.push_str(&format!(
                "{comp:>12}  {:.4e}\n",
                pj.as_f64().unwrap_or(f64::NAN)
            ));
        }
    }
    out.trim_end().to_string()
}

fn render_sweep(v: &Json) -> String {
    if let Some(msg) = render_error(v) {
        return msg;
    }
    let empty = Vec::new();
    let names: Vec<&str> = v
        .get("designs")
        .and_then(Json::as_arr)
        .unwrap_or(&empty)
        .iter()
        .filter_map(Json::as_str)
        .collect();
    let rows = v.get("rows").and_then(Json::as_arr).unwrap_or(&empty);
    let mut out = format!("EDP (J*s) per design; {} rows\n", rows.len());
    out.push_str(&format!("{:>6} {:>6}", "A%", "B%"));
    for n in &names {
        out.push_str(&format!(" {n:>12}"));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!(
            "{:>6.1} {:>6.1}",
            num(row.get("a_sparsity")) * 100.0,
            num(row.get("b_sparsity")) * 100.0
        ));
        for cell in row.get("results").and_then(Json::as_arr).unwrap_or(&empty) {
            match cell.get("edp").and_then(Json::as_f64) {
                Some(edp) => out.push_str(&format!(" {edp:>12.4e}")),
                None => out.push_str(&format!(" {:>12}", "n/a")),
            }
        }
        out.push('\n');
    }
    if v.get("truncated").and_then(Json::as_bool) == Some(true) {
        out.push_str(&format!(
            "(truncated: {} of {} rows)\n",
            rows.len(),
            num(v.get("rows_total")) as usize
        ));
    }
    out.trim_end().to_string()
}
