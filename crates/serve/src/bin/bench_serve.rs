//! `bench_serve` — in-process load generator for the `hl-serve` API.
//!
//! Boots a server on an ephemeral port, warms the shared `EvalCache` with
//! one pass over the request mix, then fires concurrent clients at
//! `/evaluate` (with a periodic `/healthz`) measuring per-request latency
//! from the client side. Records p50/p90/p99/max latency, throughput, and
//! the server-side cache hit rate to `BENCH_serve.json` (honoring
//! `HL_BENCH_OUT`, like `bench_sweeps`).
//!
//! Environment knobs: `HL_SERVE_BENCH_CLIENTS` (default 4) and
//! `HL_SERVE_BENCH_REQS` (requests per client, default 150).

use std::time::Instant;

use hl_bench::bench_out_path;
use hl_serve::api::App;
use hl_serve::client::{get_json, post_json};
use hl_serve::json::Json;
use hl_serve::server::{Server, ServerConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// The `/evaluate` request mix: every paper design over three degree
/// pairs (so repeats replay from the shared cache, as production clients
/// polling a design space would).
fn request_mix() -> Vec<Json> {
    let mut mix = Vec::new();
    for design in hl_bench::design_names() {
        for (sa, sb) in [(0.5, 0.0), (0.5, 0.5), (0.75, 0.25)] {
            mix.push(Json::Obj(vec![
                ("design".into(), Json::str(&design)),
                ("a_sparsity".into(), Json::Num(sa)),
                ("b_sparsity".into(), Json::Num(sb)),
            ]));
        }
    }
    mix
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() {
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let clients = env_usize("HL_SERVE_BENCH_CLIENTS", 4);
    let per_client = env_usize("HL_SERVE_BENCH_REQS", 150);
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    };
    let workers = config.workers;
    let handle = Server::bind(config, App::new())
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server");
    let addr = handle.addr().to_string();
    println!(
        "bench_serve — {clients} clients x {per_client} requests against {addr} \
         ({workers} workers, {cpus} CPU(s))"
    );

    // Warmup: populate the cache with every distinct point, untimed.
    let mix = request_mix();
    for body in &mix {
        let (status, _) = post_json(&addr, "/evaluate", body).expect("warmup request");
        assert_eq!(status, 200, "warmup must succeed");
    }

    let t0 = Instant::now();
    let mut all_latencies: Vec<f64> = Vec::new();
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = &addr;
                let mix = &mix;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut errs = 0u64;
                    for i in 0..per_client {
                        let t = Instant::now();
                        let status = if i % 8 == 7 {
                            get_json(addr, "/healthz").map(|(s, _)| s)
                        } else {
                            let body = &mix[(c + i * clients) % mix.len()];
                            post_json(addr, "/evaluate", body).map(|(s, _)| s)
                        };
                        latencies.push(t.elapsed().as_secs_f64() * 1000.0);
                        if status.ok() != Some(200) {
                            errs += 1;
                        }
                    }
                    (latencies, errs)
                })
            })
            .collect();
        for h in handles {
            let (lat, errs) = h.join().expect("client thread panicked");
            all_latencies.extend(lat);
            errors += errs;
        }
    });
    let seconds = t0.elapsed().as_secs_f64();
    let total = all_latencies.len();
    all_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let throughput = total as f64 / seconds;
    let (p50, p90, p99) = (
        quantile(&all_latencies, 0.50),
        quantile(&all_latencies, 0.90),
        quantile(&all_latencies, 0.99),
    );
    let max = all_latencies.last().copied().unwrap_or(0.0);
    let mean = all_latencies.iter().sum::<f64>() / total.max(1) as f64;

    let (status, metrics) = get_json(&addr, "/metrics").expect("final /metrics");
    assert_eq!(status, 200);
    let cache = metrics.get("eval_cache").cloned().unwrap_or(Json::Null);

    println!("{total:>7} requests in {seconds:.3} s  ({throughput:.0} req/s, {errors} errors)");
    println!("latency p50 {p50:.3} ms   p90 {p90:.3} ms   p99 {p99:.3} ms   max {max:.3} ms");
    println!("eval cache: {}", cache.encode());

    let report = Json::Obj(vec![
        ("benchmark".into(), Json::str("hl-serve load")),
        ("cpus".into(), Json::Num(cpus as f64)),
        ("workers".into(), Json::Num(workers as f64)),
        ("clients".into(), Json::Num(clients as f64)),
        ("requests".into(), Json::Num(total as f64)),
        ("errors".into(), Json::Num(errors as f64)),
        ("seconds".into(), Json::Num((seconds * 1e4).round() / 1e4)),
        (
            "throughput_rps".into(),
            Json::Num((throughput * 10.0).round() / 10.0),
        ),
        (
            "latency_ms".into(),
            Json::Obj(
                [
                    ("p50", p50),
                    ("p90", p90),
                    ("p99", p99),
                    ("max", max),
                    ("mean", mean),
                ]
                .into_iter()
                .map(|(k, v)| (k.to_string(), Json::Num((v * 1e4).round() / 1e4)))
                .collect(),
            ),
        ),
        ("eval_cache".into(), cache),
    ]);
    let out = bench_out_path("BENCH_serve.json");
    std::fs::write(&out, report.encode() + "\n").expect("write BENCH_serve.json");
    println!("wrote {}", out.display());

    handle.stop().expect("graceful shutdown");
    assert_eq!(errors, 0, "load run hit non-200 responses");
}
