//! `bench_serve` — in-process load generator for the `hl-serve` API.
//!
//! Boots a server on an ephemeral port, warms the shared `EvalCache`
//! with one pass over the request mix, then measures three load modes
//! against `/v1/evaluate` (with a periodic `/v1/healthz`):
//!
//! - **churn** — closed loop, a fresh TCP connection per request (the
//!   pre-keep-alive client behavior; the connection-setup baseline).
//! - **keepalive** — closed loop, one kept-alive connection per client.
//! - **open_loop** — requests fire on a fixed arrival schedule at half
//!   the measured keep-alive throughput, and latency is measured from
//!   the *scheduled* send time, so queueing delay is charged to the
//!   server rather than hidden by client backpressure (no coordinated
//!   omission).
//!
//! Records p50/p90/p99/max latency, throughput, the server-side cache
//! hit rate, and worker queue-wait stats per mode to `BENCH_serve.json`
//! (honoring `HL_BENCH_OUT`, like `bench_sweeps`), and asserts the
//! Prometheus exposition still validates after the load run.
//!
//! A fourth **overload** scenario runs against a second, deliberately
//! constrained server (one worker slowed by a deterministic stall
//! fault, tiny admission queue) with retry-enabled clients, and records
//! how degradation behaves under saturation: server-side shed counts
//! and client-side retry counts land in the report. Its outcomes are
//! reported, not asserted — 503s are the *expected* behavior there, so
//! the `errors == 0` gate stays scoped to the three healthy modes.
//!
//! Environment knobs: `HL_SERVE_BENCH_CLIENTS` (default 4) and
//! `HL_SERVE_BENCH_REQS` (requests per client per mode, default 150).

use std::sync::Arc;
use std::time::{Duration, Instant};

use hl_bench::bench_out_path;
use hl_serve::api::App;
use hl_serve::client::{get_json, post_json, Client, RetryPolicy};
use hl_serve::faults::FaultPlane;
use hl_serve::json::Json;
use hl_serve::server::{Server, ServerConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// The `/v1/evaluate` request mix: every paper design over three degree
/// pairs (so repeats replay from the shared cache, as production clients
/// polling a design space would).
fn request_mix() -> Vec<Json> {
    let mut mix = Vec::new();
    for design in hl_bench::design_names() {
        for (sa, sb) in [(0.5, 0.0), (0.5, 0.5), (0.75, 0.25)] {
            mix.push(Json::Obj(vec![
                ("design".into(), Json::str(&design)),
                ("a_sparsity".into(), Json::Num(sa)),
                ("b_sparsity".into(), Json::Num(sb)),
            ]));
        }
    }
    mix
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

struct ModeStats {
    mode: &'static str,
    latencies: Vec<f64>,
    errors: u64,
    seconds: f64,
}

impl ModeStats {
    fn throughput(&self) -> f64 {
        self.latencies.len() as f64 / self.seconds
    }

    fn to_json(&self) -> Json {
        let mut sorted = self.latencies.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let total = sorted.len();
        let mean = sorted.iter().sum::<f64>() / total.max(1) as f64;
        let round = |v: f64| (v * 1e4).round() / 1e4;
        Json::Obj(vec![
            ("mode".into(), Json::str(self.mode)),
            ("requests".into(), Json::Num(total as f64)),
            ("errors".into(), Json::Num(self.errors as f64)),
            ("seconds".into(), Json::Num(round(self.seconds))),
            (
                "throughput_rps".into(),
                Json::Num((self.throughput() * 10.0).round() / 10.0),
            ),
            (
                "latency_ms".into(),
                Json::Obj(
                    [
                        ("p50", quantile(&sorted, 0.50)),
                        ("p90", quantile(&sorted, 0.90)),
                        ("p99", quantile(&sorted, 0.99)),
                        ("max", sorted.last().copied().unwrap_or(0.0)),
                        ("mean", mean),
                    ]
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), Json::Num(round(v))))
                    .collect(),
                ),
            ),
        ])
    }
}

/// One request of the mix: mostly `/v1/evaluate`, a periodic healthz.
fn fire(client: &mut Client, mix: &[Json], c: usize, i: usize, clients: usize) -> Option<u16> {
    if i % 8 == 7 {
        client.get_json("/v1/healthz").map(|(s, _)| s).ok()
    } else {
        let body = &mix[(c + i * clients) % mix.len()];
        client.post_json("/v1/evaluate", body).map(|(s, _)| s).ok()
    }
}

/// Closed-loop run: `clients` threads, each sending `per_client`
/// back-to-back requests. `keep_alive` picks connection reuse vs a
/// fresh connection per request.
fn closed_loop(
    mode: &'static str,
    addr: &str,
    clients: usize,
    per_client: usize,
    mix: &[Json],
    keep_alive: bool,
) -> ModeStats {
    let t0 = Instant::now();
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(per_client);
                    let mut errs = 0u64;
                    let mut client = Client::new(addr);
                    for i in 0..per_client {
                        let t = Instant::now();
                        let status = if keep_alive {
                            fire(&mut client, mix, c, i, clients)
                        } else if i % 8 == 7 {
                            get_json(addr, "/v1/healthz").map(|(s, _)| s).ok()
                        } else {
                            let body = &mix[(c + i * clients) % mix.len()];
                            post_json(addr, "/v1/evaluate", body).map(|(s, _)| s).ok()
                        };
                        lat.push(t.elapsed().as_secs_f64() * 1000.0);
                        if status != Some(200) {
                            errs += 1;
                        }
                    }
                    (lat, errs)
                })
            })
            .collect();
        for h in handles {
            let (lat, errs) = h.join().expect("client thread panicked");
            latencies.extend(lat);
            errors += errs;
        }
    });
    ModeStats {
        mode,
        latencies,
        errors,
        seconds: t0.elapsed().as_secs_f64(),
    }
}

/// Open-loop run at `rate_rps` total arrivals/s across `clients`
/// threads on kept-alive connections. Latency counts from the scheduled
/// arrival time, so a slow server accrues queueing delay instead of
/// throttling the load.
fn open_loop(
    addr: &str,
    clients: usize,
    per_client: usize,
    mix: &[Json],
    rate_rps: f64,
) -> ModeStats {
    let interval = Duration::from_secs_f64(clients as f64 / rate_rps.max(1.0));
    let t0 = Instant::now();
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(per_client);
                    let mut errs = 0u64;
                    let mut client = Client::new(addr);
                    // Stagger client start so arrivals interleave evenly.
                    let start = Instant::now() + interval.mul_f64(c as f64 / clients as f64);
                    for i in 0..per_client {
                        let scheduled = start + interval.mul_f64(i as f64);
                        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let status = fire(&mut client, mix, c, i, clients);
                        lat.push(scheduled.elapsed().as_secs_f64() * 1000.0);
                        if status != Some(200) {
                            errs += 1;
                        }
                    }
                    (lat, errs)
                })
            })
            .collect();
        for h in handles {
            let (lat, errs) = h.join().expect("client thread panicked");
            latencies.extend(lat);
            errors += errs;
        }
    });
    ModeStats {
        mode: "open_loop",
        latencies,
        errors,
        seconds: t0.elapsed().as_secs_f64(),
    }
}

/// Distinct evaluation bodies (no two coalesce), so a slow worker
/// genuinely backs the queue up instead of the coalescer absorbing it.
fn overload_mix(n: usize) -> Vec<Json> {
    let designs = hl_bench::design_names();
    (0..n)
        .map(|i| {
            Json::Obj(vec![
                ("design".into(), Json::str(&designs[i % designs.len()])),
                ("a_sparsity".into(), Json::Num((i % 19) as f64 / 20.0)),
                ("b_sparsity".into(), Json::Num((i / 19 % 17) as f64 / 20.0)),
            ])
        })
        .collect()
}

/// Saturates a constrained server (one worker stalled on every job, a
/// 2-deep admission queue) with retry-enabled clients and reports how
/// load shedding and client backoff interact. Every request must still
/// resolve — to a 200, or to a 503 after retries are exhausted;
/// anything else is a hard failure.
fn overload_scenario(clients: usize, per_client: usize) -> Json {
    let plane = FaultPlane::parse("seed=1,worker_stall=1.0,stall_ms=3").expect("static fault spec");
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        max_queue: 2,
        faults: Some(Arc::new(plane)),
        ..ServerConfig::default()
    };
    let handle = Server::bind(config, App::new())
        .expect("bind overload server")
        .spawn()
        .expect("spawn overload server");
    let addr = handle.addr().to_string();
    let mix = overload_mix(clients * per_client);

    let t0 = Instant::now();
    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut transport_errors = 0u64;
    let mut retries = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.as_str();
                let mix = &mix;
                scope.spawn(move || {
                    let policy = RetryPolicy {
                        max_retries: 4,
                        base: Duration::from_millis(2),
                        cap: Duration::from_millis(30),
                        seed: c as u64 + 1,
                    };
                    let mut client = Client::new(addr).with_retry(policy);
                    let (mut ok, mut shed, mut errs) = (0u64, 0u64, 0u64);
                    for i in 0..per_client {
                        match client.post_json("/v1/evaluate", &mix[c * per_client + i]) {
                            Ok((200, _)) => ok += 1,
                            Ok((503, _)) => shed += 1,
                            Ok(_) | Err(_) => errs += 1,
                        }
                    }
                    (ok, shed, errs, client.retries())
                })
            })
            .collect();
        for h in handles {
            let (o, s, e, r) = h.join().expect("overload client panicked");
            ok += o;
            shed += s;
            transport_errors += e;
            retries += r;
        }
    });
    let seconds = t0.elapsed().as_secs_f64();

    let (status, metrics) = get_json(&addr, "/v1/metrics").expect("overload /v1/metrics");
    assert_eq!(status, 200);
    let server_shed = metrics.get("shed").cloned().unwrap_or(Json::Null);
    handle.stop().expect("overload server shutdown");

    let total = (clients * per_client) as u64;
    assert_eq!(
        ok + shed + transport_errors,
        total,
        "every overload request must resolve"
    );
    assert_eq!(
        transport_errors, 0,
        "overload must degrade to 503s, not transport failures"
    );
    println!(
        "overload  {total:>6} requests in {seconds:.3} s  \
         ({ok} ok, {shed} shed after retries, {retries} client retries)"
    );
    println!("server shed counters: {}", server_shed.encode());

    let round = |v: f64| (v * 1e3).round() / 1e3;
    Json::Obj(vec![
        ("requests".into(), Json::Num(total as f64)),
        ("ok".into(), Json::Num(ok as f64)),
        ("shed_after_retries".into(), Json::Num(shed as f64)),
        ("client_retries".into(), Json::Num(retries as f64)),
        ("seconds".into(), Json::Num(round(seconds))),
        ("server_shed".into(), server_shed),
    ])
}

fn main() {
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let clients = env_usize("HL_SERVE_BENCH_CLIENTS", 4);
    let per_client = env_usize("HL_SERVE_BENCH_REQS", 150);
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    };
    let workers = config.workers;
    let handle = Server::bind(config, App::new())
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server");
    let addr = handle.addr().to_string();
    println!(
        "bench_serve — {clients} clients x {per_client} requests/mode against {addr} \
         ({workers} workers, {cpus} CPU(s))"
    );

    // Warmup: populate the cache with every distinct point, untimed.
    let mix = request_mix();
    for body in &mix {
        let (status, _) = post_json(&addr, "/v1/evaluate", body).expect("warmup request");
        assert_eq!(status, 200, "warmup must succeed");
    }

    let churn = closed_loop("churn", &addr, clients, per_client, &mix, false);
    let keepalive = closed_loop("keepalive", &addr, clients, per_client, &mix, true);
    // Offer half the measured keep-alive capacity: latencies then show
    // genuine service time + queueing, not saturation artifacts.
    let rate = (keepalive.throughput() * 0.5).max(50.0);
    let open = open_loop(&addr, clients, per_client, &mix, rate);

    for stats in [&churn, &keepalive, &open] {
        let mut sorted = stats.latencies.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        println!(
            "{:<9} {:>6} requests in {:.3} s  ({:>7.0} req/s, {} errors)  \
             p50 {:.3} ms  p99 {:.3} ms",
            stats.mode,
            sorted.len(),
            stats.seconds,
            stats.throughput(),
            stats.errors,
            quantile(&sorted, 0.50),
            quantile(&sorted, 0.99),
        );
    }
    let speedup = keepalive.throughput() / churn.throughput().max(1e-9);
    println!("keep-alive vs churn: {speedup:.2}x throughput");

    let (status, metrics) = get_json(&addr, "/v1/metrics").expect("final /v1/metrics");
    assert_eq!(status, 200);
    let cache = metrics.get("eval_cache").cloned().unwrap_or(Json::Null);
    let reuse = metrics
        .get("connections")
        .and_then(|c| c.get("reuse"))
        .cloned()
        .unwrap_or(Json::Null);
    let queue = metrics.get("queue").cloned().unwrap_or(Json::Null);
    println!("eval cache: {}", cache.encode());
    println!("connection reuse: {}", reuse.encode());
    println!("worker queue: {}", queue.encode());

    // The Prometheus view must stay a well-formed exposition after a
    // full load run (the JSON and text renderers share counters, so a
    // divergence here means a rendering bug, not a load artifact).
    let (status, prom) = Client::new(&addr)
        .send("GET", "/v1/metrics?format=prometheus", None)
        .expect("prometheus scrape");
    assert_eq!(status, 200);
    hl_serve::prom::validate_exposition(&prom).expect("valid exposition after load");

    let overload = overload_scenario(clients.max(6), 25);

    let errors = churn.errors + keepalive.errors + open.errors;
    let report = Json::Obj(vec![
        ("benchmark".into(), Json::str("hl-serve load")),
        ("cpus".into(), Json::Num(cpus as f64)),
        ("workers".into(), Json::Num(workers as f64)),
        ("clients".into(), Json::Num(clients as f64)),
        (
            "requests_per_mode".into(),
            Json::Num((clients * per_client) as f64),
        ),
        ("errors".into(), Json::Num(errors as f64)),
        (
            "keepalive_speedup".into(),
            Json::Num((speedup * 100.0).round() / 100.0),
        ),
        (
            "open_loop_rate_rps".into(),
            Json::Num((rate * 10.0).round() / 10.0),
        ),
        (
            "modes".into(),
            Json::Arr(vec![churn.to_json(), keepalive.to_json(), open.to_json()]),
        ),
        ("eval_cache".into(), cache),
        ("connection_reuse".into(), reuse),
        ("queue".into(), queue),
        ("overload".into(), overload),
    ]);
    let out = bench_out_path("BENCH_serve.json");
    std::fs::write(&out, report.encode() + "\n").expect("write BENCH_serve.json");
    println!("wrote {}", out.display());

    handle.stop().expect("graceful shutdown");
    assert_eq!(errors, 0, "load run hit non-200 responses");
}
