//! A minimal blocking HTTP/1.1 client for the API — used by the
//! `hl-client` CLI, the load bench, and the end-to-end tests.
//!
//! Speaks exactly the slice of HTTP the server emits: status line +
//! headers, then either a `Content-Length` body or chunked transfer
//! encoding.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::json::Json;

/// Client-side I/O timeout.
const TIMEOUT: Duration = Duration::from_secs(10);

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Sends one request and reads the full response.
///
/// # Errors
/// Connection/I/O failures, and malformed responses as
/// [`io::ErrorKind::InvalidData`].
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(TIMEOUT))?;
    stream.set_write_timeout(Some(TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let payload = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len(),
    )?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("malformed status line {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(value.parse().map_err(|_| invalid("bad Content-Length"))?);
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }

    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| invalid(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                let mut trailer = String::new();
                reader.read_line(&mut trailer)?;
                break;
            }
            let start = body.len();
            body.resize(start + size, 0);
            reader.read_exact(&mut body[start..])?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some(n) = content_length {
        body.resize(n, 0);
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }
    let text = String::from_utf8(body).map_err(|_| invalid("response body is not UTF-8"))?;
    Ok((status, text))
}

/// `GET path`, parsing the JSON body.
///
/// # Errors
/// As [`request`], plus JSON parse failures as
/// [`io::ErrorKind::InvalidData`].
pub fn get_json(addr: &str, path: &str) -> io::Result<(u16, Json)> {
    let (status, text) = request(addr, "GET", path, None)?;
    Ok((
        status,
        Json::parse(&text).map_err(|e| invalid(e.to_string()))?,
    ))
}

/// `POST path` with a JSON body, parsing the JSON response.
///
/// # Errors
/// As [`request`], plus JSON parse failures as
/// [`io::ErrorKind::InvalidData`].
pub fn post_json(addr: &str, path: &str, body: &Json) -> io::Result<(u16, Json)> {
    let (status, text) = request(addr, "POST", path, Some(&body.encode()))?;
    Ok((
        status,
        Json::parse(&text).map_err(|e| invalid(e.to_string()))?,
    ))
}
