//! A minimal blocking HTTP/1.1 client for the API — used by the
//! `hl-client` CLI, the load bench, and the end-to-end tests.
//!
//! Speaks exactly the slice of HTTP the server emits: status line +
//! headers, then either a `Content-Length` body or chunked transfer
//! encoding. [`Client`] holds one keep-alive connection and reconnects
//! transparently when the server closes it (idle timeout, drain); the
//! free functions ([`request`], [`get_json`], [`post_json`]) are
//! one-shot `Connection: close` conveniences.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::json::Json;

/// Client-side I/O timeout.
const TIMEOUT: Duration = Duration::from_secs(10);

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A keep-alive connection to the server: requests reuse one TCP
/// connection until the server closes it, then the next request
/// reconnects.
pub struct Client {
    addr: String,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    /// A client for `addr` (`host:port`). No connection is made until
    /// the first request.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            conn: None,
        }
    }

    /// The target address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn connect(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(TIMEOUT))?;
            stream.set_write_timeout(Some(TIMEOUT))?;
            stream.set_nodelay(true)?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Sends one request on the kept-alive connection and reads the full
    /// response. A request that fails to write or to produce a status
    /// line on a *reused* connection is retried once on a fresh one (the
    /// server may have closed the idle connection between requests).
    ///
    /// # Errors
    /// Connection/I/O failures, and malformed responses as
    /// [`io::ErrorKind::InvalidData`].
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let reused = self.conn.is_some();
        match self.try_send(method, path, body) {
            Ok(resp) => Ok(resp),
            Err(e) if reused && is_stale(&e) => {
                self.conn = None;
                self.try_send(method, path, body)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    fn try_send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let addr = self.addr.clone();
        let reader = self.connect()?;
        let payload = body.unwrap_or("");
        {
            let mut writer = reader.get_ref().try_clone()?;
            write!(
                writer,
                "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{payload}",
                payload.len(),
            )?;
            writer.flush()?;
        }
        let (status, text, close) = match read_response(reader) {
            Ok(resp) => resp,
            Err(e) => {
                self.conn = None;
                return Err(e);
            }
        };
        if close {
            self.conn = None;
        }
        Ok((status, text))
    }

    /// `GET path`, parsing the JSON body.
    ///
    /// # Errors
    /// As [`Client::send`], plus JSON parse failures as
    /// [`io::ErrorKind::InvalidData`].
    pub fn get_json(&mut self, path: &str) -> io::Result<(u16, Json)> {
        let (status, text) = self.send("GET", path, None)?;
        Ok((
            status,
            Json::parse(&text).map_err(|e| invalid(e.to_string()))?,
        ))
    }

    /// `POST path` with a JSON body, parsing the JSON response.
    ///
    /// # Errors
    /// As [`Client::send`], plus JSON parse failures as
    /// [`io::ErrorKind::InvalidData`].
    pub fn post_json(&mut self, path: &str, body: &Json) -> io::Result<(u16, Json)> {
        let (status, text) = self.send("POST", path, Some(&body.encode()))?;
        Ok((
            status,
            Json::parse(&text).map_err(|e| invalid(e.to_string()))?,
        ))
    }
}

/// True for errors that plausibly mean "the server closed this
/// keep-alive connection": EOF-shaped and reset-shaped failures.
fn is_stale(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::WriteZero
    )
}

/// Reads one response (status, body, connection-close flag).
fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<(u16, String, bool)> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    if status_line.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a response",
        ));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("malformed status line {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    let mut close = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(value.parse().map_err(|_| invalid("bad Content-Length"))?);
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }

    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| invalid(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                let mut trailer = String::new();
                reader.read_line(&mut trailer)?;
                break;
            }
            let start = body.len();
            body.resize(start + size, 0);
            reader.read_exact(&mut body[start..])?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some(n) = content_length {
        body.resize(n, 0);
        reader.read_exact(&mut body)?;
    } else {
        // No framing: the server signals the end by closing.
        reader.read_to_end(&mut body)?;
        close = true;
    }
    let text = String::from_utf8(body).map_err(|_| invalid("response body is not UTF-8"))?;
    Ok((status, text, close))
}

/// Sends one request on a fresh `Connection: close` connection and reads
/// the full response.
///
/// # Errors
/// Connection/I/O failures, and malformed responses as
/// [`io::ErrorKind::InvalidData`].
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(TIMEOUT))?;
    stream.set_write_timeout(Some(TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let payload = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len(),
    )?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let (status, text, _) = read_response(&mut reader)?;
    Ok((status, text))
}

/// `GET path` on a fresh connection, parsing the JSON body.
///
/// # Errors
/// As [`request`], plus JSON parse failures as
/// [`io::ErrorKind::InvalidData`].
pub fn get_json(addr: &str, path: &str) -> io::Result<(u16, Json)> {
    let (status, text) = request(addr, "GET", path, None)?;
    Ok((
        status,
        Json::parse(&text).map_err(|e| invalid(e.to_string()))?,
    ))
}

/// `POST path` with a JSON body on a fresh connection, parsing the JSON
/// response.
///
/// # Errors
/// As [`request`], plus JSON parse failures as
/// [`io::ErrorKind::InvalidData`].
pub fn post_json(addr: &str, path: &str, body: &Json) -> io::Result<(u16, Json)> {
    let (status, text) = request(addr, "POST", path, Some(&body.encode()))?;
    Ok((
        status,
        Json::parse(&text).map_err(|e| invalid(e.to_string()))?,
    ))
}
