//! A minimal blocking HTTP/1.1 client for the API — used by the
//! `hl-client` CLI, the load bench, and the end-to-end tests.
//!
//! Speaks exactly the slice of HTTP the server emits: status line +
//! headers, then either a `Content-Length` body or chunked transfer
//! encoding. [`Client`] holds one keep-alive connection and reconnects
//! transparently when the server closes it (idle timeout, drain); the
//! free functions ([`request`], [`get_json`], [`post_json`]) are
//! one-shot `Connection: close` conveniences.
//!
//! With a [`RetryPolicy`] attached ([`Client::with_retry`]), the client
//! also retries shed work: a 503 response or a reset-shaped transport
//! error backs off with decorrelated jitter (each sleep is uniform
//! between the base and three times the previous sleep, capped) and a
//! server-provided `Retry-After` raises the sleep floor. Retries are
//! bounded and counted ([`Client::retries`]); evaluation `POST`s are
//! pure, so replaying one is always safe.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::json::Json;

/// Client-side I/O timeout.
const TIMEOUT: Duration = Duration::from_secs(10);

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A bounded retry policy with decorrelated-jitter backoff.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff floor (the first sleep is uniform in `[base, 3·base]`).
    pub base: Duration,
    /// Backoff ceiling; also caps how long a `Retry-After` is honored,
    /// so a pathological server cannot pin the client down.
    pub cap: Duration,
    /// Seed for the jitter stream — deterministic per client, so test
    /// and bench runs are reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            seed: 1,
        }
    }
}

/// One raw response off the wire.
struct RawResponse {
    status: u16,
    text: String,
    retry_after: Option<u64>,
}

/// A keep-alive connection to the server: requests reuse one TCP
/// connection until the server closes it, then the next request
/// reconnects.
pub struct Client {
    addr: String,
    conn: Option<BufReader<TcpStream>>,
    retry: Option<RetryPolicy>,
    /// Jitter stream state (xorshift64*; never zero).
    rng: u64,
    prev_backoff: Duration,
    retries: u64,
    /// `X-Request-Id` echoed on the most recent response, if any.
    last_request_id: Option<String>,
}

impl Client {
    /// A client for `addr` (`host:port`). No connection is made until
    /// the first request.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            conn: None,
            retry: None,
            rng: 1,
            prev_backoff: Duration::ZERO,
            retries: 0,
            last_request_id: None,
        }
    }

    /// Attaches a retry policy: 503s and reset-shaped transport errors
    /// are retried with decorrelated-jitter backoff, honoring
    /// `Retry-After` up to the policy's cap.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.rng = policy.seed.max(1);
        self.prev_backoff = policy.base;
        self.retry = Some(policy);
        self
    }

    /// The target address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// How many retries this client has performed so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The `X-Request-Id` the server echoed on the most recent response
    /// (None before the first request, or if the server sent none).
    /// Lets callers correlate a response with `GET /v1/trace` records
    /// and structured log lines.
    pub fn request_id(&self) -> Option<&str> {
        self.last_request_id.as_deref()
    }

    fn connect(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(TIMEOUT))?;
            stream.set_write_timeout(Some(TIMEOUT))?;
            stream.set_nodelay(true)?;
            return Ok(self.conn.insert(BufReader::new(stream)));
        }
        self.conn
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "no connection"))
    }

    /// The next decorrelated-jitter sleep: uniform between the policy's
    /// base and three times the previous sleep, capped.
    fn next_backoff(&mut self, policy: &RetryPolicy) -> Duration {
        // xorshift64* step; state is never zero.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let unit =
            (self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        let lo = policy.base.as_secs_f64();
        let hi = (self.prev_backoff.as_secs_f64() * 3.0).max(lo);
        let next = (lo + unit * (hi - lo)).min(policy.cap.as_secs_f64());
        self.prev_backoff = Duration::from_secs_f64(next);
        self.prev_backoff
    }

    /// Sends one request on the kept-alive connection and reads the full
    /// response. A request that fails to write or to produce a status
    /// line on a *reused* connection is retried once on a fresh one (the
    /// server may have closed the idle connection between requests).
    /// With a [`RetryPolicy`] attached, 503 responses and reset-shaped
    /// transport errors are additionally retried with backoff.
    ///
    /// # Errors
    /// Connection/I/O failures, and malformed responses as
    /// [`io::ErrorKind::InvalidData`].
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let mut attempt = 0u32;
        loop {
            let outcome = self.send_once(method, path, body);
            let Some(policy) = self.retry.clone() else {
                return outcome.map(|r| (r.status, r.text));
            };
            match outcome {
                Ok(resp) if resp.status == 503 && attempt < policy.max_retries => {
                    attempt += 1;
                    self.retries += 1;
                    let backoff = self.next_backoff(&policy);
                    // Honor Retry-After as a floor, bounded by the cap.
                    let wait = resp
                        .retry_after
                        .map_or(backoff, |s| backoff.max(Duration::from_secs(s)))
                        .min(policy.cap);
                    std::thread::sleep(wait);
                }
                Ok(resp) => return Ok((resp.status, resp.text)),
                Err(e) if is_stale(&e) && attempt < policy.max_retries => {
                    attempt += 1;
                    self.retries += 1;
                    let wait = self.next_backoff(&policy);
                    std::thread::sleep(wait);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One attempt, including the transparent reconnect-once for a
    /// keep-alive connection the server closed while it was idle.
    fn send_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<RawResponse> {
        let reused = self.conn.is_some();
        match self.try_send(method, path, body) {
            Ok(resp) => Ok(resp),
            Err(e) if reused && is_stale(&e) => {
                self.conn = None;
                self.try_send(method, path, body)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    fn try_send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<RawResponse> {
        let addr = self.addr.clone();
        let reader = self.connect()?;
        let payload = body.unwrap_or("");
        {
            let mut writer = reader.get_ref().try_clone()?;
            write!(
                writer,
                "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{payload}",
                payload.len(),
            )?;
            writer.flush()?;
        }
        let (status, text, close, retry_after, request_id) = match read_response(reader) {
            Ok(resp) => resp,
            Err(e) => {
                self.conn = None;
                return Err(e);
            }
        };
        if close {
            self.conn = None;
        }
        self.last_request_id = request_id;
        Ok(RawResponse {
            status,
            text,
            retry_after,
        })
    }

    /// `GET path`, parsing the JSON body.
    ///
    /// # Errors
    /// As [`Client::send`], plus JSON parse failures as
    /// [`io::ErrorKind::InvalidData`].
    pub fn get_json(&mut self, path: &str) -> io::Result<(u16, Json)> {
        let (status, text) = self.send("GET", path, None)?;
        Ok((
            status,
            Json::parse(&text).map_err(|e| invalid(e.to_string()))?,
        ))
    }

    /// `POST path` with a JSON body, parsing the JSON response.
    ///
    /// # Errors
    /// As [`Client::send`], plus JSON parse failures as
    /// [`io::ErrorKind::InvalidData`].
    pub fn post_json(&mut self, path: &str, body: &Json) -> io::Result<(u16, Json)> {
        let (status, text) = self.send("POST", path, Some(&body.encode()))?;
        Ok((
            status,
            Json::parse(&text).map_err(|e| invalid(e.to_string()))?,
        ))
    }
}

/// True for errors that plausibly mean "the server closed this
/// keep-alive connection": EOF-shaped and reset-shaped failures.
fn is_stale(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::WriteZero
    )
}

/// One response off the wire: status, body, connection-close flag, the
/// `Retry-After` seconds if the server sent one, and the echoed
/// `X-Request-Id` if present.
type WireResponse = (u16, String, bool, Option<u64>, Option<String>);

fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<WireResponse> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    if status_line.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a response",
        ));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("malformed status line {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    let mut close = false;
    let mut retry_after: Option<u64> = None;
    let mut request_id: Option<String> = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(value.parse().map_err(|_| invalid("bad Content-Length"))?);
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close")
            {
                close = true;
            } else if name.eq_ignore_ascii_case("retry-after") {
                // Only the delta-seconds form; a date form is ignored.
                retry_after = value.parse().ok();
            } else if name.eq_ignore_ascii_case("x-request-id") {
                request_id = Some(value.to_string());
            }
        }
    }

    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| invalid(format!("bad chunk size {size_line:?}")))?;
            if size == 0 {
                let mut trailer = String::new();
                reader.read_line(&mut trailer)?;
                break;
            }
            let start = body.len();
            body.resize(start + size, 0);
            reader.read_exact(&mut body[start..])?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some(n) = content_length {
        body.resize(n, 0);
        reader.read_exact(&mut body)?;
    } else {
        // No framing: the server signals the end by closing.
        reader.read_to_end(&mut body)?;
        close = true;
    }
    let text = String::from_utf8(body).map_err(|_| invalid("response body is not UTF-8"))?;
    Ok((status, text, close, retry_after, request_id))
}

/// Sends one request on a fresh `Connection: close` connection and reads
/// the full response.
///
/// # Errors
/// Connection/I/O failures, and malformed responses as
/// [`io::ErrorKind::InvalidData`].
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(TIMEOUT))?;
    stream.set_write_timeout(Some(TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let payload = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len(),
    )?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let (status, text, _, _, _) = read_response(&mut reader)?;
    Ok((status, text))
}

/// `GET path` on a fresh connection, parsing the JSON body.
///
/// # Errors
/// As [`request`], plus JSON parse failures as
/// [`io::ErrorKind::InvalidData`].
pub fn get_json(addr: &str, path: &str) -> io::Result<(u16, Json)> {
    let (status, text) = request(addr, "GET", path, None)?;
    Ok((
        status,
        Json::parse(&text).map_err(|e| invalid(e.to_string()))?,
    ))
}

/// `POST path` with a JSON body on a fresh connection, parsing the JSON
/// response.
///
/// # Errors
/// As [`request`], plus JSON parse failures as
/// [`io::ErrorKind::InvalidData`].
pub fn post_json(addr: &str, path: &str, body: &Json) -> io::Result<(u16, Json)> {
    let (status, text) = request(addr, "POST", path, Some(&body.encode()))?;
    Ok((
        status,
        Json::parse(&text).map_err(|e| invalid(e.to_string()))?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_retries: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(80),
            seed,
        }
    }

    fn backoff_series(p: &RetryPolicy, steps: usize) -> Vec<Duration> {
        let mut c = Client::new("127.0.0.1:1").with_retry(p.clone());
        (0..steps).map(|_| c.next_backoff(p)).collect()
    }

    #[test]
    fn backoff_stays_between_base_and_cap() {
        let p = policy(42);
        for (i, d) in backoff_series(&p, 64).iter().enumerate() {
            assert!(*d >= p.base && *d <= p.cap, "step {i}: {d:?}");
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = policy(42);
        assert_eq!(backoff_series(&p, 32), backoff_series(&p, 32));
        let other = policy(43);
        assert_ne!(backoff_series(&p, 32), backoff_series(&other, 32));
    }

    #[test]
    fn backoff_grows_from_the_base_before_capping() {
        // Decorrelated jitter must be able to exceed the base: over a
        // long series, at least one sleep should land above 3x base,
        // which a fixed-interval policy never would.
        let p = policy(7);
        let grew = backoff_series(&p, 64).iter().any(|d| *d > p.base * 3);
        assert!(grew, "backoff never escaped the base neighborhood");
    }

    #[test]
    fn default_policy_is_bounded() {
        let p = RetryPolicy::default();
        assert!(p.max_retries >= 1 && p.max_retries <= 10);
        assert!(p.base > Duration::ZERO && p.base < p.cap);
    }

    #[test]
    fn a_client_without_a_policy_never_counts_retries() {
        let c = Client::new("127.0.0.1:1");
        assert!(c.retry.is_none());
        assert_eq!(c.retries(), 0);
    }
}
