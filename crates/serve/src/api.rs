//! The HTTP API over the sweep engine: route dispatch and handlers.
//!
//! [`App`] owns the long-lived evaluation state — one
//! [`SweepContext`] whose [`hl_sim::engine::EvalCache`] and retention
//! cache are shared by every request the worker pool handles, so repeated
//! `/v1/evaluate` queries replay from the memo instead of recomputing
//! (the rising hit rate is visible in `/v1/metrics`). Handlers parse
//! request bodies through the typed wire structs in [`crate::schema`]
//! and stay pure request → [`Json`] functions; [`ApiError`] carries the
//! 4xx/5xx mapping (rendered as the structured
//! `{"error": {"code": …, "message": …}}` body) and panics are caught
//! and answered with a 500 so one bad request can never take a worker
//! down.
//!
//! Endpoints: `GET /v1/healthz`, `GET /v1/designs`, `GET /v1/metrics`
//! (JSON, or Prometheus text via `?format=prometheus` /
//! `Accept: text/plain`), `GET /v1/models`, `GET /v1/trace` (recent
//! request lifecycles from the [`crate::trace`] ring), `POST
//! /v1/evaluate`, `POST /v1/evaluate_model`, `POST /v1/sweep`, `POST
//! /v1/search`. The legacy unversioned paths remain as byte-identical
//! aliases; each hit increments the `deprecated` counter surfaced in
//! `/v1/metrics`. (`/v1/trace` postdates the aliases and has no
//! unversioned form.)

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use hl_bench::{design_names, operand_b_for, registered_names, try_operand_a_for, SweepContext};
use hl_models::accuracy::PruningConfig;
use hl_sim::engine::SweepGrid;
use hl_sim::{Accelerator, Workload};
use hl_tensor::GemmShape;

use crate::http::{ParseError, Request, Response};
use crate::json::Json;
use crate::log::{Level, Logger};
use crate::metrics::{Metrics, Route, LATENCY_BUCKETS, REUSE_BUCKETS};
use crate::prom;
use crate::schema::{self, ErrorBody, SchemaError};
use crate::trace::{IdGen, TraceQuery, TraceRecord, TraceRing};

pub use crate::schema::{
    eval_result_json, network_eval_json, search_outcome_json, MAX_BUDGET, MAX_DEGREE, MAX_DIM,
    MAX_GROUP_SIZE, MAX_MACS, MAX_SWEEP_ROWS,
};

/// The long-lived serving state shared across the worker pool.
pub struct App {
    ctx: SweepContext,
    metrics: Metrics,
    logger: Logger,
    traces: TraceRing,
    ids: IdGen,
    /// Slow-request threshold in µs; `u64::MAX` disables the slow log.
    slow_us: AtomicU64,
}

impl Default for App {
    fn default() -> Self {
        Self::with_context(SweepContext::default())
    }
}

impl App {
    /// An app over a fresh engine-backed [`SweepContext`] (pool sized by
    /// `HL_THREADS` / available parallelism, memoization on).
    pub fn new() -> Self {
        Self::default()
    }

    /// An app over an explicit context (tests pin thread counts with it).
    pub fn with_context(ctx: SweepContext) -> Self {
        Self {
            ctx,
            metrics: Metrics::new(),
            logger: Logger::new(),
            traces: TraceRing::default(),
            ids: IdGen::new(),
            slow_us: AtomicU64::new(u64::MAX),
        }
    }

    /// The shared evaluation context.
    pub fn context(&self) -> &SweepContext {
        &self.ctx
    }

    /// The server metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The structured JSON-lines logger shared by the serving layer.
    pub fn logger(&self) -> &Logger {
        &self.logger
    }

    /// The completed-request trace ring served at `GET /v1/trace`.
    pub fn traces(&self) -> &TraceRing {
        &self.traces
    }

    /// Resolves a request's trace ID: a well-formed client-supplied
    /// `X-Request-Id` (see [`crate::trace::valid_request_id`]) is
    /// honored and echoed back; anything else gets a generated ID.
    pub fn request_id(&self, header: Option<&str>) -> String {
        match header {
            Some(h) if crate::trace::valid_request_id(h) => h.to_string(),
            _ => self.ids.next_id(),
        }
    }

    /// Sets the `--trace-slow-ms` threshold: completed requests at
    /// least this slow log a `slow_request` warning. `None` disables.
    pub fn set_trace_slow(&self, threshold: Option<Duration>) {
        let us = threshold.map_or(u64::MAX, |d| {
            u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
        });
        self.slow_us.store(us, Ordering::Relaxed);
    }

    /// Records a completed request lifecycle: stamps the start offset
    /// from the total, pushes the ring, and emits the per-request
    /// (debug) or slow-request (warn) structured log event.
    pub fn observe_trace(&self, mut rec: TraceRecord) {
        rec.started_s = (self.metrics.uptime_s() - rec.total_us as f64 / 1e6).max(0.0);
        let slow = rec.total_us >= self.slow_us.load(Ordering::Relaxed);
        let level = if slow { Level::Warn } else { Level::Debug };
        if self.logger.enabled(level) {
            self.logger.log(
                level,
                if slow { "slow_request" } else { "request" },
                &[
                    ("trace_id", Json::str(rec.id.clone())),
                    ("route", Json::str(rec.route)),
                    ("status", Json::Num(f64::from(rec.status))),
                    ("outcome", Json::str(rec.outcome)),
                    ("duration_ms", Json::Num(rec.total_us as f64 / 1000.0)),
                    ("queue_ms", Json::Num(rec.queue_us as f64 / 1000.0)),
                    ("eval_ms", Json::Num(rec.eval_us as f64 / 1000.0)),
                ],
            );
        }
        self.traces.push(rec);
    }

    /// Handles one parsed request: dispatch, panic containment, metrics
    /// (including the deprecated-alias counter for unversioned paths).
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_traced(req).0
    }

    /// [`App::handle`], also reporting whether the handler panicked —
    /// the serving layer quarantines a request body whose evaluation
    /// keeps panicking instead of feeding it to the pool again.
    pub fn handle_traced(&self, req: &Request) -> (Response, bool) {
        let t0 = Instant::now();
        let (route, deprecated) = Route::resolve(&req.path);
        if deprecated {
            self.metrics.record_deprecated_route();
        }
        let (resp, panicked) = match panic::catch_unwind(AssertUnwindSafe(|| self.dispatch(req))) {
            Ok(Ok(resp)) => (resp, false),
            Ok(Err(e)) => (e.into_response(), false),
            Err(_) => (ApiError::internal("handler panicked").into_response(), true),
        };
        self.metrics.record(route, resp.status, t0.elapsed());
        (resp, panicked)
    }

    /// Answers a request that failed HTTP parsing (counted, but kept out
    /// of the latency histogram — no handler ran).
    pub fn handle_parse_error(&self, err: &ParseError) -> Response {
        let resp = ApiError {
            status: err.status,
            message: err.reason.clone(),
        }
        .into_response();
        self.metrics.record_unmeasured(Route::Other, resp.status);
        resp
    }

    fn dispatch(&self, req: &Request) -> Result<Response, ApiError> {
        // `/v1/<route>` is canonical; the bare legacy path is an alias
        // that must answer byte-identically, so both converge here.
        // `/v1/trace` guards on the raw path: it has no legacy alias, so
        // bare `/trace` falls through to the 404 arm.
        let path = canonical_path(&req.path);
        match (req.method.as_str(), path) {
            ("GET", "/healthz") => Ok(ok_json(self.healthz())),
            ("GET", "/designs") => Ok(ok_json(designs_json())),
            ("GET", "/metrics") => self.metrics_response(req),
            ("GET", "/models") => Ok(ok_json(models_json())),
            ("GET", "/trace") if req.path.starts_with("/v1/") => {
                self.trace_endpoint(req).map(ok_json)
            }
            ("POST", "/evaluate") => self.evaluate(&req.body).map(ok_json),
            ("POST", "/evaluate_model") => self.evaluate_model(&req.body).map(ok_json),
            ("POST", "/sweep") => self.sweep(&req.body).map(ok_json),
            ("POST", "/search") => self.search(&req.body).map(ok_json),
            (_, "/trace") if req.path.starts_with("/v1/") => {
                Err(ApiError::method_not_allowed("GET"))
            }
            (_, "/healthz" | "/designs" | "/metrics" | "/models") => {
                Err(ApiError::method_not_allowed("GET"))
            }
            (_, "/evaluate" | "/evaluate_model" | "/sweep" | "/search") => {
                Err(ApiError::method_not_allowed("POST"))
            }
            _ => Err(ApiError::not_found(&req.path)),
        }
    }

    /// `GET /v1/metrics` with content negotiation: `?format=prometheus`
    /// (or an `Accept` header naming `text/plain` when no explicit
    /// `format` is given) selects the Prometheus text exposition;
    /// everything else gets the historical JSON view.
    fn metrics_response(&self, req: &Request) -> Result<Response, ApiError> {
        if wants_prometheus(req)? {
            Ok(Response {
                status: 200,
                content_type: prom::CONTENT_TYPE,
                body: self.render_prometheus().into_bytes(),
                retry_after: None,
            })
        } else {
            Ok(ok_json(self.metrics_json()))
        }
    }

    /// `GET /v1/trace`: recent completed request lifecycles, newest
    /// last, filtered by [`TraceQuery`] (`limit`, `route`, `min_ms`).
    fn trace_endpoint(&self, req: &Request) -> Result<Json, ApiError> {
        let q = TraceQuery::parse(&req.query).map_err(ApiError::bad_request)?;
        let snap = self.traces.snapshot();
        let mut recs: Vec<&TraceRecord> = snap.iter().filter(|r| q.matches(r)).collect();
        if recs.len() > q.limit {
            recs.drain(..recs.len() - q.limit);
        }
        Ok(Json::Obj(vec![
            ("count".into(), Json::Num(recs.len() as f64)),
            ("capacity".into(), Json::Num(self.traces.capacity() as f64)),
            ("dropped".into(), Json::Num(self.traces.dropped() as f64)),
            (
                "traces".into(),
                Json::Arr(recs.iter().map(|r| r.to_json()).collect()),
            ),
        ]))
    }

    fn healthz(&self) -> Json {
        Json::Obj(vec![
            ("status".into(), Json::str("ok")),
            ("uptime_s".into(), Json::Num(self.metrics.uptime_s())),
            (
                "threads".into(),
                Json::Num(self.ctx.engine().threads() as f64),
            ),
            ("designs".into(), Json::Num(registered_names().len() as f64)),
        ])
    }

    fn metrics_json(&self) -> Json {
        let mut requests = vec![
            (
                "total".into(),
                Json::Num(self.metrics.total_requests() as f64),
            ),
            (
                "coalesced".into(),
                Json::Num(self.metrics.coalesced() as f64),
            ),
            (
                "deprecated".into(),
                Json::Num(self.metrics.deprecated_routes() as f64),
            ),
        ];
        for r in Route::ALL {
            requests.push((
                r.label().into(),
                Json::Num(self.metrics.requests_for(r) as f64),
            ));
        }
        let (s2, s3, s4, s5, s_other) = self.metrics.status_counts_full();
        let (panics, respawns, quarantined) = self.metrics.worker_counts();
        let (shed_deadline, shed_overload) = self.metrics.shed_counts();
        let (accepted, closed) = self.metrics.connection_counts();
        let reuse = self.metrics.reuse();
        let cache = self.ctx.engine().eval_cache();
        let (hits, misses) = (cache.hits(), cache.misses());
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        let (ret_hits, ret_misses) = self.ctx.retention_stats();
        let ret_rate = if ret_hits + ret_misses == 0 {
            0.0
        } else {
            ret_hits as f64 / (ret_hits + ret_misses) as f64
        };
        let lat = self.metrics.latency();
        let wait = self.metrics.queue_wait();
        Json::Obj(vec![
            ("uptime_s".into(), Json::Num(self.metrics.uptime_s())),
            (
                "threads".into(),
                Json::Num(self.ctx.engine().threads() as f64),
            ),
            ("requests".into(), Json::Obj(requests)),
            (
                "responses".into(),
                Json::Obj(vec![
                    ("2xx".into(), Json::Num(s2 as f64)),
                    ("3xx".into(), Json::Num(s3 as f64)),
                    ("4xx".into(), Json::Num(s4 as f64)),
                    ("5xx".into(), Json::Num(s5 as f64)),
                    ("other".into(), Json::Num(s_other as f64)),
                    (
                        "rejected_busy".into(),
                        Json::Num(self.metrics.busy_rejections() as f64),
                    ),
                ]),
            ),
            (
                "workers".into(),
                Json::Obj(vec![
                    ("panics".into(), Json::Num(panics as f64)),
                    ("respawns".into(), Json::Num(respawns as f64)),
                    ("quarantined".into(), Json::Num(quarantined as f64)),
                ]),
            ),
            (
                "shed".into(),
                Json::Obj(vec![
                    ("deadline".into(), Json::Num(shed_deadline as f64)),
                    ("overload".into(), Json::Num(shed_overload as f64)),
                ]),
            ),
            (
                "connections".into(),
                Json::Obj(vec![
                    ("accepted".into(), Json::Num(accepted as f64)),
                    ("closed".into(), Json::Num(closed as f64)),
                    (
                        "active".into(),
                        Json::Num(self.metrics.active_connections() as f64),
                    ),
                    (
                        "reuse".into(),
                        Json::Obj(vec![
                            ("count".into(), Json::Num(reuse.count() as f64)),
                            ("mean_requests".into(), Json::Num(reuse.mean())),
                            (
                                "histogram".into(),
                                Json::Arr(
                                    reuse
                                        .nonzero_buckets()
                                        .into_iter()
                                        .map(|(ge, n)| {
                                            Json::Obj(vec![
                                                ("ge".into(), Json::Num(ge as f64)),
                                                ("count".into(), Json::Num(n as f64)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    ),
                ]),
            ),
            (
                "eval_cache".into(),
                Json::Obj(vec![
                    ("entries".into(), Json::Num(cache.len() as f64)),
                    ("hits".into(), Json::Num(hits as f64)),
                    ("misses".into(), Json::Num(misses as f64)),
                    ("hit_rate".into(), Json::Num(hit_rate)),
                ]),
            ),
            (
                "retention_cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::Num(ret_hits as f64)),
                    ("misses".into(), Json::Num(ret_misses as f64)),
                    ("hit_rate".into(), Json::Num(ret_rate)),
                ]),
            ),
            (
                "queue".into(),
                Json::Obj(vec![
                    ("depth".into(), Json::Num(self.metrics.queue_depth() as f64)),
                    (
                        // A new view, so it uses the interpolated
                        // quantile estimator from the start.
                        "wait_ms".into(),
                        Json::Obj(vec![
                            ("count".into(), Json::Num(wait.count() as f64)),
                            ("mean".into(), Json::Num(wait.mean_ms())),
                            ("p50".into(), Json::Num(wait.quantile_ms(0.50))),
                            ("p90".into(), Json::Num(wait.quantile_ms(0.90))),
                            ("p99".into(), Json::Num(wait.quantile_ms(0.99))),
                        ]),
                    ),
                ]),
            ),
            (
                "latency_ms".into(),
                Json::Obj(vec![
                    ("count".into(), Json::Num(lat.count() as f64)),
                    ("mean".into(), Json::Num(lat.mean_ms())),
                    // The historical upper-edge estimator, byte-compat
                    // with every prior release of this view; the
                    // interpolated estimate rides alongside as `*_est`.
                    ("p50".into(), Json::Num(lat.quantile_ms_upper_edge(0.50))),
                    ("p90".into(), Json::Num(lat.quantile_ms_upper_edge(0.90))),
                    ("p99".into(), Json::Num(lat.quantile_ms_upper_edge(0.99))),
                    ("p50_est".into(), Json::Num(lat.quantile_ms(0.50))),
                    ("p90_est".into(), Json::Num(lat.quantile_ms(0.90))),
                    ("p99_est".into(), Json::Num(lat.quantile_ms(0.99))),
                ]),
            ),
        ])
    }

    /// The Prometheus text exposition (format 0.0.4) of every series in
    /// the JSON metrics view — counters and gauges one-to-one, the two
    /// log₂ histograms as cumulative-bucket histogram families.
    pub fn render_prometheus(&self) -> String {
        let m = &self.metrics;
        let mut e = prom::Exposition::new();
        e.gauge(
            "hl_uptime_seconds",
            "Seconds since the server started.",
            m.uptime_s(),
        );
        e.gauge(
            "hl_threads",
            "Evaluation engine worker threads.",
            self.ctx.engine().threads() as f64,
        );
        let route_samples: Vec<(&str, f64)> = Route::ALL
            .iter()
            .map(|r| (r.label(), m.requests_for(*r) as f64))
            .collect();
        e.counter_vec(
            "hl_requests_total",
            "Requests handled, by route.",
            "route",
            &route_samples,
        );
        e.counter(
            "hl_requests_coalesced_total",
            "Requests answered by joining an identical in-flight computation.",
            m.coalesced() as f64,
        );
        e.counter(
            "hl_requests_deprecated_total",
            "Requests that arrived on a deprecated legacy route alias.",
            m.deprecated_routes() as f64,
        );
        let (s2, s3, s4, s5, s_other) = m.status_counts_full();
        e.counter_vec(
            "hl_responses_total",
            "Responses by status class.",
            "class",
            &[
                ("2xx", s2 as f64),
                ("3xx", s3 as f64),
                ("4xx", s4 as f64),
                ("5xx", s5 as f64),
                ("other", s_other as f64),
            ],
        );
        e.counter(
            "hl_responses_rejected_busy_total",
            "Connections shed with 503 at the connection cap.",
            m.busy_rejections() as f64,
        );
        let (panics, respawns, quarantined) = m.worker_counts();
        e.counter(
            "hl_worker_panics_total",
            "Worker threads killed by a panic.",
            panics as f64,
        );
        e.counter(
            "hl_worker_respawns_total",
            "Dead workers respawned by the supervisor.",
            respawns as f64,
        );
        e.counter(
            "hl_workers_quarantined_total",
            "Requests answered from quarantine.",
            quarantined as f64,
        );
        let (shed_deadline, shed_overload) = m.shed_counts();
        e.counter_vec(
            "hl_shed_total",
            "Requests shed, by reason.",
            "reason",
            &[
                ("deadline", shed_deadline as f64),
                ("overload", shed_overload as f64),
            ],
        );
        let (accepted, closed) = m.connection_counts();
        e.counter(
            "hl_connections_accepted_total",
            "Connections accepted.",
            accepted as f64,
        );
        e.counter(
            "hl_connections_closed_total",
            "Connections closed.",
            closed as f64,
        );
        e.gauge(
            "hl_connections_active",
            "Connections currently open.",
            m.active_connections() as f64,
        );
        let reuse = m.reuse();
        let reuse_edges: Vec<f64> = (0..REUSE_BUCKETS)
            .map(|i| (1u64 << (i + 1)) as f64)
            .collect();
        e.histogram(
            "hl_connection_requests",
            "Requests served per closed connection.",
            &reuse_edges,
            &reuse.bucket_counts(),
            reuse.sum() as f64,
        );
        let cache = self.ctx.engine().eval_cache();
        e.gauge(
            "hl_eval_cache_entries",
            "Entries in the shared evaluation cache.",
            cache.len() as f64,
        );
        let (hits, misses) = cache.stats();
        e.counter("hl_eval_cache_hits_total", "Eval cache hits.", hits as f64);
        e.counter(
            "hl_eval_cache_misses_total",
            "Eval cache misses.",
            misses as f64,
        );
        let (ret_hits, ret_misses) = self.ctx.retention_stats();
        e.counter(
            "hl_retention_cache_hits_total",
            "Retention (surrogate accuracy) cache hits.",
            ret_hits as f64,
        );
        e.counter(
            "hl_retention_cache_misses_total",
            "Retention (surrogate accuracy) cache misses.",
            ret_misses as f64,
        );
        // log₂ µs buckets exported in seconds: upper edge 2^(i+1) µs.
        let latency_edges: Vec<f64> = (0..LATENCY_BUCKETS)
            .map(|i| (1u64 << (i + 1)) as f64 / 1e6)
            .collect();
        let lat = m.latency();
        e.histogram(
            "hl_request_latency_seconds",
            "Request handling latency.",
            &latency_edges,
            &lat.bucket_counts(),
            lat.sum_us() as f64 / 1e6,
        );
        e.gauge(
            "hl_queue_depth",
            "Jobs waiting in the worker queue.",
            m.queue_depth() as f64,
        );
        let wait = m.queue_wait();
        e.histogram(
            "hl_queue_wait_seconds",
            "Time between enqueue and worker pickup.",
            &latency_edges,
            &wait.bucket_counts(),
            wait.sum_us() as f64 / 1e6,
        );
        e.finish()
    }

    fn evaluate(&self, body: &[u8]) -> Result<Json, ApiError> {
        let req = schema::EvaluateRequest::from_body(body)?;
        let design = hl_bench::design_by_name(&req.design)
            .map_err(|e| ApiError::bad_request(e.to_string()))?;
        let workload = build_workload(design.name(), req.shape, req.a_sparsity, req.b_sparsity)
            .map_err(|e| ApiError::bad_request(e.to_string()))?;

        let mut members = vec![
            ("design".into(), Json::str(design.name())),
            ("workload".into(), Json::str(&workload.name)),
            ("shape".into(), schema::shape_json(req.shape)),
            ("a".into(), Json::str(workload.a.to_string())),
            ("b".into(), Json::str(workload.b.to_string())),
        ];
        match self.ctx.evaluate_best(design.as_ref(), &workload) {
            Ok(result) => {
                members.push(("supported".into(), Json::Bool(true)));
                members.push(("result".into(), eval_result_json(&result)));
            }
            Err(unsupported) => {
                members.push(("supported".into(), Json::Bool(false)));
                members.push(("reason".into(), Json::str(unsupported.to_string())));
            }
        }
        Ok(Json::Obj(members))
    }

    fn evaluate_model(&self, body: &[u8]) -> Result<Json, ApiError> {
        let req = schema::EvaluateModelRequest::from_body(body)?;
        let design = hl_bench::design_by_name(&req.design)
            .map_err(|e| ApiError::bad_request(e.to_string()))?;
        let model = hl_models::model_by_name(&req.model)
            .map_err(|e| ApiError::bad_request(e.to_string()))?;
        let pruning = req.pruning;

        let eval = self.ctx.eval_network(design.as_ref(), &model, &pruning);
        let loss = self.ctx.accuracy_loss(&model, &pruning);
        Ok(Json::Obj(vec![
            ("design".into(), Json::str(design.name())),
            ("model".into(), Json::str(&model.name)),
            ("metric".into(), Json::str(model.metric)),
            ("pruning".into(), Json::str(pruning.to_string())),
            ("weight_sparsity".into(), Json::Num(pruning.sparsity())),
            ("accuracy_loss".into(), Json::Num(loss)),
            ("supported".into(), Json::Bool(eval.supported())),
            ("network".into(), network_eval_json(&eval)),
        ]))
    }

    fn search(&self, body: &[u8]) -> Result<Json, ApiError> {
        let req = schema::SearchRequest::from_body(body)?;
        let design = hl_bench::design_by_name(&req.design)
            .map_err(|e| ApiError::bad_request(e.to_string()))?;
        let model = hl_models::model_by_name(&req.model)
            .map_err(|e| ApiError::bad_request(e.to_string()))?;

        let outcome = self
            .ctx
            .try_codesign(design.as_ref(), &model, req.budget)
            .map_err(|e| ApiError::bad_request(e.to_string()))?;
        Ok(search_outcome_json(&outcome))
    }

    fn sweep(&self, body: &[u8]) -> Result<Json, ApiError> {
        let req = schema::SweepRequest::from_body(body)?;
        let names: Vec<String> = req.designs.unwrap_or_else(design_names);
        let designs: Vec<Box<dyn Accelerator>> = names
            .iter()
            .map(|n| hl_bench::design_by_name(n).map_err(|e| ApiError::bad_request(e.to_string())))
            .collect::<Result<_, _>>()?;
        let a_degrees = req.a_degrees.unwrap_or_else(|| hl_bench::fig13_degrees().0);
        let b_degrees = req.b_degrees.unwrap_or_else(|| hl_bench::fig13_degrees().1);
        let shape = req.shape;
        let limit = req.limit.map_or(MAX_SWEEP_ROWS, |n| n.min(MAX_SWEEP_ROWS));

        let mut grid = SweepGrid::new(&designs);
        let mut degrees = Vec::new();
        'outer: for &sa in &a_degrees {
            for &sb in &b_degrees {
                if degrees.len() == limit {
                    break 'outer;
                }
                degrees.push((sa, sb));
                grid.try_push_row_with(|d| {
                    build_workload(d.name(), shape, sa, sb)
                        .map_err(|e| ApiError::bad_request(e.to_string()))
                })?;
            }
        }
        let rows_total = a_degrees.len() * b_degrees.len();
        let rows = grid.run(self.ctx.engine());

        let row_objs: Vec<Json> = degrees
            .iter()
            .zip(&rows)
            .map(|((sa, sb), results)| {
                Json::Obj(vec![
                    ("a_sparsity".into(), Json::Num(*sa)),
                    ("b_sparsity".into(), Json::Num(*sb)),
                    (
                        "results".into(),
                        Json::Arr(
                            results
                                .iter()
                                .map(|r| r.as_ref().map_or(Json::Null, eval_result_json))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Ok(Json::Obj(vec![
            ("shape".into(), schema::shape_json(shape)),
            (
                "designs".into(),
                Json::Arr(names.iter().map(Json::str).collect()),
            ),
            ("rows_total".into(), Json::Num(rows_total as f64)),
            ("rows_returned".into(), Json::Num(row_objs.len() as f64)),
            ("truncated".into(), Json::Bool(row_objs.len() < rows_total)),
            ("rows".into(), Json::Arr(row_objs)),
        ]))
    }
}

/// Wraps a handler's JSON payload as the canonical 200 response.
fn ok_json(json: Json) -> Response {
    Response::json(200, json.encode())
}

/// Content negotiation for `GET /v1/metrics`: an explicit
/// `format=prometheus|json` query parameter wins; without one, an
/// `Accept` header naming `text/plain` selects Prometheus.
fn wants_prometheus(req: &Request) -> Result<bool, ApiError> {
    for pair in req.query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if key == "format" {
            return match value {
                "prometheus" => Ok(true),
                "json" => Ok(false),
                other => Err(ApiError::bad_request(format!(
                    "unknown metrics format {other:?}; use \"json\" or \"prometheus\""
                ))),
            };
        }
    }
    Ok(req
        .header("accept")
        .is_some_and(|a| a.contains("text/plain")))
}

/// Strips the `/v1` version prefix, leaving legacy paths untouched:
/// `/v1/evaluate` and `/evaluate` dispatch to the same handler (the
/// alias is byte-identical by construction).
fn canonical_path(path: &str) -> &str {
    match path.strip_prefix("/v1") {
        Some(rest) if rest.starts_with('/') => rest,
        _ => path,
    }
}

/// The `GET /v1/designs` payload: every registered design with its
/// Table 3/4 identity.
pub fn designs_json() -> Json {
    let designs: Vec<Json> = registered_names()
        .iter()
        .filter_map(|name| {
            // The registry returned this name, so the lookup succeeds
            // in any consistent build; skip rather than panic if the
            // two ever drift.
            let d = hl_bench::design_by_name(name).ok()?;
            let area = d.area();
            Some(Json::Obj(vec![
                ("name".into(), Json::str(d.name())),
                (
                    "supported_patterns".into(),
                    Json::str(d.supported_patterns()),
                ),
                ("swappable".into(), Json::Bool(d.swappable())),
                ("area_mm2".into(), Json::Num(area.total() / 1e6)),
                (
                    "sparsity_tax_mm2".into(),
                    Json::Num(area.sparsity_tax() / 1e6),
                ),
            ]))
        })
        .collect();
    Json::Obj(vec![("designs".into(), Json::Arr(designs))])
}

/// The `GET /v1/models` payload: every registered model with its
/// inventory summary.
pub fn models_json() -> Json {
    let models: Vec<Json> = hl_models::model_names()
        .iter()
        .filter_map(|name| {
            // As in `designs_json`: a name the registry itself returned
            // resolves in any consistent build; skip on drift.
            let m = hl_models::model_by_name(name).ok()?;
            Some(Json::Obj(vec![
                ("name".into(), Json::str(&m.name)),
                ("metric".into(), Json::str(m.metric)),
                ("dense_accuracy".into(), Json::Num(m.dense_accuracy)),
                ("layer_shapes".into(), Json::Num(m.layers.len() as f64)),
                ("gmacs".into(), Json::Num(m.total_macs() / 1e9)),
                ("prunable_fraction".into(), Json::Num(m.prunable_fraction())),
                (
                    "avg_activation_sparsity".into(),
                    Json::Num(m.avg_activation_sparsity()),
                ),
                ("has_dense_layers".into(), Json::Bool(m.has_dense_layers())),
            ]))
        })
        .collect();
    Json::Obj(vec![("models".into(), Json::Arr(models))])
}

/// Parses the `/v1/evaluate_model` `"pruning"` field into a
/// [`PruningConfig`] (see [`schema::pruning_spec`] for the grammar).
///
/// # Errors
/// [`ApiError::bad_request`] with the grammar/range message.
pub fn pruning_from(v: Option<&Json>) -> Result<PruningConfig, ApiError> {
    schema::pruning_spec(v).map_err(ApiError::from)
}

/// Builds the co-designed workload for one `(design, shape, degrees)`
/// point, named exactly like [`Workload::synthetic`] labels its points.
///
/// # Errors
/// [`hl_bench::UnknownDesign`] when the name is not registered.
pub fn build_workload(
    design: &str,
    shape: GemmShape,
    a_sparsity: f64,
    b_sparsity: f64,
) -> Result<Workload, hl_bench::UnknownDesign> {
    let a = try_operand_a_for(design, a_sparsity)?;
    let b = operand_b_for(design, b_sparsity);
    let name = format!("A[{a}] B[{b}]");
    Ok(Workload::new(name, shape, a, b))
}

/// An API failure: status code plus message, rendered as the structured
/// `{"error": {"code": …, "message": …}}` body (the code derives from
/// the status via [`schema::error_code`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Human-readable message.
    pub message: String,
}

impl ApiError {
    /// 400 with a message.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    /// 404 listing the available routes.
    pub fn not_found(path: &str) -> Self {
        Self {
            status: 404,
            message: format!(
                "no route {path}; available: GET /v1/healthz, GET /v1/designs, \
                 GET /v1/metrics, GET /v1/models, GET /v1/trace, POST /v1/evaluate, \
                 POST /v1/evaluate_model, POST /v1/sweep, POST /v1/search"
            ),
        }
    }

    /// 405 naming the allowed method.
    pub fn method_not_allowed(allowed: &str) -> Self {
        Self {
            status: 405,
            message: format!("method not allowed; use {allowed}"),
        }
    }

    /// 500 with a message.
    pub fn internal(message: impl Into<String>) -> Self {
        Self {
            status: 500,
            message: message.into(),
        }
    }

    /// The JSON error response.
    pub fn into_response(self) -> Response {
        let body = ErrorBody::new(self.status, self.message).to_json().encode();
        Response::json(self.status, body)
    }
}

impl From<SchemaError> for ApiError {
    fn from(e: SchemaError) -> Self {
        ApiError::bad_request(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_sparsity::{Gh, HssPattern};

    fn post(app: &App, path: &str, body: &str) -> (u16, Json) {
        let req = Request {
            method: "POST".into(),
            path: path.into(),
            query: String::new(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
        };
        let resp = app.handle(&req);
        let json = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        (resp.status, json)
    }

    fn get(app: &App, path: &str) -> (u16, Json) {
        let req = Request {
            method: "GET".into(),
            path: path.into(),
            query: String::new(),
            headers: vec![],
            body: vec![],
        };
        let resp = app.handle(&req);
        let json = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        (resp.status, json)
    }

    fn test_app() -> App {
        App::with_context(SweepContext::with_engine(hl_sim::engine::Engine::serial()))
    }

    fn err_msg(v: &Json) -> &str {
        v.get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap()
    }

    fn err_code(v: &Json) -> &str {
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap()
    }

    #[test]
    fn healthz_and_designs() {
        let app = test_app();
        let (status, v) = get(&app, "/v1/healthz");
        assert_eq!(status, 200);
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        let (status, v) = get(&app, "/v1/designs");
        assert_eq!(status, 200);
        let designs = v.get("designs").and_then(Json::as_arr).unwrap();
        assert_eq!(designs.len(), registered_names().len());
        assert_eq!(
            designs[0].get("name").and_then(Json::as_str),
            Some("TC"),
            "registry order"
        );
    }

    #[test]
    fn legacy_aliases_are_byte_identical_and_counted() {
        let app = test_app();
        for (method, path, body) in [
            ("GET", "/designs", ""),
            ("GET", "/models", ""),
            (
                "POST",
                "/evaluate",
                r#"{"design":"HighLight","m":64,"k":64,"n":64}"#,
            ),
            ("POST", "/evaluate", r#"{"design":"TC","m":0}"#),
            ("GET", "/nope", ""),
        ] {
            let versioned = format!("/v1{path}");
            let (legacy, v1) = if method == "GET" {
                (get(&app, path), get(&app, &versioned))
            } else {
                (post(&app, path, body), post(&app, &versioned, body))
            };
            assert_eq!(legacy.0, v1.0, "{method} {path}");
            if path == "/nope" {
                // The 404 echoes the request path; everything else in the
                // body (code, route list) is shared.
                assert_eq!(legacy.0, 404);
                assert_eq!(err_code(&legacy.1), err_code(&v1.1));
            } else {
                assert_eq!(legacy.1.encode(), v1.1.encode(), "{method} {path}");
            }
        }
        // Only hits on known legacy paths count as deprecated: 4 above
        // (the unknown path is not an alias of anything).
        assert_eq!(app.metrics().deprecated_routes(), 4);
        let (_, m) = get(&app, "/v1/metrics");
        let deprecated = m
            .get("requests")
            .and_then(|r| r.get("deprecated"))
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(deprecated, 4.0);
    }

    #[test]
    fn evaluate_matches_offline_and_hits_cache() {
        let app = test_app();
        let body = r#"{"design":"HighLight","a_sparsity":0.5,"b_sparsity":0.25}"#;
        let (status, v) = post(&app, "/v1/evaluate", body);
        assert_eq!(status, 200);
        assert_eq!(v.get("supported").and_then(Json::as_bool), Some(true));
        // Byte-identical to the offline evaluation through the same view.
        let design = hl_bench::design_by_name("HighLight").unwrap();
        let w = build_workload("HighLight", GemmShape::new(1024, 1024, 1024), 0.5, 0.25).unwrap();
        let offline = hl_sim::evaluate_best(design.as_ref(), &w).unwrap();
        assert_eq!(
            v.get("result").unwrap().encode(),
            eval_result_json(&offline).encode()
        );
        // Second identical request must hit the shared cache.
        let misses_before = app.context().engine().eval_cache().misses();
        let hits_before = app.context().engine().eval_cache().hits();
        let (status, v2) = post(&app, "/v1/evaluate", body);
        assert_eq!(status, 200);
        assert_eq!(v2.encode(), v.encode(), "replayed response is identical");
        assert_eq!(app.context().engine().eval_cache().misses(), misses_before);
        assert!(app.context().engine().eval_cache().hits() > hits_before);
    }

    #[test]
    fn evaluate_reports_unsupported_workloads() {
        let app = test_app();
        // S2TA cannot run a dense operand A.
        let (status, v) = post(&app, "/v1/evaluate", r#"{"design":"S2TA"}"#);
        assert_eq!(status, 200);
        assert_eq!(v.get("supported").and_then(Json::as_bool), Some(false));
        assert!(v.get("reason").and_then(Json::as_str).is_some());
    }

    #[test]
    fn evaluate_rejects_bad_requests() {
        let app = test_app();
        for (body, needle) in [
            ("", "JSON object"),
            ("[1,2]", "JSON object"),
            ("{\"design\":\"TC\"", "invalid JSON"),
            ("{}", "missing required field"),
            (r#"{"design":"TPU"}"#, "unknown design"),
            (r#"{"design":42}"#, "must be a string"),
            (r#"{"design":"TC","a_sparsity":1.5}"#, "sparsity degree"),
            (r#"{"design":"TC","a_sparsity":-0.5}"#, "sparsity degree"),
            (r#"{"design":"TC","m":0}"#, "at least 1"),
            (r#"{"design":"TC","m":2.5}"#, "integer"),
            (
                // Each dimension passes the per-dim cap, but the MAC
                // product would overflow u64 arithmetic.
                r#"{"design":"TC","m":67108864,"k":67108864,"n":67108864}"#,
                "dense MACs",
            ),
            (r#"{"design":"TC","bogus":1}"#, "unknown field"),
        ] {
            let (status, v) = post(&app, "/v1/evaluate", body);
            assert_eq!(status, 400, "{body}");
            assert_eq!(err_code(&v), "bad_request", "{body}");
            let msg = err_msg(&v);
            assert!(msg.contains(needle), "{body}: {msg}");
        }
    }

    #[test]
    fn sweep_runs_truncates_and_validates() {
        let app = test_app();
        let (status, v) = post(
            &app,
            "/v1/sweep",
            r#"{"designs":["TC","HighLight"],"a_degrees":[0,0.5],"b_degrees":[0,0.5],"limit":3,"m":64,"k":64,"n":64}"#,
        );
        assert_eq!(status, 200);
        assert_eq!(v.get("rows_total").and_then(Json::as_f64), Some(4.0));
        assert_eq!(v.get("rows_returned").and_then(Json::as_f64), Some(3.0));
        assert_eq!(v.get("truncated").and_then(Json::as_bool), Some(true));
        let rows = v.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 3);
        for row in rows {
            let results = row.get("results").and_then(Json::as_arr).unwrap();
            assert_eq!(results.len(), 2, "one result per design");
        }
        // Defaults: all five paper designs over the Fig. 13 degrees.
        let (status, v) = post(&app, "/v1/sweep", r#"{"m":32,"k":32,"n":32}"#);
        assert_eq!(status, 200);
        assert_eq!(v.get("rows_total").and_then(Json::as_f64), Some(12.0));
        assert_eq!(v.get("truncated").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("designs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(5)
        );
        // Validation failures.
        for body in [
            r#"{"designs":[]}"#,
            r#"{"designs":["TPU"]}"#,
            r#"{"a_degrees":[]}"#,
            r#"{"a_degrees":[2.0]}"#,
            r#"{"limit":0}"#,
            r#"{"limit":"all"}"#,
        ] {
            let (status, _) = post(&app, "/v1/sweep", body);
            assert_eq!(status, 400, "{body}");
        }
    }

    #[test]
    fn models_listing_matches_the_registry() {
        let app = test_app();
        let (status, v) = get(&app, "/v1/models");
        assert_eq!(status, 200);
        let models = v.get("models").and_then(Json::as_arr).unwrap();
        assert_eq!(models.len(), hl_models::model_names().len());
        assert_eq!(
            models[0].get("name").and_then(Json::as_str),
            Some("ResNet50"),
            "registry order"
        );
        for m in models {
            assert!(m.get("gmacs").and_then(Json::as_f64).unwrap() > 0.0);
        }
    }

    #[test]
    fn evaluate_model_reports_layers_and_totals() {
        let app = test_app();
        let body = r#"{"design":"HighLight","model":"DeiT-small","pruning":{"hss":[[4,8],[2,4]]}}"#;
        let (status, v) = post(&app, "/v1/evaluate_model", body);
        assert_eq!(status, 200);
        assert_eq!(v.get("supported").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("pruning").and_then(Json::as_str),
            Some("C1(4:8)→C0(2:4)")
        );
        assert!(v.get("accuracy_loss").and_then(Json::as_f64).unwrap() > 0.0);
        let network = v.get("network").unwrap();
        let layers = network.get("layers").and_then(Json::as_arr).unwrap();
        assert_eq!(layers.len(), 5, "one entry per DeiT layer shape");
        let totals = network.get("totals").unwrap();
        assert!(totals.get("edp").and_then(Json::as_f64).unwrap() > 0.0);
        let u = totals.get("utilization").and_then(Json::as_f64).unwrap();
        assert!(u > 0.0 && u <= 1.0);
        // Replaying the identical request must hit the per-layer cache.
        let misses = app.context().engine().eval_cache().misses();
        let (_, v2) = post(&app, "/v1/evaluate_model", body);
        assert_eq!(v2.encode(), v.encode());
        assert_eq!(app.context().engine().eval_cache().misses(), misses);
    }

    #[test]
    fn evaluate_model_propagates_unsupported_per_layer() {
        let app = test_app();
        // S2TA cannot run DeiT's dense QKV projections, but the pruned
        // FFN layers still evaluate.
        let body = r#"{"design":"S2TA","model":"DeiT-small","pruning":{"hss":[[4,8]]}}"#;
        let (status, v) = post(&app, "/v1/evaluate_model", body);
        assert_eq!(status, 200);
        assert_eq!(v.get("supported").and_then(Json::as_bool), Some(false));
        let network = v.get("network").unwrap();
        assert!(matches!(network.get("totals"), Some(Json::Null)));
        let layers = network.get("layers").and_then(Json::as_arr).unwrap();
        let supported: Vec<bool> = layers
            .iter()
            .map(|l| l.get("supported").and_then(Json::as_bool).unwrap())
            .collect();
        assert!(supported.iter().any(|&s| s), "pruned layers evaluate");
        assert!(!supported.iter().all(|&s| s), "dense layers fail");
        for l in layers
            .iter()
            .filter(|l| l.get("supported").and_then(Json::as_bool) == Some(false))
        {
            assert!(l.get("reason").and_then(Json::as_str).is_some());
        }
    }

    #[test]
    fn evaluate_model_rejects_bad_requests() {
        let app = test_app();
        for (body, needle) in [
            ("{}", "missing required field"),
            (
                r#"{"model":"ResNet50"}"#,
                "missing required field \"design\"",
            ),
            (r#"{"design":"TC"}"#, "missing required field \"model\""),
            (r#"{"design":"TPU","model":"ResNet50"}"#, "unknown design"),
            (r#"{"design":"TC","model":"VGG16"}"#, "unknown model"),
            (
                r#"{"design":"TC","model":"ResNet50","pruning":"sparse"}"#,
                "dense",
            ),
            (
                r#"{"design":"TC","model":"ResNet50","pruning":{"unstructured":1.5}}"#,
                "sparsity degree",
            ),
            (
                r#"{"design":"TC","model":"ResNet50","pruning":{"hss":[]}}"#,
                "1 to 3",
            ),
            (
                r#"{"design":"TC","model":"ResNet50","pruning":{"hss":[[8,4]]}}"#,
                "must not exceed",
            ),
            (
                r#"{"design":"TC","model":"ResNet50","pruning":{"hss":[[0,4]]}}"#,
                "integers in [1, 64]",
            ),
            (
                // Each component passes the per-value cap, but the group
                // size (64·64·64) would pin gigabytes in the retention
                // cache.
                r#"{"design":"TC","model":"ResNet50","pruning":{"hss":[[63,64],[63,64],[63,64]]}}"#,
                "group size",
            ),
            (
                r#"{"design":"TC","model":"ResNet50","pruning":{"bogus":1}}"#,
                "exactly one",
            ),
            (
                r#"{"design":"TC","model":"ResNet50","extra":1}"#,
                "unknown field",
            ),
        ] {
            let (status, v) = post(&app, "/v1/evaluate_model", body);
            assert_eq!(status, 400, "{body}");
            let msg = err_msg(&v);
            assert!(msg.contains(needle), "{body}: {msg}");
        }
    }

    #[test]
    fn search_returns_front_and_best_within_budget() {
        let app = test_app();
        let body = r#"{"design":"HighLight","model":"DeiT-small","budget":0.5}"#;
        let (status, v) = post(&app, "/v1/search", body);
        assert_eq!(status, 200);
        assert_eq!(v.get("metric").and_then(Json::as_str), Some("top-1 %"));
        let front = v.get("front").and_then(Json::as_arr).unwrap();
        assert!(!front.is_empty());
        for p in front {
            assert_eq!(p.get("on_front").and_then(Json::as_bool), Some(true));
        }
        let best = v.get("best").unwrap();
        assert_eq!(
            best.get("within_budget").and_then(Json::as_bool),
            Some(true)
        );
        assert!(num_leq(best.get("loss"), 0.5));
        // Byte-identical to the offline co-design search through the same
        // canonical view.
        let design = hl_bench::design_by_name("HighLight").unwrap();
        let model = hl_models::model_by_name("DeiT-small").unwrap();
        let offline = SweepContext::with_engine(hl_sim::engine::Engine::serial()).codesign(
            design.as_ref(),
            &model,
            0.5,
        );
        assert_eq!(v.encode(), search_outcome_json(&offline).encode());
        // Replaying the identical query must hit the shared caches.
        let misses = app.context().engine().eval_cache().misses();
        let (_, v2) = post(&app, "/v1/search", body);
        assert_eq!(v2.encode(), v.encode());
        assert_eq!(app.context().engine().eval_cache().misses(), misses);
    }

    fn num_leq(v: Option<&Json>, bound: f64) -> bool {
        v.and_then(Json::as_f64).is_some_and(|n| n <= bound)
    }

    #[test]
    fn search_rejects_bad_requests() {
        let app = test_app();
        for (body, needle) in [
            ("{}", "missing required field"),
            (r#"{"design":"TC","model":"ResNet50"}"#, "\"budget\""),
            (
                r#"{"design":"TPU","model":"ResNet50","budget":0.5}"#,
                "unknown design",
            ),
            (
                r#"{"design":"TC","model":"VGG16","budget":0.5}"#,
                "unknown model",
            ),
            (
                r#"{"design":"TC","model":"ResNet50","budget":-1}"#,
                "accuracy-loss budget",
            ),
            (
                r#"{"design":"TC","model":"ResNet50","budget":101}"#,
                "accuracy-loss budget",
            ),
            (
                r#"{"design":"TC","model":"ResNet50","budget":"tight"}"#,
                "must be a number",
            ),
            (
                r#"{"design":"TC","model":"ResNet50","budget":0.5,"extra":1}"#,
                "unknown field",
            ),
        ] {
            let (status, v) = post(&app, "/v1/search", body);
            assert_eq!(status, 400, "{body}");
            let msg = err_msg(&v);
            assert!(msg.contains(needle), "{body}: {msg}");
        }
    }

    #[test]
    fn fully_pruned_config_is_unsupported_not_a_panic() {
        let app = test_app();
        // Sparsity 1.0 lowers DSTC's prunable layers to density-0 operands;
        // the hardened designs answer per-layer Unsupported instead of
        // panicking the worker (or serving NaN cycles).
        let body = r#"{"design":"DSTC","model":"Transformer-Big","pruning":{"unstructured":1.0}}"#;
        let (status, v) = post(&app, "/v1/evaluate_model", body);
        assert_eq!(status, 200);
        assert_eq!(v.get("supported").and_then(Json::as_bool), Some(false));
        let network = v.get("network").unwrap();
        assert!(matches!(network.get("totals"), Some(Json::Null)));
        let layers = network.get("layers").and_then(Json::as_arr).unwrap();
        for l in layers
            .iter()
            .filter(|l| l.get("supported").and_then(Json::as_bool) == Some(false))
        {
            let reason = l.get("reason").and_then(Json::as_str).unwrap();
            assert!(reason.contains("degenerate"), "{reason}");
        }
        // The server is still healthy afterwards.
        let (status, _) = get(&app, "/v1/healthz");
        assert_eq!(status, 200);
        // Out-of-range degrees are still 400s.
        let (status, _) = post(
            &app,
            "/v1/evaluate_model",
            r#"{"design":"DSTC","model":"ResNet50","pruning":{"unstructured":1.01}}"#,
        );
        assert_eq!(status, 400);
    }

    #[test]
    fn malformed_gh_ratios_map_to_400() {
        let app = test_app();
        for spec in ["[[8,4]]", "[[4,0]]", "[[0,0]]", "[[3,2],[2,4]]"] {
            let body =
                format!(r#"{{"design":"TC","model":"ResNet50","pruning":{{"hss":{spec}}}}}"#);
            let (status, v) = post(&app, "/v1/evaluate_model", &body);
            assert_eq!(status, 400, "{spec}");
            let msg = err_msg(&v);
            assert!(
                msg.contains("must not exceed H") || msg.contains("[1, 64]"),
                "{spec}: {msg}"
            );
        }
    }

    #[test]
    fn pruning_specs_parse_to_configs() {
        assert_eq!(pruning_from(None).unwrap(), PruningConfig::Dense);
        assert_eq!(
            pruning_from(Some(&Json::str("dense"))).unwrap(),
            PruningConfig::Dense
        );
        let v = Json::parse(r#"{"unstructured":0.6}"#).unwrap();
        assert_eq!(
            pruning_from(Some(&v)).unwrap(),
            PruningConfig::Unstructured { sparsity: 0.6 }
        );
        let v = Json::parse(r#"{"hss":[[4,8],[2,4]]}"#).unwrap();
        assert_eq!(
            pruning_from(Some(&v)).unwrap(),
            PruningConfig::Hss(HssPattern::two_rank(Gh::new(4, 8), Gh::new(2, 4)))
        );
    }

    #[test]
    fn unknown_routes_and_methods_are_mapped() {
        let app = test_app();
        let (status, v) = get(&app, "/nope");
        assert_eq!(status, 404);
        assert_eq!(err_code(&v), "not_found");
        assert!(err_msg(&v).contains("/v1/healthz"));
        let (status, v) = post(&app, "/v1/healthz", "");
        assert_eq!(status, 405);
        assert_eq!(err_code(&v), "method_not_allowed");
        let (status, _) = get(&app, "/v1/evaluate");
        assert_eq!(status, 405);
        // All of the above were counted (the in-flight /metrics request
        // itself is recorded only after its response is built).
        let (_, m) = get(&app, "/v1/metrics");
        let total = m
            .get("requests")
            .and_then(|r| r.get("total"))
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(total, 3.0);
    }

    fn get_raw(app: &App, path: &str, query: &str, headers: &[(&str, &str)]) -> Response {
        let req = Request {
            method: "GET".into(),
            path: path.into(),
            query: query.into(),
            headers: headers
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
            body: vec![],
        };
        app.handle(&req)
    }

    #[test]
    fn metrics_format_negotiation() {
        let app = test_app();
        // Default stays JSON.
        let resp = get_raw(&app, "/v1/metrics", "", &[]);
        assert_eq!(resp.content_type, "application/json");
        Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        // Explicit format=prometheus → text exposition.
        let resp = get_raw(&app, "/v1/metrics", "format=prometheus", &[]);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, prom::CONTENT_TYPE);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("# TYPE hl_requests_total counter"));
        prom::validate_exposition(&text).unwrap();
        // Accept negotiation without an explicit format.
        let resp = get_raw(&app, "/v1/metrics", "", &[("accept", "text/plain")]);
        assert_eq!(resp.content_type, prom::CONTENT_TYPE);
        // An explicit format beats the Accept header.
        let resp = get_raw(
            &app,
            "/v1/metrics",
            "format=json",
            &[("accept", "text/plain")],
        );
        assert_eq!(resp.content_type, "application/json");
        // Unknown formats are 400s, not silent fallbacks.
        let resp = get_raw(&app, "/v1/metrics", "format=xml", &[]);
        assert_eq!(resp.status, 400);
        // Legacy alias answers the Prometheus form too.
        let resp = get_raw(&app, "/metrics", "format=prometheus", &[]);
        assert_eq!(resp.content_type, prom::CONTENT_TYPE);
    }

    /// Maps a dotted path of a leaf in the `/v1/metrics` JSON view to
    /// the Prometheus family carrying the same series. A new JSON
    /// series without a mapping fails the coverage test below.
    fn family_for(path: &str) -> &'static str {
        if let Some(rest) = path.strip_prefix("requests.") {
            return match rest {
                "coalesced" => "hl_requests_coalesced_total",
                "deprecated" => "hl_requests_deprecated_total",
                _ => "hl_requests_total", // total + per-route labels
            };
        }
        if let Some(rest) = path.strip_prefix("responses.") {
            return match rest {
                "rejected_busy" => "hl_responses_rejected_busy_total",
                _ => "hl_responses_total",
            };
        }
        if let Some(rest) = path.strip_prefix("workers.") {
            return match rest {
                "panics" => "hl_worker_panics_total",
                "respawns" => "hl_worker_respawns_total",
                _ => "hl_workers_quarantined_total",
            };
        }
        if path.starts_with("shed.") {
            return "hl_shed_total";
        }
        if let Some(rest) = path.strip_prefix("connections.") {
            return match rest {
                "accepted" => "hl_connections_accepted_total",
                "closed" => "hl_connections_closed_total",
                "active" => "hl_connections_active",
                _ => "hl_connection_requests", // the reuse histogram
            };
        }
        if let Some(rest) = path.strip_prefix("eval_cache.") {
            return match rest {
                "entries" => "hl_eval_cache_entries",
                "misses" => "hl_eval_cache_misses_total",
                _ => "hl_eval_cache_hits_total", // hits + derived hit_rate
            };
        }
        if let Some(rest) = path.strip_prefix("retention_cache.") {
            return match rest {
                "misses" => "hl_retention_cache_misses_total",
                _ => "hl_retention_cache_hits_total",
            };
        }
        if path == "queue.depth" {
            return "hl_queue_depth";
        }
        if path.starts_with("queue.wait_ms") {
            return "hl_queue_wait_seconds";
        }
        if path.starts_with("latency_ms") {
            return "hl_request_latency_seconds";
        }
        match path {
            "uptime_s" => "hl_uptime_seconds",
            "threads" => "hl_threads",
            other => panic!("JSON metrics series {other:?} has no Prometheus family mapping"),
        }
    }

    fn leaf_paths(v: &Json, prefix: &str, out: &mut Vec<String>) {
        match v {
            Json::Obj(members) => {
                for (k, val) in members {
                    let p = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    leaf_paths(val, &p, out);
                }
            }
            _ => out.push(prefix.to_string()),
        }
    }

    #[test]
    fn every_json_metrics_series_has_a_prometheus_family() {
        let app = test_app();
        // Touch a few counters so the series are non-trivial.
        let _ = post(
            &app,
            "/v1/evaluate",
            r#"{"design":"TC","m":32,"k":32,"n":32}"#,
        );
        let _ = get(&app, "/nope");
        let (_, json) = get(&app, "/v1/metrics");
        let exposition = app.render_prometheus();
        prom::validate_exposition(&exposition).unwrap();
        let mut paths = Vec::new();
        leaf_paths(&json, "", &mut paths);
        assert!(paths.len() > 30, "walker found only {} leaves", paths.len());
        for path in &paths {
            let family = family_for(path);
            assert!(
                exposition.contains(&format!("# TYPE {family} ")),
                "{path} maps to {family}, which is missing from the exposition"
            );
        }
    }

    fn trace_rec(id: &str, route: &'static str, total_us: u64) -> crate::trace::TraceRecord {
        crate::trace::TraceRecord {
            id: id.to_string(),
            route,
            status: 200,
            outcome: "complete",
            started_s: 0.0,
            total_us,
            parse_us: 0,
            queue_us: 0,
            eval_us: total_us,
            serialize_us: 0,
            write_us: 0,
            eval_cache_hits: 0,
            eval_cache_misses: 0,
        }
    }

    #[test]
    fn trace_endpoint_serves_the_filtered_ring() {
        let app = test_app();
        app.observe_trace(trace_rec("aaa", "/v1/evaluate", 5000));
        app.observe_trace(trace_rec("bbb", "/v1/healthz", 100));
        let (status, v) = get(&app, "/v1/trace");
        assert_eq!(status, 200);
        assert_eq!(v.get("count").and_then(Json::as_f64), Some(2.0));
        let traces = v.get("traces").and_then(Json::as_arr).unwrap();
        assert_eq!(traces[0].get("id").and_then(Json::as_str), Some("aaa"));
        assert_eq!(traces[1].get("id").and_then(Json::as_str), Some("bbb"));
        // Route filter.
        let resp = get_raw(&app, "/v1/trace", "route=/v1/evaluate", &[]);
        let v = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("count").and_then(Json::as_f64), Some(1.0));
        // Duration floor: only the 5 ms trace passes min_ms=1.
        let resp = get_raw(&app, "/v1/trace", "min_ms=1", &[]);
        let v = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let traces = v.get("traces").and_then(Json::as_arr).unwrap();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].get("id").and_then(Json::as_str), Some("aaa"));
        // Limit keeps the newest.
        let resp = get_raw(&app, "/v1/trace", "limit=1", &[]);
        let v = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let traces = v.get("traces").and_then(Json::as_arr).unwrap();
        assert_eq!(traces[0].get("id").and_then(Json::as_str), Some("bbb"));
        // Typos 400 instead of silently returning everything.
        let resp = get_raw(&app, "/v1/trace", "bogus=1", &[]);
        assert_eq!(resp.status, 400);
        // Method and legacy-path mapping: no unversioned alias.
        let (status, _) = post(&app, "/v1/trace", "");
        assert_eq!(status, 405);
        let (status, _) = get(&app, "/trace");
        assert_eq!(status, 404);
    }

    #[test]
    fn request_ids_honor_valid_headers_only() {
        let app = test_app();
        assert_eq!(app.request_id(Some("client-id.1")), "client-id.1");
        let generated = app.request_id(None);
        assert!(crate::trace::valid_request_id(&generated));
        // Malformed ids are replaced, not echoed.
        let replaced = app.request_id(Some("has space"));
        assert_ne!(replaced, "has space");
        assert!(crate::trace::valid_request_id(&replaced));
        assert_ne!(app.request_id(None), generated);
    }

    #[test]
    fn slow_requests_emit_structured_warnings() {
        let app = test_app();
        let buf = crate::log::SharedBuffer::new();
        app.logger().set_sink(buf.make_sink());
        // Threshold 0 → everything is slow (the CI boot check mode).
        app.set_trace_slow(Some(Duration::ZERO));
        app.observe_trace(trace_rec("slow1", "/v1/evaluate", 1234));
        let text = buf.contents();
        let v = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(v.get("event").and_then(Json::as_str), Some("slow_request"));
        assert_eq!(v.get("level").and_then(Json::as_str), Some("warn"));
        assert_eq!(v.get("trace_id").and_then(Json::as_str), Some("slow1"));
        assert_eq!(v.get("duration_ms").and_then(Json::as_f64), Some(1.234));
        // Disabled threshold + info level → per-request debug is gated.
        app.set_trace_slow(None);
        app.observe_trace(trace_rec("fast1", "/v1/evaluate", 1234));
        assert_eq!(buf.contents().lines().count(), 1);
        // The ring still recorded both.
        assert_eq!(app.traces().snapshot().len(), 2);
    }
}
