//! `hl-serve` — a dependency-free HTTP/1.1 JSON service over the
//! HighLight evaluation stack.
//!
//! The fig/table binaries answer design-space questions in batch; this
//! crate serves the same evaluation stack as a long-lived API so external
//! co-design clients (hardware-aware sparsity search, accelerator
//! comparisons) can query *"evaluate design D on workload W at sparsity
//! S"* — or *"evaluate design D on model M under pruning config P"*
//! (`/v1/evaluate_model`, per-layer + aggregate results through
//! [`hl_sim::network`]) — interactively. All requests share one
//! [`hl_bench::SweepContext`]:
//! the parallel engine plus its [`hl_sim::engine::EvalCache`], so
//! repeated queries replay from the memo and `/v1/metrics` exposes the
//! hit rate. The API is versioned under `/v1/`; the original unversioned
//! paths still answer byte-identically but count as deprecated aliases.
//!
//! There is no crates.io access in this workspace, so everything is
//! hand-rolled on `std`: [`json`] (codec with escaping and a nesting
//! cap), [`http`] (incremental request parsing for keep-alive and
//! pipelining, chunked responses, 4xx/5xx mapping), [`schema`] (the
//! typed wire structs and structured `{"error":{...}}` bodies),
//! [`epoll`] (a minimal epoll(7) facade with a self-pipe waker),
//! [`faults`] (the seeded fault-injection plane behind `HL_FAULTS`),
//! [`server`] (the single-threaded event loop: nonblocking accepts,
//! per-connection state machines, in-flight request coalescing, a
//! worker pool for evaluation, cooperative drain), [`snapshot`]
//! (evaluation-cache persistence across restarts), [`signal`]
//! (SIGTERM/ctrl-c → shutdown flag), [`api`] (the endpoint handlers),
//! [`metrics`] (lock-free counters + latency histogram + connection
//! accounting), [`trace`] (per-request lifecycle spans in a ring served
//! at `/v1/trace`), [`log`] (leveled, rate-limited JSON-lines logging),
//! [`prom`] (Prometheus text exposition + validator), and [`client`]
//! (the keep-alive client the `hl-client` CLI, the load bench, and the
//! e2e tests use).
//!
//! # Example
//!
//! ```
//! use hl_serve::api::App;
//! use hl_serve::server::{Server, ServerConfig};
//!
//! let config = ServerConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     workers: 2,
//!     ..ServerConfig::default()
//! };
//! let handle = Server::bind(config, App::new()).unwrap().spawn().unwrap();
//! let addr = handle.addr().to_string();
//!
//! let (status, health) = hl_serve::client::get_json(&addr, "/v1/healthz").unwrap();
//! assert_eq!(status, 200);
//! assert_eq!(health.get("status").and_then(|s| s.as_str()), Some("ok"));
//! handle.stop().unwrap();
//! ```

#![deny(unsafe_code)] // `signal` and `epoll` opt back in for their libc bindings.
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod epoll;
pub mod faults;
pub mod http;
pub mod json;
pub mod log;
pub mod metrics;
pub mod prom;
pub mod schema;
pub mod server;
pub mod signal;
pub mod snapshot;
pub mod trace;

pub use api::App;
pub use json::Json;
pub use server::{Server, ServerConfig, ServerHandle, DEFAULT_ADDR};
