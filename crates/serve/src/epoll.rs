//! A minimal `epoll(7)` readiness facade for the event-driven server.
//!
//! There is no `libc` crate in this dependency-free workspace, so — as
//! with [`crate::signal`] — the linux implementation declares the four
//! syscall wrappers it needs (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! plus `pipe2`/`write`/`read`/`close` for the self-pipe waker) against
//! the always-linked platform libc. Everything else in the server builds
//! on `std` (`TcpListener::set_nonblocking`, `AsRawFd`).
//!
//! The facade is deliberately small:
//!
//! - [`Poller`]: level-triggered registration ([`Interest`]) of raw fds
//!   under a caller-chosen `u64` token, and a blocking [`Poller::wait`]
//!   with a millisecond timeout;
//! - [`Waker`]: a cloneable, thread-safe handle that makes `wait` return
//!   by writing one byte to a nonblocking self-pipe whose read end is
//!   registered like any other fd. Worker threads use it to hand
//!   completed responses back to the event loop; the signal watcher uses
//!   it to start the drain.
//!
//! Level-triggered mode keeps the state machines simple: a readable or
//! writable fd keeps reporting until it is drained, so a short read or
//! partial write never strands a connection.
//!
//! On non-linux targets [`Poller::new`] returns
//! [`std::io::ErrorKind::Unsupported`]; the serving stack is linux-only
//! (the CI and deployment targets), while the rest of the crate —
//! client, schema, json — stays portable.

/// Readiness interest for a registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Self = Self {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Self = Self {
        readable: false,
        writable: true,
    };
    /// Read + write interest.
    pub const BOTH: Self = Self {
        readable: true,
        writable: true,
    };
}

/// One readiness event from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or peer-closed/error — treated as readable so the owner
    /// observes the EOF/error on its next read).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

pub use imp::{Poller, Waker};

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Arc;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const O_NONBLOCK: i32 = 0o4000;
    const O_CLOEXEC: i32 = 0o2000000;

    /// `struct epoll_event`. The kernel ABI packs this to 12 bytes on
    /// x86-64; other linux targets use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    // SAFETY: these signatures match the epoll(7), pipe2(2), and
    // read/write/close(2) prototypes from the always-linked platform
    // libc exactly (i32 fds/flags, pointer + length buffers, isize
    // byte counts), so the declarations cannot introduce ABI mismatch.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn pipe2(fds: *mut i32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    fn last_error() -> io::Error {
        io::Error::last_os_error()
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// An owned epoll instance plus the self-pipe waker fds.
    #[derive(Debug)]
    pub struct Poller {
        epfd: i32,
        wake_rx: i32,
        wake_tx: Arc<WakeFd>,
    }

    /// Owns the pipe's write end; shared by every [`Waker`] clone.
    #[derive(Debug)]
    struct WakeFd(i32);

    impl Drop for WakeFd {
        fn drop(&mut self) {
            // SAFETY: fd is owned by this struct and closed exactly once.
            unsafe { close(self.0) };
        }
    }

    /// Wakes a blocked [`Poller::wait`] from any thread.
    #[derive(Debug, Clone)]
    pub struct Waker {
        fd: Arc<WakeFd>,
    }

    impl Waker {
        /// Makes the next (or current) [`Poller::wait`] return. Safe to
        /// call from any thread; a full pipe means a wake-up is already
        /// pending, so `EAGAIN` is success.
        pub fn wake(&self) {
            let byte = 1u8;
            // SAFETY: fd is a valid nonblocking pipe write end for the
            // lifetime of the Arc; a 1-byte write cannot overrun `byte`.
            unsafe { write(self.fd.0, &byte, 1) };
        }
    }

    impl Poller {
        /// The token [`Poller::wait`] reports for waker notifications.
        pub const WAKE_TOKEN: u64 = u64::MAX;

        /// Creates the epoll instance and its self-pipe.
        ///
        /// # Errors
        /// Propagates `epoll_create1`/`pipe2` failures (fd exhaustion).
        pub fn new() -> io::Result<Self> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_error());
            }
            let mut fds = [0i32; 2];
            // SAFETY: `fds` is a valid out-buffer for exactly two fds.
            if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } < 0 {
                let err = last_error();
                // SAFETY: epfd was just created and is owned here.
                unsafe { close(epfd) };
                return Err(err);
            }
            let poller = Self {
                epfd,
                wake_rx: fds[0],
                wake_tx: Arc::new(WakeFd(fds[1])),
            };
            poller.register(fds[0], Self::WAKE_TOKEN, Interest::READ)?;
            Ok(poller)
        }

        /// A cloneable waker for this poller.
        pub fn waker(&self) -> Waker {
            Waker {
                fd: Arc::clone(&self.wake_tx),
            }
        }

        /// Registers `fd` (level-triggered) under `token`.
        ///
        /// # Errors
        /// Propagates `epoll_ctl` failures.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes the interest set of a registered fd.
        ///
        /// # Errors
        /// Propagates `epoll_ctl` failures.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Removes a registered fd.
        ///
        /// # Errors
        /// Propagates `epoll_ctl` failures.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ)
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask_of(interest),
                data: token,
            };
            // SAFETY: `ev` is a valid epoll_event for the duration of the
            // call; the kernel copies it before returning.
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(last_error());
            }
            Ok(())
        }

        /// Blocks until an fd is ready or `timeout_ms` elapses (`None` =
        /// wait indefinitely), appending events to `out`. Waker
        /// notifications are drained internally and reported as
        /// [`Poller::WAKE_TOKEN`] events.
        ///
        /// # Errors
        /// Propagates `epoll_wait` failures; `EINTR` is surfaced as an
        /// empty event set so callers can re-check shutdown flags.
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: Option<u32>) -> io::Result<()> {
            let mut raw = [EpollEvent { events: 0, data: 0 }; 64];
            let timeout = timeout_ms.map_or(-1i32, |t| t.min(i32::MAX as u32) as i32);
            // SAFETY: `raw` is a valid out-buffer of 64 epoll_events.
            let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), 64, timeout) };
            if n < 0 {
                let err = last_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in raw.iter().take(n as usize) {
                let (events, token) = (ev.events, ev.data);
                if token == Self::WAKE_TOKEN {
                    self.drain_wake_pipe();
                }
                out.push(Event {
                    token,
                    // Errors/hang-ups surface as readable so the owner's
                    // next read observes them.
                    readable: events & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }

        fn drain_wake_pipe(&self) {
            let mut sink = [0u8; 64];
            loop {
                // SAFETY: `sink` is a valid 64-byte out-buffer; the pipe
                // read end is owned by this poller and nonblocking.
                let n = unsafe { read(self.wake_rx, sink.as_mut_ptr(), sink.len()) };
                if n <= 0 {
                    break; // Empty (EAGAIN) or closed: fully drained.
                }
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: both fds are owned by this struct and closed once;
            // the write end closes when the last Waker Arc drops.
            unsafe {
                close(self.wake_rx);
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    /// Unsupported on non-linux targets: [`Poller::new`] fails.
    #[derive(Debug)]
    pub struct Poller {
        _private: (),
    }

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "hl-serve's event loop requires epoll (linux)",
        )
    }

    /// Inert waker for the non-linux stub.
    #[derive(Debug, Clone)]
    pub struct Waker;

    impl Waker {
        /// No-op.
        pub fn wake(&self) {}
    }

    impl Poller {
        /// The token [`Poller::wait`] reports for waker notifications.
        pub const WAKE_TOKEN: u64 = u64::MAX;

        /// Always fails: the event-driven server requires epoll.
        ///
        /// # Errors
        /// Always `io::ErrorKind::Unsupported`.
        pub fn new() -> io::Result<Self> {
            Err(unsupported())
        }

        /// Unreachable in practice (construction always fails); returns
        /// the inert waker rather than panicking.
        pub fn waker(&self) -> Waker {
            Waker
        }

        /// Unreachable in practice (construction always fails).
        ///
        /// # Errors
        /// Always `io::ErrorKind::Unsupported`.
        pub fn register(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable in practice (construction always fails).
        ///
        /// # Errors
        /// Always `io::ErrorKind::Unsupported`.
        pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable in practice (construction always fails).
        ///
        /// # Errors
        /// Always `io::ErrorKind::Unsupported`.
        pub fn deregister(&self, _fd: RawFd) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable in practice (construction always fails).
        ///
        /// # Errors
        /// Always `io::ErrorKind::Unsupported`.
        pub fn wait(&self, _out: &mut Vec<Event>, _timeout_ms: Option<u32>) -> io::Result<()> {
            Err(unsupported())
        }
    }
}

#[cfg(test)]
mod tests {
    #[cfg(target_os = "linux")]
    mod linux {
        use crate::epoll::*;
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;
        use std::time::{Duration, Instant};

        #[test]
        fn timeout_expires_without_events() {
            let poller = Poller::new().unwrap();
            let mut events = Vec::new();
            let t0 = Instant::now();
            poller.wait(&mut events, Some(20)).unwrap();
            assert!(events.is_empty());
            assert!(t0.elapsed() >= Duration::from_millis(15));
        }

        #[test]
        fn waker_wakes_from_another_thread() {
            let poller = Poller::new().unwrap();
            let waker = poller.waker();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                waker.wake();
            });
            let mut events = Vec::new();
            poller.wait(&mut events, Some(5000)).unwrap();
            handle.join().unwrap();
            assert!(events.iter().any(|e| e.token == Poller::WAKE_TOKEN));
            // The pipe is drained: the next wait times out instead of
            // spinning on a stale byte.
            events.clear();
            poller.wait(&mut events, Some(10)).unwrap();
            assert!(events.iter().all(|e| e.token != Poller::WAKE_TOKEN));
        }

        #[test]
        fn readable_socket_reports_its_token() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let poller = Poller::new().unwrap();
            listener.set_nonblocking(true).unwrap();
            poller
                .register(listener.as_raw_fd(), 7, Interest::READ)
                .unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            client.write_all(b"x").unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, Some(5000)).unwrap();
            assert!(events.iter().any(|e| e.token == 7 && e.readable));
            // Interest can be switched off and the fd removed.
            poller
                .modify(listener.as_raw_fd(), 7, Interest::WRITE)
                .unwrap();
            poller.deregister(listener.as_raw_fd()).unwrap();
        }
    }
}
