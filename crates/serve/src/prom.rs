//! Prometheus text exposition (format 0.0.4).
//!
//! [`Exposition`] is a small builder the app uses to render every
//! metric family — counters, gauges, and the log₂ latency/reuse
//! histograms — as `# HELP`/`# TYPE` headers plus samples, with
//! histograms expanded to cumulative `le` buckets, `+Inf`, `_sum`, and
//! `_count` the way Prometheus expects. [`validate_exposition`] is the
//! matching checker (used by tests and the CI smoke via
//! `hl-client promcheck`): each `# TYPE` declared once, every sample
//! belongs to a declared family, bucket counts monotone, last bucket
//! equals `_count`.

use std::collections::HashMap;
use std::fmt::Write as _;

/// Content-Type for the Prometheus text format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Builder for one exposition document. Families render in the order
/// they are added.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let _ = write!(self.out, "{name}");
        if !labels.is_empty() {
            let _ = write!(self.out, "{{");
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    let _ = write!(self.out, ",");
                }
                let escaped: String = v
                    .chars()
                    .flat_map(|c| match c {
                        '\\' => vec!['\\', '\\'],
                        '"' => vec!['\\', '"'],
                        '\n' => vec!['\\', 'n'],
                        c => vec![c],
                    })
                    .collect();
                let _ = write!(self.out, "{k}=\"{escaped}\"");
            }
            let _ = write!(self.out, "}}");
        }
        let _ = writeln!(self.out, " {}", fmt_value(value));
    }

    /// A single-sample counter family.
    pub fn counter(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "counter");
        self.sample(name, &[], value);
    }

    /// A counter family with one sample per `(label value, sample)`
    /// pair under the given label key.
    pub fn counter_vec(&mut self, name: &str, help: &str, label: &str, samples: &[(&str, f64)]) {
        self.header(name, help, "counter");
        for (lv, value) in samples {
            self.sample(name, &[(label, lv)], *value);
        }
    }

    /// A single-sample gauge family.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// A histogram family from per-bucket (non-cumulative) counts.
    /// `upper_edges` gives each bucket's inclusive upper bound in the
    /// exported unit; buckets are accumulated here and capped with
    /// `+Inf`, `_sum`, and `_count`.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        upper_edges: &[f64],
        bucket_counts: &[u64],
        sum: f64,
    ) {
        debug_assert_eq!(upper_edges.len(), bucket_counts.len());
        self.header(name, help, "histogram");
        let bucket = format!("{name}_bucket");
        let mut cum = 0u64;
        for (edge, n) in upper_edges.iter().zip(bucket_counts) {
            cum += n;
            self.sample(&bucket, &[("le", &fmt_value(*edge))], cum as f64);
        }
        let total: u64 = bucket_counts.iter().sum();
        self.sample(&bucket, &[("le", "+Inf")], total as f64);
        self.sample(&format!("{name}_sum"), &[], sum);
        self.sample(&format!("{name}_count"), &[], total as f64);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Checks an exposition document: every `# TYPE` declared exactly once,
/// every sample attributable to a declared family (directly, or via
/// `_bucket`/`_sum`/`_count` for histograms), histogram buckets
/// monotone nondecreasing with the `+Inf` bucket equal to `_count`.
/// Returns the first violation as an error message.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut families: HashMap<String, String> = HashMap::new();
    // family -> (cumulative buckets in order, +Inf value, _count value)
    let mut hist_buckets: HashMap<String, Vec<f64>> = HashMap::new();
    let mut hist_inf: HashMap<String, f64> = HashMap::new();
    let mut hist_count: HashMap<String, f64> = HashMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: # TYPE missing name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: # TYPE missing kind"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {lineno}: unknown metric type {kind:?}"));
            }
            if families
                .insert(name.to_string(), kind.to_string())
                .is_some()
            {
                return Err(format!("line {lineno}: duplicate # TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {lineno}: malformed sample: {line:?}"))?;
        let name = &line[..name_end];
        let value_str = line
            .rsplit(' ')
            .next()
            .ok_or_else(|| format!("line {lineno}: missing value: {line:?}"))?;
        let value = parse_value(value_str)
            .ok_or_else(|| format!("line {lineno}: bad value {value_str:?}"))?;

        let (family, suffix) = match_family(name, &families)
            .ok_or_else(|| format!("line {lineno}: sample {name} has no # TYPE declaration"))?;

        if families.get(&family).map(String::as_str) == Some("histogram") {
            match suffix {
                "_bucket" => {
                    let le = extract_label(line, "le")
                        .ok_or_else(|| format!("line {lineno}: {name} sample missing le label"))?;
                    if le == "+Inf" {
                        hist_inf.insert(family, value);
                    } else {
                        parse_value(&le)
                            .ok_or_else(|| format!("line {lineno}: bad le value {le:?}"))?;
                        hist_buckets.entry(family).or_default().push(value);
                    }
                }
                "_count" => {
                    hist_count.insert(family, value);
                }
                _ => {}
            }
        }
    }

    for (family, buckets) in &hist_buckets {
        for pair in buckets.windows(2) {
            if pair[1] < pair[0] {
                return Err(format!(
                    "histogram {family}: buckets not monotone ({} then {})",
                    pair[0], pair[1]
                ));
            }
        }
        let inf = *hist_inf
            .get(family)
            .ok_or_else(|| format!("histogram {family}: missing +Inf bucket"))?;
        if let Some(last) = buckets.last() {
            if *last > inf {
                return Err(format!(
                    "histogram {family}: last bucket {last} exceeds +Inf {inf}"
                ));
            }
        }
        let count = *hist_count
            .get(family)
            .ok_or_else(|| format!("histogram {family}: missing _count"))?;
        if inf != count {
            return Err(format!(
                "histogram {family}: +Inf bucket {inf} != _count {count}"
            ));
        }
    }
    Ok(())
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        s => s.parse().ok(),
    }
}

/// Maps a sample name to its declared family, allowing the histogram /
/// summary component suffixes. Returns (family, suffix).
fn match_family(name: &str, families: &HashMap<String, String>) -> Option<(String, &'static str)> {
    if families.contains_key(name) {
        return Some((name.to_string(), ""));
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if families.contains_key(stem) {
                return Some((stem.to_string(), suffix));
            }
        }
    }
    None
}

fn extract_label(line: &str, key: &str) -> Option<String> {
    let open = line.find('{')?;
    let close = line.rfind('}')?;
    for part in line[open + 1..close].split(',') {
        let (k, v) = part.split_once('=')?;
        if k == key {
            return Some(v.trim_matches('"').to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_labels_render() {
        let mut e = Exposition::new();
        e.counter("hl_requests_total", "Total requests.", 42.0);
        e.gauge("hl_connections_active", "Open connections.", 3.0);
        e.counter_vec(
            "hl_responses_total",
            "Responses by class.",
            "class",
            &[("2xx", 40.0), ("5xx", 2.0)],
        );
        let text = e.finish();
        assert!(text.contains("# TYPE hl_requests_total counter\n"));
        assert!(text.contains("hl_requests_total 42\n"));
        assert!(text.contains("hl_responses_total{class=\"2xx\"} 40\n"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn histogram_renders_cumulative_with_inf_sum_count() {
        let mut e = Exposition::new();
        e.histogram(
            "hl_request_latency_seconds",
            "Request latency.",
            &[0.001, 0.01, 0.1],
            &[5, 3, 0],
            0.0423,
        );
        let text = e.finish();
        assert!(text.contains("hl_request_latency_seconds_bucket{le=\"0.001\"} 5\n"));
        assert!(text.contains("hl_request_latency_seconds_bucket{le=\"0.01\"} 8\n"));
        assert!(text.contains("hl_request_latency_seconds_bucket{le=\"0.1\"} 8\n"));
        assert!(text.contains("hl_request_latency_seconds_bucket{le=\"+Inf\"} 8\n"));
        assert!(text.contains("hl_request_latency_seconds_sum 0.0423\n"));
        assert!(text.contains("hl_request_latency_seconds_count 8\n"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn validator_rejects_violations() {
        // Duplicate TYPE.
        let dup = "# TYPE a counter\n# TYPE a counter\na 1\n";
        assert!(validate_exposition(dup).unwrap_err().contains("duplicate"));
        // Undeclared sample.
        let und = "# TYPE a counter\nb 1\n";
        assert!(validate_exposition(und)
            .unwrap_err()
            .contains("no # TYPE declaration"));
        // Non-monotone buckets.
        let mono = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                    h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_exposition(mono)
            .unwrap_err()
            .contains("not monotone"));
        // +Inf != _count.
        let inf = "# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n";
        assert!(validate_exposition(inf).unwrap_err().contains("_count"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut e = Exposition::new();
        e.counter_vec("a", "h", "k", &[("quo\"te\\x", 1.0)]);
        let text = e.finish();
        assert!(text.contains("a{k=\"quo\\\"te\\\\x\"} 1\n"));
        validate_exposition(&text).unwrap();
    }
}
