//! A hand-rolled JSON codec (the build environment has no crates.io
//! access, so `serde_json` is not an option).
//!
//! [`Json`] is the value tree; [`Json::encode`] produces compact RFC 8259
//! output and [`Json::parse`] is a recursive-descent parser with a nesting
//! cap ([`MAX_DEPTH`]) so adversarial request bodies cannot blow the
//! stack. Object member order is preserved (members are a `Vec`, not a
//! map), which keeps encoding deterministic — the property the
//! byte-identical `/evaluate` acceptance test relies on.
//!
//! Numbers are `f64` (as in JSON itself). Encoding uses Rust's shortest
//! round-trip `Display` for `f64`, so `encode → parse` is the identity on
//! finite numbers (asserted by the `json_roundtrip` proptest suite).
//! Non-finite numbers have no JSON representation and encode as `null`.

use std::fmt;

/// Maximum nesting depth [`Json::parse`] accepts.
pub const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (JSON numbers are doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => encode_number(*n, out),
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (any value type at the top level; only
    /// whitespace may follow it).
    ///
    /// # Errors
    /// [`JsonError`] with the byte offset and a reason on malformed input,
    /// and on nesting deeper than [`MAX_DEPTH`].
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

fn encode_number(n: f64, out: &mut String) {
    use fmt::Write;
    if n.is_finite() {
        // Rust's Display for f64 is the shortest string that round-trips,
        // so parse(encode(x)) == x exactly.
        let _ = write!(out, "{n}");
    } else {
        // NaN / infinities have no JSON representation.
        out.push_str("null");
    }
}

fn encode_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.reason)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => out.push(self.unicode_escape()?),
                        c => {
                            self.pos -= 1;
                            return Err(self.err(format!("invalid escape '\\{}'", c as char)));
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8; find the char boundary).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("high surrogate not followed by a low surrogate"));
                }
                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits must follow the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits must follow the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        let n: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
        if !n.is_finite() {
            return Err(self.err("number overflows a double"));
        }
        Ok(Json::Num(n))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_scalars_and_containers() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("c".into(), Json::str("x")),
        ]);
        assert_eq!(v.encode(), r#"{"a":1.5,"b":[null,true],"c":"x"}"#);
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(-0.0).encode(), "-0");
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let s = "quote\" back\\ nl\n cr\r tab\t bell\u{7} nul\u{0} é☃";
        let enc = Json::str(s).encode();
        assert!(enc.contains("\\\""));
        assert!(enc.contains("\\u0007"));
        assert!(enc.contains("\\u0000"));
        assert_eq!(Json::parse(&enc).unwrap(), Json::str(s));
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(
            Json::parse(r#""\u0041\ud83d\ude00\/""#).unwrap(),
            Json::str("A😀/")
        );
    }

    #[test]
    fn parses_numbers() {
        for (text, want) in [
            ("0", 0.0),
            ("-0", -0.0),
            ("12", 12.0),
            ("-3.5", -3.5),
            ("1e3", 1000.0),
            ("2.5E-2", 0.025),
            ("1e308", 1e308),
        ] {
            assert_eq!(Json::parse(text).unwrap(), Json::Num(want), "{text}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "  ",
            "{",
            "[1,",
            "tru",
            "nul",
            "01",
            "1.",
            "1e",
            "+1",
            "--1",
            "\"abc",
            "\"\\q\"",
            "\"\\u12g4\"",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "[1 2]",
            "1 2",
            "{} {}",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "1e999",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "must reject {bad:?}");
        }
        // Raw control characters must be escaped.
        assert!(Json::parse("\"a\nb\"").is_err());
    }

    #[test]
    fn depth_limit_is_enforced() {
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.reason.contains("nesting"), "{err}");
        // Objects count toward the same limit.
        let mut doc = String::new();
        for _ in 0..=MAX_DEPTH {
            doc.push_str("{\"k\":");
        }
        doc.push('1');
        doc.push_str(&"}".repeat(MAX_DEPTH + 1));
        assert!(Json::parse(&doc).is_err());
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Json::parse(r#"{"n":2,"s":"x","b":false,"a":[1],"n":3}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(2.0), "first wins");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("n"), None);
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } \n").unwrap();
        assert_eq!(v.encode(), r#"{"a":[1,2],"b":null}"#);
    }
}
