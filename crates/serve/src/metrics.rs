//! Lock-free request metrics: per-route counters, status-class counters,
//! per-connection counters (accept/close/reuse, a log₂
//! requests-per-connection histogram), coalescing + deprecated-route
//! counters, and a log₂-bucketed latency histogram with quantile
//! estimation.
//!
//! Everything is plain atomics, so recording from the event loop and the
//! worker pool never contends — `/v1/metrics` reads are racy snapshots,
//! which is fine for monitoring.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The routes the server tracks individually (canonical `/v1/` labels;
/// legacy unversioned aliases record under the same route).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /v1/healthz`.
    Healthz,
    /// `GET /v1/designs`.
    Designs,
    /// `GET /v1/metrics`.
    Metrics,
    /// `GET /v1/models`.
    Models,
    /// `POST /v1/evaluate`.
    Evaluate,
    /// `POST /v1/evaluate_model`.
    EvaluateModel,
    /// `POST /v1/sweep`.
    Sweep,
    /// `POST /v1/search`.
    Search,
    /// `GET /v1/trace`.
    Trace,
    /// Anything else (404s, parse failures, …).
    Other,
}

impl Route {
    /// All tracked routes, in display order.
    pub const ALL: [Route; 10] = [
        Route::Healthz,
        Route::Designs,
        Route::Metrics,
        Route::Models,
        Route::Evaluate,
        Route::EvaluateModel,
        Route::Sweep,
        Route::Search,
        Route::Trace,
        Route::Other,
    ];

    /// The route for a request path (`/v1/` or legacy alias).
    pub fn of(path: &str) -> Route {
        Route::resolve(path).0
    }

    /// Resolves a request path to its route plus whether it used a
    /// deprecated legacy (unversioned) alias of a known endpoint.
    /// Unknown paths are `(Other, false)` — a 404 is not a deprecation.
    pub fn resolve(path: &str) -> (Route, bool) {
        let (bare, versioned) = match path.strip_prefix("/v1") {
            Some(rest) if rest.starts_with('/') => (rest, true),
            _ => (path, false),
        };
        let route = match bare {
            "/healthz" => Route::Healthz,
            "/designs" => Route::Designs,
            "/metrics" => Route::Metrics,
            "/models" => Route::Models,
            "/evaluate" => Route::Evaluate,
            "/evaluate_model" => Route::EvaluateModel,
            "/sweep" => Route::Sweep,
            "/search" => Route::Search,
            // /v1/trace postdates the legacy aliases; there is no bare
            // /trace endpoint to alias, so unversioned stays Other.
            "/trace" if versioned => Route::Trace,
            _ => Route::Other,
        };
        (route, !versioned && route != Route::Other)
    }

    /// Display label (the canonical `/v1/` path, or `other`).
    pub fn label(self) -> &'static str {
        match self {
            Route::Healthz => "/v1/healthz",
            Route::Designs => "/v1/designs",
            Route::Metrics => "/v1/metrics",
            Route::Models => "/v1/models",
            Route::Evaluate => "/v1/evaluate",
            Route::EvaluateModel => "/v1/evaluate_model",
            Route::Sweep => "/v1/sweep",
            Route::Search => "/v1/search",
            Route::Trace => "/v1/trace",
            Route::Other => "other",
        }
    }
}

/// Number of log₂ latency buckets: bucket `i` counts requests with
/// latency in `[2^i, 2^(i+1))` microseconds; the last bucket is open.
pub const LATENCY_BUCKETS: usize = 26;

/// A log₂-bucketed latency histogram (microsecond resolution).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let bucket = (63 - us.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / n as f64 / 1000.0
    }

    /// Estimated latency quantile in milliseconds (0 when empty), with
    /// linear interpolation inside the winning log₂ bucket: assuming
    /// observations spread evenly across `[2^i, 2^(i+1))`, the estimate
    /// is `lower + frac · width` where `frac` is how deep into the
    /// bucket the target rank falls. `q` is clamped to `[0, 1]`. For
    /// the historical upper-edge estimate (which overstates by up to 2×
    /// but is what the `/v1/metrics` JSON has always reported), see
    /// [`Self::quantile_ms_upper_edge`].
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            seen += n;
            if seen >= target && n > 0 {
                // Bucket 0 also holds sub-µs observations, so its
                // interpolation floor is 0 rather than 2^0.
                let lower = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let upper = (1u64 << (i + 1)) as f64;
                let frac = (target - (seen - n)) as f64 / n as f64;
                return (lower + frac * (upper - lower)) / 1000.0;
            }
        }
        (1u64 << LATENCY_BUCKETS) as f64 / 1000.0
    }

    /// The pre-interpolation quantile estimate: the upper edge
    /// (`2^(i+1)` µs) of the first bucket whose cumulative count
    /// reaches `q · total` (0 when empty). Kept byte-compatible for the
    /// existing `/v1/metrics` JSON view.
    pub fn quantile_ms_upper_edge(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Upper edge of bucket i: 2^(i+1) µs.
                return (1u64 << (i + 1)) as f64 / 1000.0;
            }
        }
        (1u64 << LATENCY_BUCKETS) as f64 / 1000.0
    }

    /// Sum of all observations in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// All per-bucket (non-cumulative) counts, in bucket order —
    /// the raw series Prometheus exposition accumulates.
    pub fn bucket_counts(&self) -> [u64; LATENCY_BUCKETS] {
        let mut out = [0u64; LATENCY_BUCKETS];
        for (slot, b) in out.iter_mut().zip(&self.buckets) {
            *slot = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Snapshot of the non-empty buckets as `(upper_edge_ms, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some(((1u64 << (i + 1)) as f64 / 1000.0, n))
            })
            .collect()
    }
}

/// Number of log₂ requests-per-connection buckets (last bucket open).
pub const REUSE_BUCKETS: usize = 16;

/// A log₂ histogram over requests served per connection, recorded when
/// the connection closes — the keep-alive reuse picture: bucket 0 is
/// single-request (no reuse) connections, higher buckets are reused.
#[derive(Debug, Default)]
pub struct ReuseHistogram {
    buckets: [AtomicU64; REUSE_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl ReuseHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one closed connection that served `requests` requests
    /// (0 is clamped to the first bucket).
    pub fn record(&self, requests: u64) {
        let bucket = (63 - requests.max(1).leading_zeros() as usize).min(REUSE_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(requests, Ordering::Relaxed);
    }

    /// Number of closed connections observed.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean requests per closed connection (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Snapshot of the non-empty buckets as `(lower_edge, count)`:
    /// `lower_edge = 2^i` requests.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((1u64 << i, n))
            })
            .collect()
    }

    /// Sum of requests across all recorded connections.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// All per-bucket (non-cumulative) counts, in bucket order.
    pub fn bucket_counts(&self) -> [u64; REUSE_BUCKETS] {
        let mut out = [0u64; REUSE_BUCKETS];
        for (slot, b) in out.iter_mut().zip(&self.buckets) {
            *slot = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// Server-wide metrics shared between the event loop and the worker pool.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    requests: [AtomicU64; Route::ALL.len()],
    status_2xx: AtomicU64,
    status_3xx: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
    status_other: AtomicU64,
    rejected_busy: AtomicU64,
    deprecated_route: AtomicU64,
    coalesced: AtomicU64,
    conns_accepted: AtomicU64,
    conns_closed: AtomicU64,
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
    quarantined: AtomicU64,
    shed_deadline: AtomicU64,
    shed_overload: AtomicU64,
    queue_depth: AtomicU64,
    latency: LatencyHistogram,
    queue_wait: LatencyHistogram,
    reuse: ReuseHistogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh metrics; uptime counts from now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: Default::default(),
            status_2xx: AtomicU64::new(0),
            status_3xx: AtomicU64::new(0),
            status_4xx: AtomicU64::new(0),
            status_5xx: AtomicU64::new(0),
            status_other: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            deprecated_route: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_closed: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            queue_wait: LatencyHistogram::new(),
            reuse: ReuseHistogram::new(),
        }
    }

    /// Seconds since the metrics (≈ the server) started.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Records one handled request.
    pub fn record(&self, route: Route, status: u16, latency: Duration) {
        self.count_request(route, status);
        self.latency.record(latency);
    }

    /// Records a request with no meaningful latency measurement (protocol
    /// parse failures) — counted, but kept out of the latency histogram
    /// so probe/garbage traffic cannot skew the service's p50.
    pub fn record_unmeasured(&self, route: Route, status: u16) {
        self.count_request(route, status);
    }

    /// Records a request answered by joining an identical in-flight
    /// computation instead of running the handler itself.
    pub fn record_coalesced(&self, route: Route, status: u16, latency: Duration) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        self.record(route, status, latency);
    }

    /// Records a hit on a deprecated legacy (unversioned) route alias.
    pub fn record_deprecated_route(&self) {
        self.deprecated_route.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an accepted connection.
    pub fn record_connection_opened(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a closed connection and the number of requests it served
    /// (feeding the reuse histogram).
    pub fn record_connection_closed(&self, requests_served: u64) {
        self.conns_closed.fetch_add(1, Ordering::Relaxed);
        self.reuse.record(requests_served);
    }

    fn count_request(&self, route: Route, status: u16) {
        self.requests[Self::route_index(route)].fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.status_2xx,
            300..=399 => &self.status_3xx,
            400..=499 => &self.status_4xx,
            500..=599 => &self.status_5xx,
            // 1xx and anything out of range — previously miscounted
            // as 5xx by a catch-all arm.
            _ => &self.status_other,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection shed with 503 because the server was at its
    /// connection cap.
    pub fn record_busy_rejection(&self) {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a worker thread dying to a panic.
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a dead worker being respawned by the supervisor.
    pub fn record_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request answered from quarantine (its body has killed
    /// workers before, so it gets a deterministic error without dispatch).
    pub fn record_quarantined(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a queued request shed because its deadline expired before
    /// a worker picked it up.
    pub fn record_deadline_shed(&self) {
        self.shed_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request shed at dispatch because the worker queue was
    /// overloaded.
    pub fn record_overload_shed(&self) {
        self.shed_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// `(panics, respawns, quarantined)` worker-supervision counts.
    pub fn worker_counts(&self) -> (u64, u64, u64) {
        (
            self.worker_panics.load(Ordering::Relaxed),
            self.worker_respawns.load(Ordering::Relaxed),
            self.quarantined.load(Ordering::Relaxed),
        )
    }

    /// `(deadline_expired, overload)` shed counts.
    pub fn shed_counts(&self) -> (u64, u64) {
        (
            self.shed_deadline.load(Ordering::Relaxed),
            self.shed_overload.load(Ordering::Relaxed),
        )
    }

    /// Requests handled for one route.
    pub fn requests_for(&self, route: Route) -> u64 {
        self.requests[Self::route_index(route)].load(Ordering::Relaxed)
    }

    /// Index of `route` in [`Route::ALL`]. Every variant appears there;
    /// fall back to the `Other` slot rather than panicking on a metrics
    /// path if the two ever drift.
    fn route_index(route: Route) -> usize {
        Route::ALL
            .iter()
            .position(|r| *r == route)
            .unwrap_or(Route::ALL.len() - 1)
    }

    /// Total requests handled.
    pub fn total_requests(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// `(2xx, 4xx, 5xx)` response counts (the historical view; see
    /// [`Self::status_counts_full`] for all five classes).
    pub fn status_counts(&self) -> (u64, u64, u64) {
        (
            self.status_2xx.load(Ordering::Relaxed),
            self.status_4xx.load(Ordering::Relaxed),
            self.status_5xx.load(Ordering::Relaxed),
        )
    }

    /// `(2xx, 3xx, 4xx, 5xx, other)` response counts, where `other` is
    /// 1xx plus anything outside 100–599.
    pub fn status_counts_full(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.status_2xx.load(Ordering::Relaxed),
            self.status_3xx.load(Ordering::Relaxed),
            self.status_4xx.load(Ordering::Relaxed),
            self.status_5xx.load(Ordering::Relaxed),
            self.status_other.load(Ordering::Relaxed),
        )
    }

    /// Connections shed with 503.
    pub fn busy_rejections(&self) -> u64 {
        self.rejected_busy.load(Ordering::Relaxed)
    }

    /// Requests that arrived on a deprecated legacy route alias.
    pub fn deprecated_routes(&self) -> u64 {
        self.deprecated_route.load(Ordering::Relaxed)
    }

    /// Requests answered by coalescing onto an in-flight computation.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// `(accepted, closed)` connection counts.
    pub fn connection_counts(&self) -> (u64, u64) {
        (
            self.conns_accepted.load(Ordering::Relaxed),
            self.conns_closed.load(Ordering::Relaxed),
        )
    }

    /// Connections currently open (accepted − closed).
    pub fn active_connections(&self) -> u64 {
        let (accepted, closed) = self.connection_counts();
        accepted.saturating_sub(closed)
    }

    /// Records a job entering the worker queue (bumps the depth gauge).
    pub fn record_enqueued(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job leaving the worker queue after waiting `wait`
    /// (drops the depth gauge, feeds the queue-wait histogram).
    pub fn record_dequeued(&self, wait: Duration) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.queue_wait.record(wait);
    }

    /// Jobs currently sitting in the worker queue.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// The queue-wait histogram (time between enqueue and worker
    /// pickup).
    pub fn queue_wait(&self) -> &LatencyHistogram {
        &self.queue_wait
    }

    /// The requests-per-connection histogram.
    pub fn reuse(&self) -> &ReuseHistogram {
        &self.reuse
    }

    /// The latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_map_paths_and_labels() {
        assert_eq!(Route::of("/v1/healthz"), Route::Healthz);
        assert_eq!(Route::of("/healthz"), Route::Healthz);
        assert_eq!(Route::of("/v1/evaluate"), Route::Evaluate);
        assert_eq!(Route::of("/evaluate"), Route::Evaluate);
        assert_eq!(Route::of("/nope"), Route::Other);
        assert_eq!(Route::of("/v1/nope"), Route::Other);
        for r in Route::ALL {
            assert!(!r.label().is_empty());
        }
    }

    #[test]
    fn resolve_flags_legacy_aliases_only() {
        assert_eq!(Route::resolve("/v1/healthz"), (Route::Healthz, false));
        assert_eq!(Route::resolve("/healthz"), (Route::Healthz, true));
        assert_eq!(Route::resolve("/v1/sweep"), (Route::Sweep, false));
        assert_eq!(Route::resolve("/sweep"), (Route::Sweep, true));
        // /v1/trace is new — no legacy alias, so bare /trace is a 404.
        assert_eq!(Route::resolve("/v1/trace"), (Route::Trace, false));
        assert_eq!(Route::resolve("/trace"), (Route::Other, false));
        // 404s are not deprecations, versioned or not.
        assert_eq!(Route::resolve("/nope"), (Route::Other, false));
        assert_eq!(Route::resolve("/v1/nope"), (Route::Other, false));
        // "/v1healthz" has no path separator after the prefix.
        assert_eq!(Route::resolve("/v1healthz"), (Route::Other, false));
        assert_eq!(Route::resolve("/v1"), (Route::Other, false));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ms(0.5), 0.0);
        // 90 fast requests (~8 µs), 10 slow (~16 ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(8));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(16_000));
        }
        assert_eq!(h.count(), 100);
        // p50 lands in the 8 µs bucket (upper edge 16 µs = 0.016 ms);
        // interpolation stays inside it.
        assert!(h.quantile_ms(0.5) <= 0.016 + 1e-12);
        // p99 lands in the slow bucket [8.192, 16.384) ms; interpolated
        // rank 99 of 100 sits 9/10 into it.
        let p99 = h.quantile_ms(0.99);
        assert!((8.192..=16.384).contains(&p99), "p99 = {p99}");
        assert!((p99 - 15.5648).abs() < 1e-9, "p99 = {p99}");
        assert!(h.mean_ms() > 0.0);
        assert_eq!(h.nonzero_buckets().len(), 2);
    }

    #[test]
    fn upper_edge_quantile_keeps_historical_behavior() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ms_upper_edge(0.5), 0.0);
        for _ in 0..90 {
            h.record(Duration::from_micros(8));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(16_000));
        }
        // The historical estimate is always a bucket upper edge.
        assert_eq!(h.quantile_ms_upper_edge(0.5), 0.016);
        assert_eq!(h.quantile_ms_upper_edge(0.99), 16.384);
        // Interpolation never exceeds the upper-edge estimate.
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert!(h.quantile_ms(q) <= h.quantile_ms_upper_edge(q) + 1e-12);
        }
    }

    #[test]
    fn bucket_counts_and_sums_snapshot_raw_series() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(8));
        h.record(Duration::from_micros(9));
        h.record(Duration::from_micros(100));
        let counts = h.bucket_counts();
        assert_eq!(counts.iter().sum::<u64>(), 3);
        assert_eq!(counts[3], 2); // [8, 16) µs
        assert_eq!(counts[6], 1); // [64, 128) µs
        assert_eq!(h.sum_us(), 117);
        let r = ReuseHistogram::new();
        r.record(1);
        r.record(150);
        assert_eq!(r.bucket_counts().iter().sum::<u64>(), 2);
        assert_eq!(r.sum(), 151);
    }

    #[test]
    fn zero_and_huge_latencies_stay_in_range() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(100_000));
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ms(1.0) > 0.0);
    }

    #[test]
    fn reuse_histogram_tracks_requests_per_connection() {
        let h = ReuseHistogram::new();
        h.record(1); // one-shot connection
        h.record(1);
        h.record(150); // well-reused keep-alive connection
        h.record(0); // closed before any request; clamps to bucket 0
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 38.0).abs() < 1e-9);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(1, 3), (128, 1)]);
    }

    #[test]
    fn metrics_record_and_classify() {
        let m = Metrics::new();
        m.record(Route::Healthz, 200, Duration::from_micros(5));
        m.record(Route::Evaluate, 200, Duration::from_micros(50));
        m.record(Route::Other, 404, Duration::from_micros(2));
        m.record(Route::Sweep, 500, Duration::from_micros(9));
        m.record_busy_rejection();
        assert_eq!(m.total_requests(), 4);
        assert_eq!(m.requests_for(Route::Evaluate), 1);
        assert_eq!(m.status_counts(), (2, 1, 1));
        assert_eq!(m.busy_rejections(), 1);
        assert_eq!(m.latency().count(), 4);
        assert!(m.uptime_s() >= 0.0);
    }

    #[test]
    fn status_classes_cover_1xx_3xx_and_out_of_range() {
        let m = Metrics::new();
        m.record(Route::Healthz, 200, Duration::from_micros(1));
        m.record(Route::Healthz, 301, Duration::from_micros(1));
        m.record(Route::Healthz, 304, Duration::from_micros(1));
        m.record(Route::Healthz, 404, Duration::from_micros(1));
        m.record(Route::Healthz, 500, Duration::from_micros(1));
        m.record(Route::Healthz, 101, Duration::from_micros(1));
        m.record(Route::Healthz, 999, Duration::from_micros(1));
        // 1xx/3xx/out-of-range no longer pollute the 5xx counter.
        assert_eq!(m.status_counts(), (1, 1, 1));
        assert_eq!(m.status_counts_full(), (1, 2, 1, 1, 2));
    }

    #[test]
    fn queue_gauge_and_wait_histogram() {
        let m = Metrics::new();
        assert_eq!(m.queue_depth(), 0);
        m.record_enqueued();
        m.record_enqueued();
        assert_eq!(m.queue_depth(), 2);
        m.record_dequeued(Duration::from_micros(50));
        assert_eq!(m.queue_depth(), 1);
        m.record_dequeued(Duration::from_micros(150));
        assert_eq!(m.queue_depth(), 0);
        assert_eq!(m.queue_wait().count(), 2);
        assert_eq!(m.queue_wait().sum_us(), 200);
    }

    #[test]
    fn connection_and_coalescing_counters() {
        let m = Metrics::new();
        m.record_connection_opened();
        m.record_connection_opened();
        assert_eq!(m.active_connections(), 2);
        m.record_connection_closed(5);
        assert_eq!(m.connection_counts(), (2, 1));
        assert_eq!(m.active_connections(), 1);
        assert_eq!(m.reuse().count(), 1);
        m.record_coalesced(Route::Evaluate, 200, Duration::from_micros(3));
        assert_eq!(m.coalesced(), 1);
        assert_eq!(
            m.requests_for(Route::Evaluate),
            1,
            "coalesced counts as a request"
        );
        m.record_deprecated_route();
        assert_eq!(m.deprecated_routes(), 1);
    }

    #[test]
    fn supervision_and_shed_counters() {
        let m = Metrics::new();
        assert_eq!(m.worker_counts(), (0, 0, 0));
        assert_eq!(m.shed_counts(), (0, 0));
        m.record_worker_panic();
        m.record_worker_respawn();
        m.record_worker_panic();
        m.record_quarantined();
        m.record_deadline_shed();
        m.record_overload_shed();
        m.record_overload_shed();
        assert_eq!(m.worker_counts(), (2, 1, 1));
        assert_eq!(m.shed_counts(), (1, 2));
    }
}
