//! The serving loop: a `TcpListener` accept loop feeding a **bounded**
//! worker pool.
//!
//! Accepted connections are pushed onto a bounded queue
//! (`std::sync::mpsc::sync_channel`); a fixed pool of worker threads pops
//! and serves them one request at a time. When the queue is full the
//! connection is shed immediately with a 503 instead of queueing without
//! bound — under overload the server degrades by rejecting, not by
//! growing its memory footprint.
//!
//! Shutdown is cooperative: [`Shutdown::trigger`] sets a shared flag and
//! nudges the (blocking) accept loop awake with a loopback connection to
//! the listener — no idle polling, so accepts have zero added latency
//! and shutdown is immediate. Once triggered, the loop stops accepting,
//! the queue sender is dropped, the workers drain whatever was already
//! queued, and [`Server::run`] returns. The `hl-serve` binary wires the
//! switch to SIGTERM/SIGINT (see [`crate::signal`]); tests and the
//! in-process load bench use [`ServerHandle::stop`].

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::api::App;
use crate::http::{read_request, Parsed, Response};

/// The default listen address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:8733";

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker-thread count (0 is clamped to 1).
    pub workers: usize,
    /// Bounded accept-queue depth; connections beyond it are shed with
    /// a 503.
    pub backlog: usize,
    /// Per-socket read/write timeout.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = hl_sim::engine::default_threads();
        Self {
            addr: DEFAULT_ADDR.to_string(),
            workers,
            backlog: workers * 4,
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    app: Arc<App>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

/// The cooperative shutdown switch for a running server.
///
/// [`Shutdown::trigger`] sets the shared flag and pokes the blocking
/// accept loop awake with a throwaway loopback connection, so the drain
/// starts immediately without the accept loop ever having to poll.
#[derive(Debug, Clone)]
pub struct Shutdown {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl Shutdown {
    /// True once shutdown has been requested.
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Requests shutdown and wakes the accept loop.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // Wake the blocking accept; the loop sees the flag and drops this
        // throwaway connection without answering it. An unspecified bind
        // address (0.0.0.0 / ::) is not portably connectable, so wake via
        // loopback on the same port.
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            addr.set_ip(match addr.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
    }
}

impl Server {
    /// Binds the listen socket.
    ///
    /// # Errors
    /// Propagates `bind` failures (address in use, permission, …).
    pub fn bind(config: ServerConfig, app: App) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Self {
            listener,
            app: Arc::new(app),
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared application state.
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// The shutdown switch; [`Shutdown::trigger`] makes [`Server::run`]
    /// drain and return.
    ///
    /// # Errors
    /// Propagates `local_addr` failures (the switch needs the address to
    /// wake the accept loop).
    pub fn shutdown_switch(&self) -> io::Result<Shutdown> {
        Ok(Shutdown {
            flag: Arc::clone(&self.shutdown),
            addr: self.local_addr()?,
        })
    }

    /// Serves until the shutdown switch is triggered, then drains the
    /// queue, joins the workers, and returns.
    ///
    /// # Errors
    /// Propagates fatal listener errors; per-connection I/O errors only
    /// drop that connection.
    pub fn run(self) -> io::Result<()> {
        let workers = self.config.workers.max(1);
        let (tx, rx) = sync_channel::<TcpStream>(self.config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let app = Arc::clone(&self.app);
                let timeout = self.config.io_timeout;
                std::thread::spawn(move || worker_loop(&rx, &app, timeout))
            })
            .collect();

        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // A wake-up connection from Shutdown::trigger lands
                    // here; re-check the flag before dispatching.
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            self.app.metrics().record_busy_rejection();
                            // Shed off the accept thread: writing the 503
                            // to a slow client must never stall accepts.
                            let timeout = self.config.io_timeout;
                            let spawned = std::thread::Builder::new()
                                .name("hl-serve-shed".into())
                                .spawn(move || shed_busy(stream, timeout));
                            drop(spawned); // on spawn failure the stream just drops
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Stop feeding the pool; workers drain the queue and exit.
        drop(tx);
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    }

    /// Runs the server on a background thread, returning a handle with
    /// the resolved address and a stop switch. Used by the tests and the
    /// in-process load bench.
    ///
    /// # Errors
    /// Propagates `local_addr` failures.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = self.shutdown_switch()?;
        let app = Arc::clone(&self.app);
        let join = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            shutdown,
            app,
            join,
        })
    }
}

/// A running background server (from [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Shutdown,
    app: Arc<App>,
    join: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (metrics/cache introspection).
    pub fn app(&self) -> &App {
        &self.app
    }

    /// Signals shutdown and waits for the drain to finish.
    ///
    /// # Errors
    /// Propagates the server loop's fatal error, if any.
    ///
    /// # Panics
    /// Panics if the server thread itself panicked.
    pub fn stop(self) -> io::Result<()> {
        self.shutdown.trigger();
        self.join.join().expect("server thread panicked")
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, app: &App, timeout: Duration) {
    loop {
        // Hold the lock only for the pop, never while serving.
        let next = { rx.lock().expect("queue lock poisoned").recv() };
        match next {
            Ok(stream) => serve_connection(app, stream, timeout),
            Err(_) => return, // Sender dropped: shutdown.
        }
    }
}

fn serve_connection(app: &App, stream: TcpStream, timeout: Duration) {
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let deadline = std::time::Instant::now() + timeout;
    let response = match read_request(&mut reader, deadline) {
        Parsed::Ok(request) => app.handle(&request),
        Parsed::Bad(err) => app.handle_parse_error(&err),
        Parsed::Closed => return,
    };
    let mut stream = stream;
    let _ = response.write_to(&mut stream);
    finish(stream);
}

fn shed_busy(stream: TcpStream, timeout: Duration) {
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(timeout));
    let body = r#"{"error":"server busy: accept queue full"}"#;
    let _ = Response::json(503, body).write_to(&mut stream);
    finish(stream);
}

/// Closes a served connection without losing the response: unread request
/// bytes in the receive buffer would make `close` send a TCP RST that can
/// destroy the in-flight response (the 413/503 paths answer before
/// reading the payload), so signal end-of-response, then drain what the
/// client already sent before dropping the socket. The drain has a hard
/// wall-clock budget — a client trickling bytes cannot hold the thread
/// past it.
fn finish(stream: TcpStream) {
    use std::io::Read;
    const DRAIN_BUDGET: Duration = Duration::from_millis(250);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let deadline = std::time::Instant::now() + DRAIN_BUDGET;
    let mut sink = [0u8; 4096];
    let mut stream = stream;
    loop {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() || stream.set_read_timeout(Some(remaining)).is_err() {
            break;
        }
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}
