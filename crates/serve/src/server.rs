//! The serving core: a single-threaded `epoll` event loop owning every
//! connection, with evaluation fanned out to a worker pool.
//!
//! One thread runs [`Server::run`]: nonblocking accepts, per-connection
//! read/write state machines, HTTP keep-alive and pipelining (responses
//! flush strictly in request order through per-connection slots), and
//! timers (idle keep-alive timeout, a 408 for stalled partial requests,
//! and a short lame-duck drain before close so an in-flight response is
//! never destroyed by a TCP RST). The loop never computes: `GET`s are
//! answered inline (they are registry/metrics reads), `POST`s are handed
//! to a fixed worker pool over a channel, and completed responses come
//! back through a mutex-guarded queue plus the poller's self-pipe
//! [`Waker`].
//!
//! **Coalescing**: identical in-flight `POST`s — same path, same body —
//! collapse onto one evaluation. The first arrival dispatches a job;
//! later arrivals (any connection) just join its waiter list and are
//! answered from the same [`Response`] when it completes, each with its
//! own `Connection` framing. Handlers are pure functions of the body, so
//! the joined responses are byte-identical to what a dedicated
//! evaluation would have produced; joiners are counted in the
//! `coalesced` metric instead of re-entering the engine.
//!
//! **Overload**: beyond [`ServerConfig::max_connections`] the accept
//! loop sheds new connections immediately with a 503 — the server
//! degrades by rejecting, not by queueing without bound. The worker
//! queue is bounded the same way ([`ServerConfig::max_queue`]):
//! expensive routes (`/v1/search`, `/v1/sweep`) shed at a quarter of
//! the bound, every `POST` sheds at the bound, and shed 503s carry a
//! `Retry-After` so a well-behaved client backs off instead of
//! hammering. Requests may carry a `deadline_ms` budget (or inherit
//! [`ServerConfig::default_deadline`]); a job whose deadline expired
//! while it sat in the queue is shed with a 503 *before* evaluation —
//! under overload the server spends cycles only on answers somebody is
//! still waiting for.
//!
//! **Supervision**: handler panics are caught in [`App::handle`] and
//! answered 500; a worker thread that dies anyway (fault injection, or
//! a panic outside the guarded region) still answers its coalition —
//! a drop guard posts a structured 500 during the unwind — and is
//! respawned by the event loop. A request body that has panicked
//! [`QUARANTINE_AFTER`] times is quarantined: answered a deterministic
//! 500 without ever reaching the pool again. Panics, respawns, and
//! quarantines are all visible in `/v1/metrics`.
//!
//! **Fault injection**: when [`ServerConfig::faults`] carries a
//! [`FaultPlane`] (the `HL_FAULTS` env var / `--faults` flag), the
//! socket read/write paths, the worker loop, the poller wait, and the
//! snapshot loader draw from its seeded decision streams. Without a
//! plane every injection point is a single branch on an absent
//! `Option` and the server's behavior is byte-identical to a build
//! that never heard of faults.
//!
//! **Observability**: every request carries a trace id (client-supplied
//! `X-Request-Id` or generated), echoed on the response and recorded —
//! with a parse/queue/eval/serialize/write span waterfall whose spans
//! sum exactly to the total — in the [`crate::trace`] ring served at
//! `GET /v1/trace`. Fault injections, sheds, and snapshot failures emit
//! structured JSON log lines (see [`crate::log`]) tagged with the
//! nearest trace id: the request's where one exists, the connection's
//! for socket-level faults, a boot-scoped id for loop-level events.
//!
//! **Shutdown** is cooperative: [`Shutdown::trigger`] sets a flag and
//! wakes the loop. The listener closes first, in-flight requests finish
//! and flush (with a hard drain budget), the worker pool is joined, and
//! — when [`ServerConfig::snapshot`] is set — the engine's evaluation
//! cache is persisted so the next boot starts warm
//! (see [`crate::snapshot`]).

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::api::App;
use crate::epoll::{Event, Interest, Poller, Waker};
use crate::faults::{FaultPlane, FaultPoint};
use crate::http::{parse_request, ParseError, ParseStatus, Request, Response};
use crate::json::Json;
use crate::metrics::Route;
use crate::schema::{ErrorBody, MAX_DEADLINE_MS};
use crate::snapshot;
use crate::trace::TraceRecord;

/// The default listen address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:8733";

/// Token the listener is registered under (`u64::MAX` is the waker's).
const LISTEN_TOKEN: u64 = u64::MAX - 1;

/// Most requests a connection may have in flight before the loop stops
/// reading from it (pipelining backpressure).
const MAX_PIPELINE: usize = 32;

/// Lame-duck budget: after the last response is flushed the socket's
/// write side closes, and the loop keeps draining client bytes this long
/// before dropping the fd (unread bytes at close would turn into a RST
/// that can destroy the just-sent response).
const LAME_DUCK: Duration = Duration::from_millis(250);

/// Hard wall-clock budget for the shutdown drain.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(5);

/// `Retry-After` seconds advertised on shed (503) responses.
const RETRY_AFTER_SECS: u32 = 1;

/// A request body is quarantined once this many workers have panicked
/// evaluating it.
const QUARANTINE_AFTER: u32 = 2;

/// Bound on the panic-history map; past it the history resets rather
/// than growing without limit under a panic storm.
const PANIC_HISTORY_CAP: usize = 1024;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker-thread count (0 is clamped to 1).
    pub workers: usize,
    /// Open-connection cap; accepts beyond it are shed with a 503.
    pub max_connections: usize,
    /// Keep-alive idle timeout: a connection with no buffered bytes and
    /// no in-flight requests closes after this long.
    pub idle_timeout: Duration,
    /// Partial-request deadline: a request that stops arriving mid-head
    /// or mid-body is answered 408 after this long.
    pub request_timeout: Duration,
    /// Evaluation-cache snapshot path: loaded (if present and
    /// compatible) before serving, saved on graceful drain.
    pub snapshot: Option<PathBuf>,
    /// Periodic background snapshot interval; `None` saves only on
    /// graceful drain. Meaningful only with [`ServerConfig::snapshot`].
    pub snapshot_interval: Option<Duration>,
    /// Worker-queue bound for overload shedding: `/v1/search` and
    /// `/v1/sweep` shed at a quarter of this, every `POST` at the full
    /// depth. Coalescing joiners are exempt (they add no queue work).
    pub max_queue: usize,
    /// Deadline applied to requests that carry no `deadline_ms` of
    /// their own; a job that outlives its deadline in the queue is shed
    /// with a 503 before evaluation. `None` never sheds by default.
    pub default_deadline: Option<Duration>,
    /// Fault-injection plane (`HL_FAULTS` / `--faults`). `None` in
    /// production: every injection point is one branch on an absent
    /// option and behavior is byte-identical to a fault-free build.
    pub faults: Option<Arc<FaultPlane>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: DEFAULT_ADDR.to_string(),
            workers: hl_sim::engine::default_threads(),
            max_connections: 1024,
            idle_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(5),
            snapshot: None,
            snapshot_interval: None,
            max_queue: 256,
            default_deadline: None,
            faults: None,
        }
    }
}

/// The cooperative shutdown switch for a running server: sets a shared
/// flag and wakes the event loop through the poller's self-pipe.
#[derive(Debug, Clone)]
pub struct Shutdown {
    flag: Arc<AtomicBool>,
    waker: Waker,
}

impl Shutdown {
    /// True once shutdown has been requested.
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Requests shutdown and wakes the event loop.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
        self.waker.wake();
    }
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    app: Arc<App>,
    poller: Poller,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

impl Server {
    /// Binds the listen socket and creates the event loop's poller.
    ///
    /// # Errors
    /// Propagates `bind` failures (address in use, permission, …) and
    /// poller creation failures (non-linux targets are unsupported).
    pub fn bind(config: ServerConfig, app: App) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            app: Arc::new(app),
            poller: Poller::new()?,
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared application state.
    pub fn app(&self) -> &Arc<App> {
        &self.app
    }

    /// The shutdown switch; [`Shutdown::trigger`] makes [`Server::run`]
    /// drain and return.
    ///
    /// # Errors
    /// None today; the `Result` is kept for call-site stability.
    pub fn shutdown_switch(&self) -> io::Result<Shutdown> {
        Ok(Shutdown {
            flag: Arc::clone(&self.shutdown),
            waker: self.poller.waker(),
        })
    }

    /// Serves until the shutdown switch is triggered, then drains
    /// in-flight work, joins the workers, saves the snapshot (if
    /// configured), and returns.
    ///
    /// # Errors
    /// Propagates fatal poller/listener errors; per-connection I/O
    /// errors only drop that connection.
    pub fn run(self) -> io::Result<()> {
        let faults = self.config.faults.clone();
        // Boot-scoped trace id: attributes log events that happen
        // outside any request (snapshot I/O, loop-level injections).
        let boot_id = self.app.request_id(None);
        if let Some(path) = &self.config.snapshot {
            let cache = self.app.context().engine().eval_cache();
            let log = Some((self.app.logger(), boot_id.as_str()));
            match snapshot::load_logged(cache, path, faults.as_deref(), log) {
                Ok(_) => {}
                Err(snapshot::SnapshotError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => self.app.logger().warn(
                    "snapshot_load_failed",
                    &[
                        ("trace_id", Json::str(boot_id.as_str())),
                        ("path", Json::str(path.display().to_string())),
                        ("error", Json::str(e.to_string())),
                    ],
                ),
            }
        }

        let completions: Arc<Mutex<VecDeque<Completion>>> = Arc::default();
        let (tx, rx) = channel::<Job>();
        let shared = Arc::new(WorkerShared {
            rx: Mutex::new(rx),
            app: Arc::clone(&self.app),
            completions: Arc::clone(&completions),
            waker: self.poller.waker(),
            faults: faults.clone(),
            default_deadline: self.config.default_deadline,
        });
        let mut workers: Vec<JoinHandle<()>> = (0..self.config.workers.max(1))
            .map(|_| spawn_worker(&shared))
            .collect();

        self.poller
            .register(self.listener.as_raw_fd(), LISTEN_TOKEN, Interest::READ)?;

        let mut el = EventLoop {
            poller: &self.poller,
            app: &self.app,
            config: &self.config,
            conns: Vec::new(),
            free: Vec::new(),
            active: 0,
            next_gen: 0,
            inflight: HashMap::new(),
            jobs: tx,
            completions: &completions,
            panics: HashMap::new(),
            draining: false,
        };

        let mut next_snapshot = match (&self.config.snapshot, self.config.snapshot_interval) {
            (Some(_), Some(interval)) => Some(Instant::now() + interval),
            _ => None,
        };

        let mut events: Vec<Event> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            let mut wait_for = el.next_timeout();
            if let Some(due) = next_snapshot {
                let until = due
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(10));
                wait_for = Some(wait_for.map_or(until, |t| t.min(until)));
            }
            let timeout = wait_for.map(|d| u32::try_from(d.as_millis()).unwrap_or(u32::MAX));
            self.poller.wait(&mut events, timeout)?;
            if let Some(plane) = faults.as_deref() {
                // An injected spurious wakeup: the loop sees zero
                // events and must cope on timers and level-triggered
                // readiness alone.
                if plane.fire(FaultPoint::SpuriousWake) {
                    log_fault(&self.app, FaultPoint::SpuriousWake, &boot_id);
                    events.clear();
                }
            }
            supervise_workers(&mut workers, &shared);
            el.drain_completions();
            for ev in events.drain(..) {
                match ev.token {
                    Poller::WAKE_TOKEN => {}
                    LISTEN_TOKEN => el.accept_ready(&self.listener),
                    token => el.conn_ready(token as usize, ev),
                }
            }
            el.check_timers(Instant::now());
            if let Some(due) = next_snapshot {
                if Instant::now() >= due {
                    if let Some(path) = &self.config.snapshot {
                        let cache = self.app.context().engine().eval_cache();
                        if let Err(e) = snapshot::save(cache, path) {
                            self.app.logger().warn(
                                "snapshot_save_failed",
                                &[
                                    ("trace_id", Json::str(boot_id.as_str())),
                                    ("path", Json::str(path.display().to_string())),
                                    ("error", Json::str(e.to_string())),
                                    ("periodic", Json::Bool(true)),
                                ],
                            );
                        }
                    }
                    next_snapshot = self
                        .config
                        .snapshot_interval
                        .map(|interval| Instant::now() + interval);
                }
            }
        }

        // Drain: stop accepting, let in-flight requests finish and
        // flush, then close whatever remains.
        self.poller.deregister(self.listener.as_raw_fd())?;
        drop(self.listener);
        el.begin_shutdown();
        let deadline = Instant::now() + SHUTDOWN_DRAIN;
        while el.has_work() && Instant::now() < deadline {
            let budget = deadline.saturating_duration_since(Instant::now());
            let timeout = el
                .next_timeout()
                .map_or(budget, |t| t.min(budget))
                .min(Duration::from_millis(250));
            self.poller
                .wait(&mut events, Some(timeout.as_millis() as u32))?;
            // Keep supervising through the drain: queued jobs must
            // still be answered even if a worker dies mid-drain.
            supervise_workers(&mut workers, &shared);
            el.drain_completions();
            for ev in events.drain(..) {
                match ev.token {
                    Poller::WAKE_TOKEN | LISTEN_TOKEN => {}
                    token => el.conn_ready(token as usize, ev),
                }
            }
            el.check_timers(Instant::now());
        }
        el.close_all();

        // Stop feeding the pool; workers drain the queue and exit.
        drop(el);
        for h in workers {
            let _ = h.join();
        }

        if let Some(path) = &self.config.snapshot {
            let cache = self.app.context().engine().eval_cache();
            if let Err(e) = snapshot::save(cache, path) {
                self.app.logger().error(
                    "snapshot_save_failed",
                    &[
                        ("trace_id", Json::str(boot_id.as_str())),
                        ("path", Json::str(path.display().to_string())),
                        ("error", Json::str(e.to_string())),
                        ("periodic", Json::Bool(false)),
                    ],
                );
            }
        }
        Ok(())
    }

    /// Runs the server on a background thread, returning a handle with
    /// the resolved address and a stop switch. Used by the tests and the
    /// in-process load bench.
    ///
    /// # Errors
    /// Propagates `local_addr` failures.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shutdown = self.shutdown_switch()?;
        let app = Arc::clone(&self.app);
        let join = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            shutdown,
            app,
            join,
        })
    }
}

/// A running background server (from [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Shutdown,
    app: Arc<App>,
    join: JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (metrics/cache introspection).
    pub fn app(&self) -> &App {
        &self.app
    }

    /// Signals shutdown and waits for the drain to finish.
    ///
    /// # Errors
    /// Propagates the server loop's fatal error, if any.
    ///
    /// # Panics
    /// Panics if the server thread itself panicked.
    pub fn stop(self) -> io::Result<()> {
        self.shutdown.trigger();
        self.join.join().expect("server thread panicked")
    }
}

/// One unit of worker-pool work: the first request of a coalition.
struct Job {
    key: CoalesceKey,
    req: Request,
    /// When the job entered the queue — the deadline clock.
    enqueued: Instant,
    /// The coalition leader's trace id: attributes worker-side log
    /// events (injected stalls/panics, deadline sheds) to a request.
    trace_id: String,
}

/// A finished worker-pool evaluation, addressed back to its coalition.
struct Completion {
    key: CoalesceKey,
    resp: Response,
    /// The evaluation panicked (contained or thread-fatal); feeds the
    /// per-body quarantine count.
    panicked: bool,
    /// Wall time the worker spent in the handler — the trace eval span.
    eval_us: u64,
    /// EvalCache hit delta observed across the evaluation.
    eval_hits: u64,
    /// EvalCache miss delta observed across the evaluation.
    eval_misses: u64,
    /// The leader's terminal outcome; joiners get `"coalesce_join"`.
    outcome: &'static str,
}

/// Coalescing identity: method is always `POST`, so path + body is the
/// full input of the (pure) handler.
type CoalesceKey = (String, Vec<u8>);

/// One request waiting on a coalition's shared evaluation.
struct Waiter {
    conn: usize,
    gen: u64,
    seq: u64,
    keep_alive: bool,
    enqueued: Instant,
    /// This waiter's own trace id — every joiner keeps its own.
    id: String,
    /// When this request's bytes began parsing — the trace clock.
    t_start: Instant,
    /// Parse span, measured before the request reached the coalition.
    parse_us: u64,
}

/// One in-flight request's response slot; responses flush strictly in
/// `seq` order regardless of completion order.
struct Slot {
    seq: u64,
    bytes: Option<Vec<u8>>,
    /// The request's trace, carried until its last byte is written.
    trace: Option<PendingTrace>,
}

/// A trace being assembled while its request moves through the loop.
///
/// Span fields are checkpoint deltas: each one is "elapsed since
/// `t_start` minus every span already recorded" (saturating), so the
/// five spans plus the final write span always sum *exactly* to the
/// recorded total — the waterfall never under- or over-counts.
struct PendingTrace {
    id: String,
    route: &'static str,
    status: u16,
    outcome: &'static str,
    t_start: Instant,
    parse_us: u64,
    queue_us: u64,
    eval_us: u64,
    serialize_us: u64,
    eval_hits: u64,
    eval_misses: u64,
}

impl PendingTrace {
    fn new(id: String, route: &'static str, t_start: Instant, parse_us: u64) -> Self {
        Self {
            id,
            route,
            status: 0,
            outcome: "complete",
            t_start,
            parse_us,
            queue_us: 0,
            eval_us: 0,
            serialize_us: 0,
            eval_hits: 0,
            eval_misses: 0,
        }
    }

    fn elapsed_us(&self) -> u64 {
        u64::try_from(self.t_start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn spans_us(&self) -> u64 {
        self.parse_us + self.queue_us + self.eval_us + self.serialize_us
    }

    /// Closes the serialize span: whatever elapsed time parse/queue/eval
    /// did not claim was spent staging the response bytes.
    fn mark_serialized(&mut self, status: u16, outcome: &'static str) {
        self.status = status;
        self.outcome = outcome;
        self.serialize_us = self.elapsed_us().saturating_sub(self.spans_us());
    }

    /// Finishes at the write watermark: the remaining elapsed time is
    /// the write span.
    fn finish(self) -> TraceRecord {
        let total_us = self.elapsed_us();
        let write_us = total_us.saturating_sub(self.spans_us());
        TraceRecord {
            id: self.id,
            route: self.route,
            status: self.status,
            outcome: self.outcome,
            // App::observe_trace back-computes this from server uptime.
            started_s: 0.0,
            total_us,
            parse_us: self.parse_us,
            queue_us: self.queue_us,
            eval_us: self.eval_us,
            serialize_us: self.serialize_us,
            write_us,
            eval_cache_hits: self.eval_hits,
            eval_cache_misses: self.eval_misses,
        }
    }
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    fd: RawFd,
    /// Generation stamp: completions for a closed connection whose slab
    /// slot was reused must not write into the new connection.
    gen: u64,
    /// Unparsed request bytes.
    buf: Vec<u8>,
    /// In-flight requests, in arrival order.
    pending: VecDeque<Slot>,
    next_seq: u64,
    /// Serialized responses being written.
    out: Vec<u8>,
    out_pos: usize,
    /// False once no further requests will be parsed (Connection: close,
    /// parse error, EOF, shutdown).
    reading: bool,
    /// Close once everything pending has flushed.
    close_after: bool,
    /// The peer already half-closed; no lame-duck drain needed.
    peer_eof: bool,
    /// Lame-duck deadline once the write side is shut down.
    lame_duck: Option<Instant>,
    last_activity: Instant,
    served: u64,
    interest: Interest,
    /// Connection-scoped trace id: attributes socket-level fault events
    /// that fire outside (or across) individual requests.
    trace_id: String,
    /// Cumulative bytes ever written to the socket — the watermark that
    /// finalizes traces in [`Conn::traces`].
    written_cum: u64,
    /// Retired traces waiting for their last byte to reach the kernel,
    /// keyed by the `written_cum` value that completes each one.
    traces: VecDeque<(u64, PendingTrace)>,
}

struct EventLoop<'a> {
    poller: &'a Poller,
    app: &'a Arc<App>,
    config: &'a ServerConfig,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    active: usize,
    next_gen: u64,
    inflight: HashMap<CoalesceKey, Vec<Waiter>>,
    jobs: Sender<Job>,
    completions: &'a Mutex<VecDeque<Completion>>,
    /// Worker panics per request body; at [`QUARANTINE_AFTER`] the body
    /// is quarantined. Bounded by [`PANIC_HISTORY_CAP`].
    panics: HashMap<CoalesceKey, u32>,
    draining: bool,
}

impl EventLoop<'_> {
    // ---- accept path -------------------------------------------------

    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.active >= self.config.max_connections {
                        self.shed(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    let id = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    self.next_gen += 1;
                    let conn = Conn {
                        stream,
                        fd,
                        gen: self.next_gen,
                        buf: Vec::new(),
                        pending: VecDeque::new(),
                        next_seq: 0,
                        out: Vec::new(),
                        out_pos: 0,
                        reading: true,
                        close_after: false,
                        peer_eof: false,
                        lame_duck: None,
                        last_activity: Instant::now(),
                        served: 0,
                        interest: Interest::READ,
                        trace_id: self.app.request_id(None),
                        written_cum: 0,
                        traces: VecDeque::new(),
                    };
                    if self.poller.register(fd, id as u64, Interest::READ).is_err() {
                        self.free.push(id);
                        continue;
                    }
                    self.conns[id] = Some(conn);
                    self.active += 1;
                    self.app.metrics().record_connection_opened();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break, // transient accept failure; retry on next event
            }
        }
    }

    /// Sheds an over-limit connection with an immediate 503. The socket
    /// is still blocking (accepted sockets don't inherit the listener's
    /// nonblocking flag), so a short write timeout bounds the cost.
    fn shed(&mut self, mut stream: TcpStream) {
        self.app.metrics().record_busy_rejection();
        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
        let body = ErrorBody::new(503, "server busy: connection limit reached")
            .to_json()
            .encode();
        let _ = stream.write_all(&Response::json(503, body).to_bytes(false));
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }

    // ---- readiness dispatch ------------------------------------------

    fn conn_ready(&mut self, id: usize, ev: Event) {
        let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
            return; // already closed this tick
        };
        if conn.lame_duck.is_some() {
            self.drain_lame_duck(id);
            return;
        }
        if ev.readable {
            self.fill_buffer(id);
        }
        self.service(id);
    }

    /// Reads everything available into the connection's buffer.
    fn fill_buffer(&mut self, id: usize) {
        let fault_tid = if self.config.faults.is_some() {
            match self.conns.get(id).and_then(Option::as_ref) {
                Some(c) => c.trace_id.clone(),
                None => return,
            }
        } else {
            String::new()
        };
        let mut chunk = [0u8; 4096];
        loop {
            // Injected socket faults (inert without a fault plane):
            // EINTR returns and retries on the next readiness event
            // (the poller is level-triggered), ECONNRESET drops the
            // connection, a short read narrows the window to one byte.
            let mut window = chunk.len();
            if let Some(plane) = self.config.faults.as_deref() {
                if plane.fire(FaultPoint::Eintr) {
                    log_fault(self.app, FaultPoint::Eintr, &fault_tid);
                    return;
                }
                if plane.fire(FaultPoint::ConnReadErr) {
                    log_fault(self.app, FaultPoint::ConnReadErr, &fault_tid);
                    self.close_conn(id);
                    return;
                }
                if plane.fire(FaultPoint::ConnReadShort) {
                    log_fault(self.app, FaultPoint::ConnReadShort, &fault_tid);
                    window = 1;
                }
            }
            let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
                return;
            };
            match conn.stream.read(&mut chunk[..window]) {
                Ok(0) => {
                    conn.peer_eof = true;
                    conn.reading = false;
                    if conn.pending.is_empty() && conn.out.len() == conn.out_pos {
                        self.close_conn(id);
                    } else {
                        conn.close_after = true;
                    }
                    return;
                }
                Ok(n) => {
                    if conn.reading {
                        conn.buf.extend_from_slice(&chunk[..n]);
                    }
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(id);
                    return;
                }
            }
        }
    }

    /// Parses and dispatches buffered requests, flushes ready responses,
    /// and reconciles epoll interest — the one entry point after any
    /// state change.
    fn service(&mut self, id: usize) {
        loop {
            let parsed = self.pump_parse(id);
            let flushed = self.flush(id);
            if self.conns.get(id).and_then(Option::as_ref).is_none() {
                return;
            }
            if !parsed && !flushed {
                break;
            }
        }
        self.update_interest(id);
    }

    /// Parses as many complete requests as capacity allows; true if any
    /// request was dispatched.
    fn pump_parse(&mut self, id: usize) -> bool {
        let mut dispatched = false;
        loop {
            let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
                return dispatched;
            };
            if !conn.reading || conn.pending.len() >= MAX_PIPELINE || conn.buf.is_empty() {
                return dispatched;
            }
            let t_start = Instant::now();
            match parse_request(&conn.buf) {
                ParseStatus::Incomplete => return dispatched,
                ParseStatus::Complete(req, consumed) => {
                    let parse_us = u64::try_from(t_start.elapsed().as_micros()).unwrap_or(u64::MAX);
                    conn.buf.drain(..consumed);
                    self.dispatch(id, req, t_start, parse_us);
                    dispatched = true;
                }
                ParseStatus::Bad(err) => {
                    conn.buf.clear();
                    conn.reading = false;
                    conn.close_after = true;
                    let resp = self.app.handle_parse_error(&err);
                    self.push_immediate(id, resp, "parse_error");
                    return true;
                }
            }
        }
    }

    /// Routes one parsed request: `GET`s (and stray methods) answer
    /// inline; `POST`s go to the worker pool, coalescing onto an
    /// identical in-flight evaluation when one exists.
    fn dispatch(&mut self, id: usize, req: Request, t_start: Instant, parse_us: u64) {
        let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
            return;
        };
        let keep_alive = req.keep_alive() && !self.draining;
        if !keep_alive {
            conn.reading = false;
            conn.close_after = true;
        }
        let gen = conn.gen;
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.pending.push_back(Slot {
            seq,
            bytes: None,
            trace: None,
        });
        let rid = self.app.request_id(req.header("x-request-id"));

        if req.method == "POST" {
            let key: CoalesceKey = (req.path.clone(), req.body.clone());
            let (route, _) = Route::resolve(&key.0);
            // A body that has already killed [`QUARANTINE_AFTER`]
            // workers is answered deterministically without ever
            // re-entering the pool.
            if self
                .panics
                .get(&key)
                .is_some_and(|c| *c >= QUARANTINE_AFTER)
            {
                self.app.metrics().record_quarantined();
                self.app.metrics().record_unmeasured(route, 500);
                let body = ErrorBody::new(
                    500,
                    "request quarantined: evaluating this body has repeatedly crashed workers",
                )
                .to_json()
                .encode();
                let mut tr = PendingTrace::new(rid, route.label(), t_start, parse_us);
                let bytes = Response::json(500, body).to_bytes_with_id(keep_alive, Some(&tr.id));
                tr.mark_serialized(500, "quarantine");
                self.fill_slot(id, gen, seq, bytes, Some(tr));
                return;
            }
            // Overload shedding, expensive routes first. Joiners are
            // exempt — they add no queue work.
            if !self.inflight.contains_key(&key) {
                let depth = self.app.metrics().queue_depth();
                let expensive = matches!(route, Route::Search | Route::Sweep);
                let bound = if expensive {
                    (self.config.max_queue / 4).max(1)
                } else {
                    self.config.max_queue.max(1)
                };
                if depth >= bound as u64 {
                    self.app.metrics().record_overload_shed();
                    self.app.metrics().record_unmeasured(route, 503);
                    let message = if expensive {
                        "server overloaded: expensive route shed, retry later"
                    } else {
                        "server overloaded: worker queue full, retry later"
                    };
                    let mut tr = PendingTrace::new(rid, route.label(), t_start, parse_us);
                    let bytes =
                        Response::json(503, ErrorBody::new(503, message).to_json().encode())
                            .with_retry_after(RETRY_AFTER_SECS)
                            .to_bytes_with_id(keep_alive, Some(&tr.id));
                    tr.mark_serialized(503, "shed_overload");
                    self.fill_slot(id, gen, seq, bytes, Some(tr));
                    return;
                }
            }
            let waiter = Waiter {
                conn: id,
                gen,
                seq,
                keep_alive,
                enqueued: Instant::now(),
                id: rid.clone(),
                t_start,
                parse_us,
            };
            match self.inflight.entry(key) {
                Entry::Occupied(mut e) => e.get_mut().push(waiter),
                Entry::Vacant(v) => {
                    let key = v.key().clone();
                    v.insert(vec![waiter]);
                    self.app.metrics().record_enqueued();
                    // A send can only fail after worker join, which is
                    // after the loop stops dispatching.
                    let _ = self.jobs.send(Job {
                        key,
                        req,
                        enqueued: Instant::now(),
                        trace_id: rid,
                    });
                }
            }
        } else {
            let (route, _) = Route::resolve(&req.path);
            let mut tr = PendingTrace::new(rid, route.label(), t_start, parse_us);
            let resp = self.app.handle(&req);
            // Inline GETs never queue: the handler time is the eval span.
            tr.eval_us = tr.elapsed_us().saturating_sub(tr.spans_us());
            let bytes = resp.to_bytes_with_id(keep_alive, Some(&tr.id));
            tr.mark_serialized(resp.status, "complete");
            self.fill_slot(id, gen, seq, bytes, Some(tr));
        }
    }

    /// Answers a request-level failure (parse error, 408) and marks the
    /// connection for close.
    fn push_immediate(&mut self, id: usize, resp: Response, outcome: &'static str) {
        let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
            return;
        };
        let gen = conn.gen;
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.pending.push_back(Slot {
            seq,
            bytes: None,
            trace: None,
        });
        // No parsed request to take an id from; mint one so even error
        // responses are traceable end to end.
        let mut tr = PendingTrace::new(
            self.app.request_id(None),
            Route::Other.label(),
            Instant::now(),
            0,
        );
        let bytes = resp.to_bytes_with_id(false, Some(&tr.id));
        tr.mark_serialized(resp.status, outcome);
        self.fill_slot(id, gen, seq, bytes, Some(tr));
    }

    /// Hands a completed worker evaluation to every waiter that joined
    /// it, then services their connections.
    fn drain_completions(&mut self) {
        loop {
            let next = self
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front();
            let Some(Completion {
                key,
                resp,
                panicked,
                eval_us,
                eval_hits,
                eval_misses,
                outcome,
            }) = next
            else {
                return;
            };
            if panicked {
                self.note_panic(&key);
            }
            let waiters = self.inflight.remove(&key).unwrap_or_default();
            let (route, _) = Route::resolve(&key.0);
            let mut touched = Vec::new();
            for (i, w) in waiters.into_iter().enumerate() {
                if i > 0 {
                    // The first waiter's App::handle call recorded the
                    // request; joiners are recorded here with their own
                    // queueing latency.
                    self.app
                        .metrics()
                        .record_coalesced(route, resp.status, w.enqueued.elapsed());
                }
                let mut tr = PendingTrace::new(w.id, route.label(), w.t_start, w.parse_us);
                tr.eval_us = eval_us;
                tr.eval_hits = eval_hits;
                tr.eval_misses = eval_misses;
                // Queue span by contiguity: everything between the end
                // of parsing and the worker's evaluation is time this
                // waiter spent on the pool (dispatch + completion queues).
                tr.queue_us = tr.elapsed_us().saturating_sub(w.parse_us + eval_us);
                let bytes = resp.to_bytes_with_id(w.keep_alive, Some(&tr.id));
                tr.mark_serialized(resp.status, if i > 0 { "coalesce_join" } else { outcome });
                self.fill_slot(w.conn, w.gen, w.seq, bytes, Some(tr));
                if !touched.contains(&w.conn) {
                    touched.push(w.conn);
                }
            }
            for id in touched {
                self.service(id);
            }
        }
    }

    /// Remembers that evaluating `key` panicked; at [`QUARANTINE_AFTER`]
    /// the body is quarantined (answered without dispatch). The history
    /// is bounded: under a panic storm it sheds non-quarantined entries
    /// first and resets entirely as a last resort, so a poisonous body
    /// at worst has to re-earn its quarantine.
    fn note_panic(&mut self, key: &CoalesceKey) {
        *self.panics.entry(key.clone()).or_insert(0) += 1;
        if self.panics.len() > PANIC_HISTORY_CAP {
            self.panics.retain(|_, c| *c >= QUARANTINE_AFTER);
            if self.panics.len() > PANIC_HISTORY_CAP {
                self.panics.clear();
            }
        }
    }

    /// Fills one response slot (ignoring completions addressed to a
    /// connection generation that no longer exists).
    fn fill_slot(
        &mut self,
        id: usize,
        gen: u64,
        seq: u64,
        bytes: Vec<u8>,
        trace: Option<PendingTrace>,
    ) {
        let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
            return;
        };
        if conn.gen != gen {
            return;
        }
        if let Some(slot) = conn.pending.iter_mut().find(|s| s.seq == seq) {
            slot.bytes = Some(bytes);
            slot.trace = trace;
        }
    }

    /// Moves ready in-order responses into the write buffer and writes
    /// what the socket accepts; true if any slot was retired.
    fn flush(&mut self, id: usize) -> bool {
        let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
            return false;
        };
        let fault_tid = if self.config.faults.is_some() {
            conn.trace_id.clone()
        } else {
            String::new()
        };
        let mut retired = false;
        while conn
            .pending
            .front()
            .is_some_and(|slot| slot.bytes.is_some())
        {
            if let Some(slot) = conn.pending.pop_front() {
                if let Some(bytes) = slot.bytes {
                    conn.out.extend_from_slice(&bytes);
                    conn.served += 1;
                    retired = true;
                }
                if let Some(tr) = slot.trace {
                    // Finalized once the cumulative write watermark
                    // passes every byte staged so far — i.e. when this
                    // response's last byte reaches the kernel.
                    let target = conn.written_cum + (conn.out.len() - conn.out_pos) as u64;
                    conn.traces.push_back((target, tr));
                }
            }
        }
        while conn.out_pos < conn.out.len() {
            // Injected socket faults, mirroring the read side: EINTR
            // leaves the rest for the next writable event, ECONNRESET
            // drops the connection, a short write sends one byte.
            let mut end = conn.out.len();
            if let Some(plane) = self.config.faults.as_deref() {
                if plane.fire(FaultPoint::Eintr) {
                    log_fault(self.app, FaultPoint::Eintr, &fault_tid);
                    break;
                }
                if plane.fire(FaultPoint::ConnWriteErr) {
                    log_fault(self.app, FaultPoint::ConnWriteErr, &fault_tid);
                    self.close_conn(id);
                    return retired;
                }
                if plane.fire(FaultPoint::ConnWriteShort) {
                    log_fault(self.app, FaultPoint::ConnWriteShort, &fault_tid);
                    end = conn.out_pos + 1;
                }
            }
            match conn.stream.write(&conn.out[conn.out_pos..end]) {
                Ok(0) => {
                    self.close_conn(id);
                    return retired;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    conn.written_cum += n as u64;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(id);
                    return retired;
                }
            }
        }
        while conn
            .traces
            .front()
            .is_some_and(|(target, _)| *target <= conn.written_cum)
        {
            if let Some((_, tr)) = conn.traces.pop_front() {
                self.app.observe_trace(tr.finish());
            }
        }
        if conn.out_pos == conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            if conn.close_after && conn.pending.is_empty() {
                if conn.peer_eof {
                    self.close_conn(id);
                } else {
                    self.begin_lame_duck(id);
                }
            }
        }
        retired
    }

    /// Shuts the write side and keeps draining client bytes briefly so
    /// the kernel doesn't RST the in-flight response.
    fn begin_lame_duck(&mut self, id: usize) {
        let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
            return;
        };
        let _ = conn.stream.shutdown(std::net::Shutdown::Write);
        conn.lame_duck = Some(Instant::now() + LAME_DUCK);
        conn.reading = false;
        self.drain_lame_duck(id);
    }

    fn drain_lame_duck(&mut self, id: usize) {
        let mut sink = [0u8; 4096];
        loop {
            let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
                return;
            };
            match conn.stream.read(&mut sink) {
                Ok(0) => {
                    self.close_conn(id);
                    return;
                }
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(id);
                    return;
                }
            }
        }
    }

    fn close_conn(&mut self, id: usize) {
        if let Some(conn) = self.conns.get_mut(id).and_then(Option::take) {
            let _ = self.poller.deregister(conn.fd);
            // Keep traces whose responses were retired but never fully
            // flushed — the record is still worth having; the write
            // span just absorbs the time until the close.
            for (_, tr) in conn.traces {
                self.app.observe_trace(tr.finish());
            }
            self.app.metrics().record_connection_closed(conn.served);
            self.active -= 1;
            self.free.push(id);
        }
    }

    fn update_interest(&mut self, id: usize) {
        let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
            return;
        };
        let want = Interest {
            readable: conn.lame_duck.is_some()
                || (conn.reading && conn.pending.len() < MAX_PIPELINE),
            writable: conn.out_pos < conn.out.len(),
        };
        if want != conn.interest && self.poller.modify(conn.fd, id as u64, want).is_ok() {
            conn.interest = want;
        }
    }

    // ---- timers ------------------------------------------------------

    fn check_timers(&mut self, now: Instant) {
        for id in 0..self.conns.len() {
            let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
                continue;
            };
            if let Some(deadline) = conn.lame_duck {
                if now >= deadline {
                    self.close_conn(id);
                }
                continue;
            }
            let busy = !conn.pending.is_empty() || conn.out_pos < conn.out.len();
            if busy {
                continue;
            }
            if conn.buf.is_empty() {
                if conn.reading && now >= conn.last_activity + self.config.idle_timeout {
                    self.close_conn(id);
                }
            } else if now >= conn.last_activity + self.config.request_timeout {
                // A partial request stopped making progress.
                conn.buf.clear();
                conn.reading = false;
                conn.close_after = true;
                let err = ParseError::new(408, "timed out waiting for a complete request");
                let resp = self.app.handle_parse_error(&err);
                self.push_immediate(id, resp, "timeout");
                self.service(id);
            }
        }
    }

    /// The next poll timeout: the soonest connection deadline, or block
    /// indefinitely when nothing is waiting on time.
    fn next_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        let mut soonest: Option<Instant> = None;
        for conn in self.conns.iter().flatten() {
            let deadline = if let Some(d) = conn.lame_duck {
                d
            } else if !conn.pending.is_empty() || conn.out_pos < conn.out.len() {
                continue; // waiting on work/socket, not on time
            } else if conn.buf.is_empty() {
                if !conn.reading {
                    continue;
                }
                conn.last_activity + self.config.idle_timeout
            } else {
                conn.last_activity + self.config.request_timeout
            };
            soonest = Some(soonest.map_or(deadline, |s| s.min(deadline)));
        }
        soonest.map(|s| {
            s.saturating_duration_since(now)
                .max(Duration::from_millis(10))
        })
    }

    // ---- shutdown ----------------------------------------------------

    /// Starts the drain: no new requests are parsed; idle connections
    /// close now, busy ones close as their last response flushes.
    fn begin_shutdown(&mut self) {
        self.draining = true;
        for id in 0..self.conns.len() {
            let Some(conn) = self.conns.get_mut(id).and_then(Option::as_mut) else {
                continue;
            };
            conn.reading = false;
            conn.close_after = true;
            conn.buf.clear();
            if conn.pending.is_empty() && conn.out_pos >= conn.out.len() {
                self.close_conn(id);
            } else {
                self.update_interest(id);
            }
        }
    }

    /// True while any connection still owes a response.
    fn has_work(&self) -> bool {
        self.active > 0
    }

    fn close_all(&mut self) {
        for id in 0..self.conns.len() {
            self.close_conn(id);
        }
    }
}

/// Everything a worker thread needs, bundled so the supervisor can
/// respawn a dead worker with one `Arc` clone.
struct WorkerShared {
    rx: Mutex<Receiver<Job>>,
    app: Arc<App>,
    completions: Arc<Mutex<VecDeque<Completion>>>,
    waker: Waker,
    faults: Option<Arc<FaultPlane>>,
    default_deadline: Option<Duration>,
}

fn spawn_worker(shared: &Arc<WorkerShared>) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || worker_loop(&shared))
}

/// Replaces dead worker threads. A worker only exits early by
/// panicking — normal exit happens after the job sender drops, which
/// is after the event loop stops — so every replacement here is a
/// respawn of a crashed thread.
fn supervise_workers(workers: &mut [JoinHandle<()>], shared: &Arc<WorkerShared>) {
    for slot in workers.iter_mut() {
        if slot.is_finished() {
            let dead = std::mem::replace(slot, spawn_worker(shared));
            // Reap the corpse; its drop guard already answered the
            // coalition it was evaluating.
            let _ = dead.join();
            shared.app.metrics().record_worker_respawn();
        }
    }
}

/// The effective deadline of a queued job: the body's own
/// `deadline_ms` when it carries a valid one, else the configured
/// default. A malformed body falls back to the default — the handler
/// answers 400 on its own; a cheap field probe must never invent
/// errors the schema would not.
fn job_deadline(req: &Request, default: Option<Duration>) -> Option<Duration> {
    std::str::from_utf8(&req.body)
        .ok()
        .and_then(|text| Json::parse(text).ok())
        .and_then(|doc| doc.get("deadline_ms").and_then(Json::as_f64))
        .filter(|ms| ms.fract() == 0.0 && (0.0..=MAX_DEADLINE_MS as f64).contains(ms))
        .map(|ms| Duration::from_millis(ms as u64))
        .or(default)
}

/// Owes a coalition exactly one [`Completion`]: consumed normally via
/// [`CoalitionGuard::complete`], or — if the worker unwinds first —
/// from `Drop`, which posts a structured 500 during the unwind so no
/// waiter ever hangs on a dead thread.
struct CoalitionGuard<'a> {
    key: Option<CoalesceKey>,
    route: Route,
    shared: &'a WorkerShared,
}

impl CoalitionGuard<'_> {
    fn complete(
        mut self,
        resp: Response,
        panicked: bool,
        eval_us: u64,
        cache_delta: (u64, u64),
        outcome: &'static str,
    ) {
        if let Some(key) = self.key.take() {
            post_completion(
                self.shared,
                Completion {
                    key,
                    resp,
                    panicked,
                    eval_us,
                    eval_hits: cache_delta.0,
                    eval_misses: cache_delta.1,
                    outcome,
                },
            );
        }
    }
}

impl Drop for CoalitionGuard<'_> {
    fn drop(&mut self) {
        let Some(key) = self.key.take() else {
            return;
        };
        self.shared.app.metrics().record_unmeasured(self.route, 500);
        let body = ErrorBody::new(
            500,
            "internal error: the worker evaluating this request died",
        )
        .to_json()
        .encode();
        post_completion(
            self.shared,
            Completion {
                key,
                resp: Response::json(500, body),
                panicked: true,
                eval_us: 0,
                eval_hits: 0,
                eval_misses: 0,
                outcome: "worker_died",
            },
        );
    }
}

/// Emits the structured `fault_injected` warning every injection site
/// shares: which point fired and the trace id it hit.
fn log_fault(app: &App, point: FaultPoint, trace_id: &str) {
    app.logger().warn(
        "fault_injected",
        &[
            ("point", Json::str(point.key())),
            ("trace_id", Json::str(trace_id)),
        ],
    );
}

fn post_completion(shared: &WorkerShared, completion: Completion) {
    shared
        .completions
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push_back(completion);
    shared.waker.wake();
}

fn worker_loop(shared: &WorkerShared) {
    loop {
        // Hold the lock only for the pop, never while evaluating. A
        // poisoned lock (a sibling died mid-recv) is recovered, not
        // propagated — one dead worker must not cascade.
        let next = { shared.rx.lock().unwrap_or_else(|e| e.into_inner()).recv() };
        let Ok(Job {
            key,
            req,
            enqueued,
            trace_id,
        }) = next
        else {
            return; // Sender dropped: shutdown.
        };
        shared.app.metrics().record_dequeued(enqueued.elapsed());
        // From here until completion the coalition is owed an answer:
        // if anything below unwinds (an injected worker panic), the
        // guard posts the 500 during the unwind and the supervisor
        // respawns this thread.
        let guard = CoalitionGuard {
            key: Some(key),
            route: Route::resolve(&req.path).0,
            shared,
        };
        // Deadline-aware shedding: work that expired in the queue is
        // answered 503 without spending evaluation cycles on it.
        if let Some(deadline) = job_deadline(&req, shared.default_deadline) {
            if deadline.is_zero() || enqueued.elapsed() > deadline {
                shared.app.metrics().record_deadline_shed();
                shared.app.metrics().record_unmeasured(guard.route, 503);
                shared.app.logger().info(
                    "deadline_shed",
                    &[
                        ("trace_id", Json::str(trace_id.as_str())),
                        ("route", Json::str(guard.route.label())),
                    ],
                );
                let body = ErrorBody::new(503, "deadline expired before evaluation; request shed")
                    .to_json()
                    .encode();
                let resp = Response::json(503, body).with_retry_after(RETRY_AFTER_SECS);
                guard.complete(resp, false, 0, (0, 0), "shed_deadline");
                continue;
            }
        }
        if let Some(plane) = shared.faults.as_deref() {
            if plane.fire(FaultPoint::WorkerStall) {
                log_fault(&shared.app, FaultPoint::WorkerStall, &trace_id);
                std::thread::sleep(plane.stall());
            }
            if plane.fire(FaultPoint::WorkerPanic) {
                shared.app.metrics().record_worker_panic();
                log_fault(&shared.app, FaultPoint::WorkerPanic, &trace_id);
                // hl-lint: allow(no-panic-in-request-path, deliberate fault injection; the worker supervisor catches the unwind and respawns)
                panic!("injected worker panic (fault plane)");
            }
        }
        // EvalCache deltas across the evaluation: approximate under
        // concurrency (other workers hit the same shared cache), exact
        // when a request runs alone — good enough for attribution.
        let cache = shared.app.context().engine().eval_cache();
        let (h0, m0) = cache.stats();
        let t_eval = Instant::now();
        let (resp, panicked) = shared.app.handle_traced(&req);
        let eval_us = u64::try_from(t_eval.elapsed().as_micros()).unwrap_or(u64::MAX);
        let (h1, m1) = cache.stats();
        if panicked {
            shared.app.metrics().record_worker_panic();
        }
        guard.complete(
            resp,
            panicked,
            eval_us,
            (h1.saturating_sub(h0), m1.saturating_sub(m0)),
            "complete",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = ServerConfig::default();
        assert_eq!(c.addr, DEFAULT_ADDR);
        assert!(c.workers >= 1);
        assert!(c.max_connections >= 16);
        assert!(c.max_queue >= 16);
        assert!(c.snapshot.is_none());
        assert!(c.snapshot_interval.is_none());
        assert!(c.default_deadline.is_none());
        assert!(c.faults.is_none(), "faults must be off by default");
    }

    #[test]
    fn job_deadlines_come_from_the_body_then_the_default() {
        let post = |body: &str| Request {
            method: "POST".into(),
            path: "/v1/evaluate".into(),
            query: String::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        };
        let fallback = Some(Duration::from_millis(250));
        // A valid field wins over the default.
        assert_eq!(
            job_deadline(&post(r#"{"design":"TC","deadline_ms":40}"#), fallback),
            Some(Duration::from_millis(40))
        );
        // Zero is legal and means "already expired".
        assert_eq!(
            job_deadline(&post(r#"{"deadline_ms":0}"#), None),
            Some(Duration::ZERO)
        );
        // No field, malformed JSON, or an out-of-range value falls back.
        for body in [
            r#"{"design":"TC"}"#,
            "not json at all",
            r#"{"deadline_ms":-5}"#,
            r#"{"deadline_ms":1.5}"#,
            r#"{"deadline_ms":9999999999}"#,
        ] {
            assert_eq!(job_deadline(&post(body), fallback), fallback, "{body}");
            assert_eq!(job_deadline(&post(body), None), None, "{body}");
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn bind_spawn_and_stop() {
        let server = Server::bind(
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 1,
                ..ServerConfig::default()
            },
            App::default(),
        )
        .unwrap();
        let handle = server.spawn().unwrap();
        assert_ne!(handle.addr().port(), 0);
        handle.stop().unwrap();
    }
}
