//! Disk persistence for the engine's [`EvalCache`]: the server saves the
//! memo on graceful drain and re-loads it on boot, so a restarted server
//! answers its steady-state traffic from a warm cache.
//!
//! The snapshot is a single JSON document:
//!
//! ```json
//! {
//!   "format": 2,
//!   "fingerprint": "hl-snap-v2:9a…",
//!   "crc32": "9bd366ae",
//!   "entries": [ { "design": …, "shape": …, "a": …, "b": …, "outcome": … } ]
//! }
//! ```
//!
//! Cached results are only valid for the code that produced them — the
//! analytical models are pure functions of the design configuration, so
//! the `fingerprint` hashes every registered design's `Debug`
//! configuration fingerprint plus the model registry. A snapshot whose
//! fingerprint does not match the running binary is refused (the server
//! boots cold instead of serving stale numbers).
//!
//! `crc32` is an IEEE CRC-32 over the raw bytes of the `entries` array
//! (brackets included, exactly as written). The file layout is fixed —
//! `"entries"` is always the last member — so [`load`] can locate the
//! payload bytes without re-encoding, verify the checksum, and reject a
//! torn write or silent media corruption as
//! [`SnapshotError::ChecksumMismatch`] before trusting a single entry.
//! Every load failure is reported, never panicked: the serving layer
//! logs it and boots cold.
//!
//! Entries are sorted by their encoded form before writing, so
//! save → load → save is byte-identical (the in-memory memo is a
//! `HashMap` with nondeterministic iteration order). `f64` payloads
//! round-trip exactly: the [`Json`] encoder prints shortest-round-trip
//! forms, and the one `f64` that is keyed by bit pattern (unstructured
//! degrees) is stored as a hex bit string rather than a number.

use std::io::{self, Write};
use std::path::Path;

use hl_arch::{Comp, EnergyBreakdown};
use hl_sim::engine::{EvalCache, EvalKey, OperandKey};
use hl_sim::{EvalResult, Unsupported};
use hl_sparsity::{Gh, HssPattern};
use hl_tensor::GemmShape;

use crate::json::Json;

/// Snapshot format version; bumped on any encoding change (v2 added the
/// `crc32` payload checksum).
pub const FORMAT: u64 = 2;

/// Why a snapshot could not be loaded (`thiserror` idiom: structured
/// variants, hand-written `Display`, `std::error::Error`).
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The document is not a snapshot (bad JSON, wrong shape, bad entry).
    Malformed(String),
    /// The snapshot was produced by a different design/model registry.
    FingerprintMismatch {
        /// What the running binary expects.
        expected: String,
        /// What the file carries.
        found: String,
    },
    /// The `entries` payload bytes do not match the stored CRC-32 — a
    /// torn write or bit rot.
    ChecksumMismatch {
        /// The checksum the file claims (lowercase hex).
        stored: String,
        /// The checksum of the payload actually on disk.
        computed: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            Self::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            Self::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot fingerprint {found} does not match this binary's \
                 {expected}; refusing stale cache entries"
            ),
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot payload checksum {computed} does not match the \
                 stored crc32 {stored}; the file is truncated or corrupt"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed(msg.into())
}

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320), computed bitwise —
/// snapshots are loaded once per boot, so a lookup table buys nothing.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The tag preceding the payload in the fixed document layout.
const ENTRIES_TAG: &str = ",\"entries\":";

/// The cache-compatibility fingerprint of the running binary: an FNV-1a
/// hash over the snapshot format version, every registered design's
/// `Debug` configuration fingerprint, and the model registry.
pub fn cache_fingerprint() -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff; // field separator so concatenations can't collide
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(FORMAT.to_le_bytes().as_slice());
    for name in hl_bench::registered_names() {
        let design = hl_bench::design_by_name(name).expect("registered");
        eat(format!("{design:?}").as_bytes());
    }
    for name in hl_models::model_names() {
        eat(name.as_bytes());
    }
    format!("hl-snap-v{FORMAT}:{h:016x}")
}

/// Writes the cache to `path` (atomically: temp file + rename), returning
/// the number of entries saved.
///
/// # Errors
/// [`SnapshotError::Io`].
pub fn save(cache: &EvalCache, path: &Path) -> Result<usize, SnapshotError> {
    let mut encoded: Vec<String> = cache
        .entries()
        .iter()
        .map(|(k, v)| entry_json(k, v).encode())
        .collect();
    // The memo is a HashMap; sort so identical caches write identical
    // bytes (asserted by the round-trip test).
    encoded.sort_unstable();
    // The payload: the entries array exactly as written (the CRC input).
    let mut payload = String::from("[");
    for (i, e) in encoded.iter().enumerate() {
        if i > 0 {
            payload.push(',');
        }
        payload.push_str(e);
    }
    payload.push(']');
    let mut doc = String::new();
    doc.push_str("{\"format\":");
    doc.push_str(&FORMAT.to_string());
    doc.push_str(",\"fingerprint\":");
    doc.push_str(&Json::str(cache_fingerprint()).encode());
    doc.push_str(",\"crc32\":");
    doc.push_str(&Json::str(format!("{:08x}", crc32(payload.as_bytes()))).encode());
    doc.push_str(ENTRIES_TAG);
    doc.push_str(&payload);
    doc.push('}');

    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(doc.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(encoded.len())
}

/// Loads a snapshot into the cache via [`EvalCache::preload`] (hit/miss
/// counters untouched; live entries win over preloaded ones), returning
/// the number of entries loaded.
///
/// # Errors
/// [`SnapshotError`] — including [`SnapshotError::FingerprintMismatch`]
/// when the file was produced by a different registry and
/// [`SnapshotError::ChecksumMismatch`] when the payload fails its CRC,
/// in which case the cache is left untouched.
pub fn load(cache: &EvalCache, path: &Path) -> Result<usize, SnapshotError> {
    load_with(cache, path, None)
}

/// [`load`], with an optional fault plane corrupting the file text
/// in memory before it is parsed — the chaos harness' way of proving a
/// truncated or bit-flipped snapshot is rejected and boots cold, without
/// actually tearing files on disk.
///
/// # Errors
/// As [`load`].
pub fn load_with(
    cache: &EvalCache,
    path: &Path,
    faults: Option<&crate::faults::FaultPlane>,
) -> Result<usize, SnapshotError> {
    load_logged(cache, path, faults, None)
}

/// [`load_with`], reporting injected corruption through a structured
/// logger (tagged with the server's boot-scoped trace id) instead of a
/// bare stderr line. The server boot path uses this; `None` is silent.
///
/// # Errors
/// As [`load`].
pub fn load_logged(
    cache: &EvalCache,
    path: &Path,
    faults: Option<&crate::faults::FaultPlane>,
    log: Option<(&crate::log::Logger, &str)>,
) -> Result<usize, SnapshotError> {
    let mut text = std::fs::read_to_string(path)?;
    let corrupted = faults.is_some_and(|plane| plane.corrupt_snapshot(&mut text));
    if let (true, Some((logger, trace_id))) = (corrupted, log) {
        logger.warn(
            "fault_injected",
            &[
                ("point", Json::str("snapshot_corrupt")),
                ("trace_id", Json::str(trace_id)),
                ("path", Json::str(path.display().to_string())),
            ],
        );
    }
    let doc = Json::parse(&text).map_err(|e| malformed(e.to_string()))?;
    let format = doc
        .get("format")
        .and_then(Json::as_f64)
        .ok_or_else(|| malformed("missing \"format\""))?;
    if format != FORMAT as f64 {
        return Err(malformed(format!("unsupported format {format}")));
    }
    let found = doc
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or_else(|| malformed("missing \"fingerprint\""))?;
    let expected = cache_fingerprint();
    if found != expected {
        return Err(SnapshotError::FingerprintMismatch {
            expected,
            found: found.to_string(),
        });
    }
    let stored = doc
        .get("crc32")
        .and_then(Json::as_str)
        .ok_or_else(|| malformed("missing \"crc32\""))?;
    // The fixed layout puts the entries array last, so the raw payload
    // bytes — exactly what `save` checksummed — run from just past the
    // tag to the document's closing brace. No re-encoding involved:
    // re-encoding a corrupted-but-parsable array could normalize the
    // damage away.
    let payload_start = text
        .find(ENTRIES_TAG)
        .ok_or_else(|| malformed("document layout: missing entries tag"))?
        + ENTRIES_TAG.len();
    let payload = text[payload_start..]
        .strip_suffix('}')
        .ok_or_else(|| malformed("document layout: missing closing brace"))?;
    let computed = format!("{:08x}", crc32(payload.as_bytes()));
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch {
            stored: stored.to_string(),
            computed,
        });
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| malformed("missing \"entries\""))?;
    for e in entries {
        let (key, value) = entry_from(e)?;
        cache.preload(key, value);
    }
    Ok(entries.len())
}

fn entry_json(key: &EvalKey, value: &Result<EvalResult, Unsupported>) -> Json {
    let outcome = match value {
        Ok(r) => Json::Obj(vec![("ok".into(), eval_result_members(r))]),
        Err(u) => Json::Obj(vec![(
            "unsupported".into(),
            Json::Obj(vec![
                ("design".into(), Json::str(&u.design)),
                ("reason".into(), Json::str(&u.reason)),
            ]),
        )]),
    };
    Json::Obj(vec![
        ("design".into(), Json::str(&*key.design)),
        ("shape".into(), shape_json(key.shape)),
        ("a".into(), operand_key_json(&key.a)),
        ("b".into(), operand_key_json(&key.b)),
        ("outcome".into(), outcome),
    ])
}

fn entry_from(v: &Json) -> Result<(EvalKey, Result<EvalResult, Unsupported>), SnapshotError> {
    let design = req_str(v, "design")?.to_string();
    let shape = shape_from(
        v.get("shape")
            .ok_or_else(|| malformed("entry missing \"shape\""))?,
    )?;
    let a = operand_key_from(v.get("a").ok_or_else(|| malformed("entry missing \"a\""))?)?;
    let b = operand_key_from(v.get("b").ok_or_else(|| malformed("entry missing \"b\""))?)?;
    let outcome = v
        .get("outcome")
        .ok_or_else(|| malformed("entry missing \"outcome\""))?;
    let value = if let Some(ok) = outcome.get("ok") {
        Ok(eval_result_from(ok)?)
    } else if let Some(u) = outcome.get("unsupported") {
        Err(Unsupported {
            design: req_str(u, "design")?.to_string(),
            reason: req_str(u, "reason")?.to_string(),
        })
    } else {
        return Err(malformed("outcome must hold \"ok\" or \"unsupported\""));
    };
    Ok((
        EvalKey {
            design: design.into(),
            shape,
            a,
            b,
        },
        value,
    ))
}

fn eval_result_members(r: &EvalResult) -> Json {
    Json::Obj(vec![
        ("design".into(), Json::str(&r.design)),
        ("workload".into(), Json::str(&r.workload)),
        ("cycles".into(), Json::Num(r.cycles)),
        (
            "energy_pj".into(),
            Json::Obj(
                r.energy
                    .iter()
                    .map(|(c, pj)| (c.label().to_string(), Json::Num(pj)))
                    .collect(),
            ),
        ),
    ])
}

fn eval_result_from(v: &Json) -> Result<EvalResult, SnapshotError> {
    let cycles = v
        .get("cycles")
        .and_then(Json::as_f64)
        .ok_or_else(|| malformed("result missing \"cycles\""))?;
    let Some(Json::Obj(members)) = v.get("energy_pj") else {
        return Err(malformed("result missing \"energy_pj\""));
    };
    let mut energy = EnergyBreakdown::new();
    for (label, pj) in members {
        let comp = Comp::ALL
            .into_iter()
            .find(|c| c.label() == label)
            .ok_or_else(|| malformed(format!("unknown energy component {label:?}")))?;
        let pj = pj
            .as_f64()
            .ok_or_else(|| malformed(format!("component {label:?} must be a number")))?;
        energy.record(comp, pj);
    }
    Ok(EvalResult {
        design: req_str(v, "design")?.to_string(),
        workload: req_str(v, "workload")?.to_string(),
        cycles,
        energy,
    })
}

fn operand_key_json(key: &OperandKey) -> Json {
    match key {
        OperandKey::Dense => Json::str("dense"),
        // The degree is keyed by its exact f64 bit pattern; a JSON number
        // would survive (shortest-round-trip encoder) but a hex string
        // makes bit-exactness structural rather than incidental.
        OperandKey::Unstructured(bits) => Json::Obj(vec![(
            "unstructured".into(),
            Json::str(format!("{bits:016x}")),
        )]),
        OperandKey::Hss(p) => Json::Obj(vec![(
            "hss".into(),
            Json::Arr(
                p.ranks()
                    .iter()
                    .map(|gh| {
                        Json::Arr(vec![Json::Num(f64::from(gh.g)), Json::Num(f64::from(gh.h))])
                    })
                    .collect(),
            ),
        )]),
    }
}

fn operand_key_from(v: &Json) -> Result<OperandKey, SnapshotError> {
    if v.as_str() == Some("dense") {
        return Ok(OperandKey::Dense);
    }
    if let Some(bits) = v.get("unstructured") {
        let hex = bits
            .as_str()
            .ok_or_else(|| malformed("\"unstructured\" bits must be a hex string"))?;
        let bits = u64::from_str_radix(hex, 16)
            .map_err(|_| malformed(format!("bad unstructured bit pattern {hex:?}")))?;
        return Ok(OperandKey::Unstructured(bits));
    }
    if let Some(ranks) = v.get("hss") {
        let ranks = ranks
            .as_arr()
            .ok_or_else(|| malformed("\"hss\" must be an array"))?;
        let mut ghs = Vec::new();
        for rank in ranks {
            let pair = rank
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| malformed("\"hss\" ranks must be [g, h] pairs"))?;
            let (g, h) = (gh_int(&pair[0])?, gh_int(&pair[1])?);
            ghs.push(Gh::try_new(g, h).map_err(|e| malformed(e.to_string()))?);
        }
        return Ok(OperandKey::Hss(HssPattern::new(ghs)));
    }
    Err(malformed("operand must be \"dense\", unstructured, or hss"))
}

fn gh_int(v: &Json) -> Result<u32, SnapshotError> {
    let n = v
        .as_f64()
        .ok_or_else(|| malformed("G:H components must be numbers"))?;
    if n.fract() != 0.0 || !(1.0..=f64::from(u32::MAX)).contains(&n) {
        return Err(malformed(format!("bad G:H component {n}")));
    }
    Ok(n as u32)
}

fn shape_json(shape: GemmShape) -> Json {
    Json::Obj(vec![
        ("m".into(), Json::Num(shape.m as f64)),
        ("k".into(), Json::Num(shape.k as f64)),
        ("n".into(), Json::Num(shape.n as f64)),
    ])
}

fn shape_from(v: &Json) -> Result<GemmShape, SnapshotError> {
    let mut dims = [0usize; 3];
    for (i, key) in ["m", "k", "n"].into_iter().enumerate() {
        let n = v
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| malformed(format!("shape missing {key:?}")))?;
        if n.fract() != 0.0 || n < 1.0 || n > (1u64 << 53) as f64 {
            return Err(malformed(format!("bad shape dimension {key:?} = {n}")));
        }
        dims[i] = n as usize;
    }
    Ok(GemmShape::new(dims[0], dims[1], dims[2]))
}

fn req_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, SnapshotError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| malformed(format!("missing string field {key:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "hl-snap-test-{}-{seq}-{tag}.json",
            std::process::id()
        ))
    }

    fn sample_cache() -> EvalCache {
        let cache = EvalCache::new();
        let mut energy = EnergyBreakdown::new();
        energy.record(Comp::Mac, 123.456789);
        energy.record(Comp::Dram, 0.1 + 0.2); // non-terminating f64
        cache.preload(
            EvalKey {
                design: "HighLight { tiles: 16 }".into(),
                shape: GemmShape::new(1024, 768, 512),
                a: OperandKey::Hss(HssPattern::two_rank(Gh::new(4, 8), Gh::new(2, 4))),
                b: OperandKey::Dense,
            },
            Ok(EvalResult {
                design: "HighLight".into(),
                workload: "w".into(),
                cycles: 1.0e9 + 0.25,
                energy,
            }),
        );
        cache.preload(
            EvalKey {
                design: "S2TA { .. }".into(),
                shape: GemmShape::new(64, 64, 64),
                a: OperandKey::Unstructured(0.55_f64.to_bits()),
                b: OperandKey::Unstructured(0.25_f64.to_bits()),
            },
            Err(Unsupported {
                design: "S2TA".into(),
                reason: "dense A".into(),
            }),
        );
        cache
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let cache = sample_cache();
        let p1 = temp_path("first");
        let p2 = temp_path("second");
        assert_eq!(save(&cache, &p1).unwrap(), 2);

        let restored = EvalCache::new();
        assert_eq!(load(&restored, &p1).unwrap(), 2);
        // Loading counts neither hits nor misses.
        assert_eq!((restored.hits(), restored.misses()), (0, 0));

        let mut original = cache.entries();
        let mut round_tripped = restored.entries();
        let key = |e: &(EvalKey, Result<EvalResult, Unsupported>)| format!("{:?}", e.0);
        original.sort_by_key(key);
        round_tripped.sort_by_key(key);
        assert_eq!(original, round_tripped);

        assert_eq!(save(&restored, &p2).unwrap(), 2);
        assert_eq!(
            std::fs::read(&p1).unwrap(),
            std::fs::read(&p2).unwrap(),
            "save → load → save must be byte-identical"
        );
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn fingerprint_mismatch_refuses_the_snapshot() {
        let cache = sample_cache();
        let path = temp_path("stale");
        save(&cache, &path).unwrap();
        let doc = std::fs::read_to_string(&path)
            .unwrap()
            .replace(&cache_fingerprint(), "hl-snap-v2:0000000000000000");
        std::fs::write(&path, doc).unwrap();

        let restored = EvalCache::new();
        let err = load(&restored, &path).unwrap_err();
        assert!(matches!(err, SnapshotError::FingerprintMismatch { .. }));
        assert!(restored.entries().is_empty(), "cache left untouched");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_documents_are_reported_not_panicked() {
        let path = temp_path("malformed");
        for doc in [
            "not json",
            "{}",
            r#"{"format":99,"fingerprint":"x","entries":[]}"#,
        ] {
            std::fs::write(&path, doc).unwrap();
            let err = load(&EvalCache::new(), &path).unwrap_err();
            assert!(matches!(err, SnapshotError::Malformed(_)), "{doc}: {err}");
        }
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load(&EvalCache::new(), &path).unwrap_err(),
            SnapshotError::Io(_)
        ));
    }

    #[test]
    fn fingerprint_is_stable_within_a_process() {
        let a = cache_fingerprint();
        let b = cache_fingerprint();
        assert_eq!(a, b);
        assert!(a.starts_with("hl-snap-v2:"), "{a}");
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value, plus the empty string.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn corrupted_payload_bytes_fail_the_checksum() {
        let cache = sample_cache();
        let path = temp_path("bitrot");
        save(&cache, &path).unwrap();
        // Damage one payload byte in a way that still parses as JSON —
        // only the CRC can catch this class of corruption.
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.contains("\"workload\":\"w\""));
        std::fs::write(
            &path,
            doc.replace("\"workload\":\"w\"", "\"workload\":\"X\""),
        )
        .unwrap();

        let restored = EvalCache::new();
        let err = load(&restored, &path).unwrap_err();
        assert!(
            matches!(err, SnapshotError::ChecksumMismatch { .. }),
            "{err}"
        );
        assert!(restored.entries().is_empty(), "cache left untouched");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_files_are_rejected() {
        let cache = sample_cache();
        let path = temp_path("torn");
        save(&cache, &path).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &doc[..doc.len() / 2]).unwrap();
        let err = load(&EvalCache::new(), &path).unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_crc_field_is_malformed() {
        let path = temp_path("nocrc");
        let doc = format!(
            "{{\"format\":2,\"fingerprint\":{},\"entries\":[]}}",
            Json::str(cache_fingerprint()).encode()
        );
        std::fs::write(&path, doc).unwrap();
        let err = load(&EvalCache::new(), &path).unwrap_err();
        assert!(err.to_string().contains("crc32"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_plane_corruption_is_caught_on_load() {
        use crate::faults::FaultPlane;
        let cache = sample_cache();
        let path = temp_path("faulty");
        save(&cache, &path).unwrap();

        for spec in ["seed=11,snapshot=bitflip", "snapshot=truncate"] {
            let plane = FaultPlane::parse(spec).unwrap();
            let restored = EvalCache::new();
            let err = load_with(&restored, &path, Some(&plane)).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Malformed(_)
                        | SnapshotError::ChecksumMismatch { .. }
                        | SnapshotError::FingerprintMismatch { .. }
                ),
                "{spec}: {err}"
            );
            assert!(restored.entries().is_empty(), "{spec}: cache left cold");
        }
        // The same file loads cleanly without the fault plane.
        assert_eq!(load(&EvalCache::new(), &path).unwrap(), 2);
        std::fs::remove_file(&path).ok();
    }
}
