//! Chaos tests: the server under a seeded fault-injection storm.
//!
//! The headline property is **one request, one outcome**: with faults
//! armed on every injection point, every request a client manages to
//! send resolves — to a 200, a structured 500/503, or a transport
//! error — and never hangs. The server survives the storm (health
//! checks still answer, the connection slab drains back to zero) and
//! its metrics reconcile with the fault plane's own injection counts.
//!
//! Deterministic sub-tests then pin each degradation path at
//! probability 1: injected worker panics become structured 500s and
//! respawns, a body that repeatedly kills workers is quarantined,
//! zero-deadline work is shed with `Retry-After`, overload sheds the
//! expensive routes first, and a corrupted snapshot forces a clean cold
//! boot instead of serving corrupted results.

#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hl_bench::SweepContext;
use hl_serve::api::App;
use hl_serve::client::{get_json, post_json, Client};
use hl_serve::faults::{FaultPlane, FaultPoint};
use hl_serve::json::Json;
use hl_serve::server::{Server, ServerConfig, ServerHandle};
use hl_sim::engine::Engine;

fn spawn_with(config: ServerConfig) -> ServerHandle {
    let app = App::with_context(SweepContext::with_engine(Engine::with_threads(2)));
    Server::bind(config, app)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

fn base_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServerConfig::default()
    }
}

fn eval_body(i: usize) -> Json {
    Json::Obj(vec![
        ("design".into(), Json::str("HighLight")),
        ("a_sparsity".into(), Json::Num((i % 13) as f64 / 16.0)),
        ("b_sparsity".into(), Json::Num((i % 7) as f64 / 8.0)),
    ])
}

fn metric(metrics: &Json, section: &str, field: &str) -> f64 {
    metrics
        .get(section)
        .and_then(|s| s.get(field))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("metrics missing {section}.{field}"))
}

/// `get_json` with bounded retries: the fault plane bites assertion
/// connections too, so a probabilistic storm can reset any single
/// request this test makes to verify the server's state.
fn get_json_retry(addr: &str, path: &str) -> (u16, Json) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match get_json(addr, path) {
            Ok(r) => return r,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "request to {path} kept failing: {e}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Polls `/v1/metrics` until `section.field` satisfies `pred` (the
/// event loop settles asynchronously) or a deadline expires.
fn wait_for_metric(addr: &str, section: &str, field: &str, pred: impl Fn(f64) -> bool) -> f64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, metrics) = get_json_retry(addr, "/v1/metrics");
        assert_eq!(status, 200);
        let v = metric(&metrics, section, field);
        if pred(v) || Instant::now() > deadline {
            return v;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn fault_storm_every_request_gets_exactly_one_outcome() {
    // Pinned by default; CI also runs a randomized-seed pass via
    // HL_CHAOS_SEED and archives the seed when the property breaks.
    let seed: u64 = std::env::var("HL_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let plane = Arc::new(
        FaultPlane::parse(&format!(
            "seed={seed},conn_read_err=0.04,conn_read_short=0.2,conn_write_err=0.04,\
             conn_write_short=0.2,eintr=0.1,worker_panic=0.03,worker_stall=0.05,\
             stall_ms=1,spurious_wake=0.05"
        ))
        .expect("storm spec"),
    );
    let server = spawn_with(ServerConfig {
        faults: Some(plane.clone()),
        ..base_config()
    });
    let addr = server.addr().to_string();

    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 40;
    let mut ok = 0u64;
    let mut degraded = 0u64;
    let mut transport = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = addr.as_str();
                scope.spawn(move || {
                    let mut client = Client::new(addr);
                    let (mut ok, mut degraded, mut transport) = (0u64, 0u64, 0u64);
                    for i in 0..PER_CLIENT {
                        // Each iteration resolves (the client carries a
                        // 10 s I/O timeout): a response or an error,
                        // never a hang.
                        match client.post_json("/v1/evaluate", &eval_body(c * PER_CLIENT + i)) {
                            Ok((200, _)) => ok += 1,
                            Ok((status, body)) => {
                                assert!(
                                    matches!(status, 500 | 503),
                                    "unexpected degraded status {status}: {}",
                                    body.encode()
                                );
                                assert!(
                                    body.get("error").is_some(),
                                    "degraded responses are structured"
                                );
                                degraded += 1;
                            }
                            Err(_) => transport += 1,
                        }
                    }
                    (ok, degraded, transport)
                })
            })
            .collect();
        for h in handles {
            let (o, d, t) = h.join().expect("storm client must not hang or panic");
            ok += o;
            degraded += d;
            transport += t;
        }
    });
    assert_eq!(
        ok + degraded + transport,
        (CLIENTS * PER_CLIENT) as u64,
        "every request resolves to exactly one outcome"
    );
    assert!(
        ok > 0,
        "a moderate storm must not take the server fully down"
    );
    assert!(
        plane.injected_total() > 0,
        "the storm must actually have injected faults"
    );

    // The server survives: health answers, the slab drains, and the
    // panic metric reconciles with the plane's own injection counter.
    let (status, health) = get_json_retry(&addr, "/v1/healthz");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    let active = wait_for_metric(&addr, "connections", "active", |v| v <= 1.0);
    assert!(
        active <= 1.0,
        "slab must drain after the storm, active={active}"
    );

    let injected_panics = plane.injected(FaultPoint::WorkerPanic) as f64;
    let counted = wait_for_metric(&addr, "workers", "panics", |v| v >= injected_panics);
    assert_eq!(
        counted, injected_panics,
        "metrics must account for every injected worker panic"
    );
    server.stop().expect("graceful stop after storm");
}

#[test]
fn injected_worker_panics_become_structured_500s_and_respawns() {
    let plane = Arc::new(FaultPlane::parse("seed=3,worker_panic=1.0").expect("spec"));
    let server = spawn_with(ServerConfig {
        faults: Some(plane),
        ..base_config()
    });
    let addr = server.addr().to_string();

    let (status, body) = post_json(&addr, "/v1/evaluate", &eval_body(0)).expect("response");
    assert_eq!(status, 500, "a dead worker still answers its coalition");
    let message = body
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .expect("structured error body");
    assert!(message.contains("worker"), "got {message:?}");

    assert!(wait_for_metric(&addr, "workers", "panics", |v| v >= 1.0) >= 1.0);
    assert!(
        wait_for_metric(&addr, "workers", "respawns", |v| v >= 1.0) >= 1.0,
        "the supervisor must replace the dead worker"
    );
    // The replacement worker is alive: inline GETs never touched the
    // pool, but the next distinct POST reaches a worker again.
    let (status, _) = post_json(&addr, "/v1/evaluate", &eval_body(1)).expect("response");
    assert_eq!(status, 500, "respawned worker picks up new jobs");
    server.stop().expect("graceful stop");
}

#[test]
fn a_body_that_repeatedly_kills_workers_is_quarantined() {
    let plane = Arc::new(FaultPlane::parse("seed=5,worker_panic=1.0").expect("spec"));
    let server = spawn_with(ServerConfig {
        faults: Some(plane),
        ..base_config()
    });
    let addr = server.addr().to_string();
    let body = eval_body(42);

    let mut messages = Vec::new();
    for _ in 0..3 {
        let (status, resp) = post_json(&addr, "/v1/evaluate", &body).expect("response");
        assert_eq!(status, 500);
        messages.push(
            resp.get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .expect("structured error")
                .to_string(),
        );
        // Let the completion drain so the panic is recorded before the
        // next attempt re-dispatches.
        wait_for_metric(&addr, "connections", "active", |v| v <= 1.0);
    }
    assert!(
        messages[2].contains("quarantined"),
        "third attempt must be quarantined, got {:?}",
        messages[2]
    );
    assert!(
        wait_for_metric(&addr, "workers", "quarantined", |v| v >= 1.0) >= 1.0,
        "quarantine must be counted"
    );
    server.stop().expect("graceful stop");
}

#[test]
fn zero_deadline_requests_are_shed_with_retry_after() {
    let server = spawn_with(base_config());
    let addr = server.addr().to_string();

    let payload = r#"{"design":"HighLight","a_sparsity":0.5,"b_sparsity":0.25,"deadline_ms":0}"#;
    let raw = format!(
        "POST /v1/evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("write");
    let mut text = String::new();
    let _ = stream.read_to_string(&mut text);

    assert!(text.starts_with("HTTP/1.1 503"), "got {text:?}");
    assert!(
        text.contains("Retry-After:"),
        "shed responses carry Retry-After, got {text:?}"
    );
    assert!(text.contains("deadline"), "got {text:?}");
    assert!(
        wait_for_metric(&addr, "shed", "deadline", |v| v >= 1.0) >= 1.0,
        "deadline sheds must be counted"
    );

    // Without a deadline the identical evaluation still succeeds.
    let (status, _) = post_json(&addr, "/v1/evaluate", &eval_body(3)).expect("response");
    assert_eq!(status, 200);
    server.stop().expect("graceful stop");
}

#[test]
fn overload_sheds_expensive_routes_before_cheap_ones() {
    // One worker, stalled 200 ms per job, queue bound 4 (so the
    // expensive bound is 1): three pipelined evaluations back the queue
    // up, then a search request must be shed while the cheap
    // evaluations are all still admitted and answered.
    let plane = Arc::new(FaultPlane::parse("seed=9,worker_stall=1.0,stall_ms=200").expect("spec"));
    let server = spawn_with(ServerConfig {
        workers: 1,
        max_queue: 4,
        faults: Some(plane),
        ..base_config()
    });
    let addr = server.addr().to_string();

    let mut pipelined = String::new();
    for i in 0..3 {
        let body = eval_body(i).encode();
        pipelined.push_str(&format!(
            "POST /v1/evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
    }
    // Shed happens at dispatch, before validation — `{}` never reaches
    // a worker, so an invalid body still demonstrates the shed path.
    pipelined.push_str(
        "POST /v1/search HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}",
    );

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(pipelined.as_bytes()).expect("write");
    let mut text = String::new();
    let _ = stream.read_to_string(&mut text);

    assert_eq!(
        text.matches("HTTP/1.1 200").count(),
        3,
        "cheap evaluations stay admitted, got {text:?}"
    );
    assert_eq!(
        text.matches("HTTP/1.1 503").count(),
        1,
        "the expensive route is shed, got {text:?}"
    );
    assert!(text.contains("Retry-After:"), "got {text:?}");
    assert!(text.contains("expensive"), "got {text:?}");
    assert!(
        wait_for_metric(&addr, "shed", "overload", |v| v >= 1.0) >= 1.0,
        "overload sheds must be counted"
    );
    server.stop().expect("graceful stop");
}

#[test]
fn a_corrupted_snapshot_forces_a_cold_boot() {
    let path =
        std::env::temp_dir().join(format!("hl-serve-chaos-snap-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let body = eval_body(11);

    let spawn_snap = |faults: Option<Arc<FaultPlane>>| {
        spawn_with(ServerConfig {
            snapshot: Some(path.clone()),
            faults,
            ..base_config()
        })
    };

    // Populate and persist a snapshot.
    let server = spawn_snap(None);
    let addr = server.addr().to_string();
    let (status, _) = post_json(&addr, "/v1/evaluate", &body).expect("response");
    assert_eq!(status, 200);
    server.stop().expect("drain saves the snapshot");
    assert!(path.exists());

    // A bit flip on load: the checksum rejects it and the server boots
    // cold instead of serving corrupted results.
    let plane = Arc::new(FaultPlane::parse("seed=11,snapshot=bitflip").expect("spec"));
    let server = spawn_snap(Some(plane));
    let addr = server.addr().to_string();
    let cache = server.app().context().engine().eval_cache();
    assert_eq!(cache.hits() + cache.misses(), 0, "cold boot starts empty");
    let (status, _) = post_json(&addr, "/v1/evaluate", &body).expect("response");
    assert_eq!(status, 200);
    assert!(cache.misses() > 0, "cold boot re-evaluates from scratch");
    server.stop().expect("graceful stop");

    // The corruption was injected in memory only: a clean boot still
    // warm-loads the file.
    let server = spawn_snap(None);
    let addr = server.addr().to_string();
    let (status, _) = post_json(&addr, "/v1/evaluate", &body).expect("response");
    assert_eq!(status, 200);
    let cache = server.app().context().engine().eval_cache();
    assert_eq!(cache.misses(), 0, "intact file warm-loads");
    server.stop().expect("graceful stop");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn every_injected_fault_leaves_a_structured_log_event() {
    let plane = Arc::new(
        FaultPlane::parse(
            "seed=13,conn_read_err=0.05,conn_read_short=0.2,conn_write_err=0.05,\
             conn_write_short=0.2,eintr=0.1,worker_panic=0.05,worker_stall=0.08,\
             stall_ms=1,spurious_wake=0.1",
        )
        .expect("storm spec"),
    );
    let app = App::with_context(SweepContext::with_engine(Engine::with_threads(2)));
    let buffer = hl_serve::log::SharedBuffer::new();
    app.logger().set_sink(buffer.make_sink());
    let server = Server::bind(
        ServerConfig {
            faults: Some(plane.clone()),
            ..base_config()
        },
        app,
    )
    .expect("bind ephemeral port")
    .spawn()
    .expect("spawn server");
    let addr = server.addr().to_string();

    std::thread::scope(|scope| {
        for c in 0..3usize {
            let addr = addr.as_str();
            scope.spawn(move || {
                let mut client = Client::new(addr);
                for i in 0..40 {
                    let _ = client.post_json("/v1/evaluate", &eval_body(c * 40 + i));
                }
            });
        }
    });
    // Stop first: after the drain no more faults fire, so the plane's
    // injection counters and the log buffer are both final.
    server.stop().expect("graceful stop after storm");

    // The sink sees only the logger (panic-hook noise goes to the real
    // stderr), so every line must parse as one structured event.
    let contents = buffer.contents();
    let events: Vec<Json> = contents
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("unstructured log line {l:?}: {e:?}")))
        .collect();
    for event in &events {
        for key in ["ts", "level", "event"] {
            assert!(
                event.get(key).is_some(),
                "log event missing {key}: {}",
                event.encode()
            );
        }
    }

    assert!(plane.injected_total() > 0, "the storm must inject faults");
    for point in FaultPoint::ALL {
        if plane.injected(point) == 0 {
            continue;
        }
        let hit = events
            .iter()
            .find(|e| {
                e.get("event").and_then(Json::as_str) == Some("fault_injected")
                    && e.get("point").and_then(Json::as_str) == Some(point.key())
            })
            .unwrap_or_else(|| {
                panic!(
                    "{} injections of {} left no fault_injected log event",
                    plane.injected(point),
                    point.key()
                )
            });
        let trace_id = hit.get("trace_id").and_then(Json::as_str).unwrap_or("");
        assert!(
            !trace_id.is_empty(),
            "fault_injected for {} lacks a trace id",
            point.key()
        );
    }
}
