//! Property tests of the typed wire schema: for every request type,
//! `to_json` → `from_json` is the identity, so the canonical encoding
//! and the parser can never drift apart. Same for the pruning-spec
//! grammar and the structured error body.

use hl_models::accuracy::PruningConfig;
use hl_serve::json::Json;
use hl_serve::schema::{
    pruning_spec, pruning_spec_json, ErrorBody, EvaluateModelRequest, EvaluateRequest,
    SearchRequest, SweepRequest, MAX_BUDGET, MAX_DEGREE,
};
use hl_sparsity::{Gh, HssPattern};
use hl_tensor::GemmShape;
use proptest::prelude::*;

fn gen_name(rng: &mut proptest::TestRng) -> String {
    const ALPHABET: [char; 12] = ['a', 'Z', '0', '-', '_', '.', ' ', '"', '\\', 'é', '☃', '😀'];
    let len = rng.sample_range(1usize..=10);
    (0..len)
        .map(|_| ALPHABET[rng.sample_range(0usize..ALPHABET.len())])
        .collect()
}

/// Dimensions small enough that any m×k×n stays under the MAC cap.
fn gen_shape(rng: &mut proptest::TestRng) -> GemmShape {
    GemmShape::new(
        rng.sample_range(1usize..=4096),
        rng.sample_range(1usize..=4096),
        rng.sample_range(1usize..=4096),
    )
}

fn gen_degree(rng: &mut proptest::TestRng) -> f64 {
    match rng.sample_range(0u32..4) {
        0 => 0.0,
        1 => MAX_DEGREE,
        _ => rng.sample_range(0.0..=MAX_DEGREE),
    }
}

/// An HSS pattern within the wire grammar: 1–3 ranks, `1 ≤ g ≤ h`, and
/// a group size (product of H values) within the schema cap.
fn gen_hss(rng: &mut proptest::TestRng) -> HssPattern {
    let ranks = rng.sample_range(1usize..=3);
    HssPattern::new(
        (0..ranks)
            .map(|_| {
                let h = [2, 4][rng.sample_range(0usize..2)];
                let g = rng.sample_range(1u32..=h);
                Gh::new(g, h)
            })
            .collect(),
    )
}

fn gen_deadline(rng: &mut proptest::TestRng) -> Option<u64> {
    match rng.sample_range(0u32..3) {
        0 => None,
        1 => Some(0),
        _ => Some(rng.sample_range(1u64..=3_600_000)),
    }
}

fn gen_pruning(rng: &mut proptest::TestRng) -> PruningConfig {
    match rng.sample_range(0u32..3) {
        0 => PruningConfig::Dense,
        1 => PruningConfig::Unstructured {
            sparsity: rng.sample_range(0.0..=1.0),
        },
        _ => PruningConfig::Hss(gen_hss(rng)),
    }
}

macro_rules! strategy {
    ($name:ident, $ty:ty, $gen:expr) => {
        struct $name;
        impl Strategy for $name {
            type Value = $ty;
            fn sample(&self, rng: &mut proptest::TestRng) -> $ty {
                let gen: fn(&mut proptest::TestRng) -> $ty = $gen;
                gen(rng)
            }
        }
    };
}

strategy!(EvaluateStrategy, EvaluateRequest, |rng| EvaluateRequest {
    design: gen_name(rng),
    shape: gen_shape(rng),
    a_sparsity: gen_degree(rng),
    b_sparsity: gen_degree(rng),
    deadline_ms: gen_deadline(rng),
});

strategy!(ModelStrategy, EvaluateModelRequest, |rng| {
    EvaluateModelRequest {
        design: gen_name(rng),
        model: gen_name(rng),
        pruning: gen_pruning(rng),
        deadline_ms: gen_deadline(rng),
    }
});

strategy!(SearchStrategy, SearchRequest, |rng| SearchRequest {
    design: gen_name(rng),
    model: gen_name(rng),
    budget: rng.sample_range(0.0..=MAX_BUDGET),
    deadline_ms: gen_deadline(rng),
});

strategy!(SweepStrategy, SweepRequest, |rng| {
    let opt_vec = |rng: &mut proptest::TestRng, f: fn(&mut proptest::TestRng) -> f64| {
        if rng.sample_range(0u32..2) == 0 {
            None
        } else {
            let n = rng.sample_range(1usize..=4);
            Some((0..n).map(|_| f(rng)).collect::<Vec<_>>())
        }
    };
    SweepRequest {
        designs: if rng.sample_range(0u32..2) == 0 {
            None
        } else {
            let n = rng.sample_range(1usize..=3);
            Some((0..n).map(|_| gen_name(rng)).collect())
        },
        a_degrees: opt_vec(rng, gen_degree),
        b_degrees: opt_vec(rng, gen_degree),
        shape: gen_shape(rng),
        limit: if rng.sample_range(0u32..2) == 0 {
            None
        } else {
            Some(rng.sample_range(1usize..=256))
        },
        deadline_ms: gen_deadline(rng),
    }
});

strategy!(PruningStrategy, PruningConfig, gen_pruning);

strategy!(ErrorStrategy, ErrorBody, |rng| {
    const STATUSES: [u16; 12] = [400, 404, 405, 408, 411, 413, 422, 431, 500, 503, 505, 599];
    ErrorBody::new(
        STATUSES[rng.sample_range(0usize..STATUSES.len())],
        gen_name(rng),
    )
});

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `/v1/evaluate`: encode → parse is the identity, through the
    /// actual wire bytes.
    #[test]
    fn evaluate_round_trips(req in EvaluateStrategy) {
        let encoded = req.to_json().encode();
        prop_assert_eq!(EvaluateRequest::from_body(encoded.as_bytes()), Ok(req));
    }

    /// `/v1/evaluate_model`: encode → parse is the identity.
    #[test]
    fn evaluate_model_round_trips(req in ModelStrategy) {
        let encoded = req.to_json().encode();
        prop_assert_eq!(EvaluateModelRequest::from_body(encoded.as_bytes()), Ok(req));
    }

    /// `/v1/search`: encode → parse is the identity.
    #[test]
    fn search_round_trips(req in SearchStrategy) {
        let encoded = req.to_json().encode();
        prop_assert_eq!(SearchRequest::from_body(encoded.as_bytes()), Ok(req));
    }

    /// `/v1/sweep`: encode → parse is the identity, and absent optional
    /// fields stay absent through the round trip.
    #[test]
    fn sweep_round_trips(req in SweepStrategy) {
        let encoded = req.to_json().encode();
        prop_assert_eq!(SweepRequest::from_body(encoded.as_bytes()), Ok(req));
    }

    /// The pruning-spec grammar and its canonical encoding are inverses.
    #[test]
    fn pruning_specs_round_trip(config in PruningStrategy) {
        let encoded = pruning_spec_json(&config);
        prop_assert_eq!(pruning_spec(Some(&encoded)), Ok(config));
    }

    /// Structured error bodies round-trip, and the code stays stable.
    #[test]
    fn error_bodies_round_trip(body in ErrorStrategy) {
        let encoded = body.to_json();
        let parsed = ErrorBody::from_json(&encoded).unwrap();
        prop_assert_eq!(parsed, body);
    }
}

/// Unknown fields are rejected for every request type — the wire schema
/// is closed, so typos fail loudly instead of silently evaluating
/// something else.
#[test]
fn unknown_fields_are_rejected_everywhere() {
    let with_extra = |base: &str| {
        let mut v = Json::parse(base).unwrap();
        if let Json::Obj(members) = &mut v {
            members.push(("extra_field".into(), Json::Num(1.0)));
        }
        v.encode()
    };
    let evaluate = with_extra(r#"{"design":"TC"}"#);
    assert!(EvaluateRequest::from_body(evaluate.as_bytes()).is_err());
    let model = with_extra(r#"{"design":"TC","model":"ResNet-50"}"#);
    assert!(EvaluateModelRequest::from_body(model.as_bytes()).is_err());
    let search = with_extra(r#"{"design":"TC","model":"ResNet-50","budget":0.5}"#);
    assert!(SearchRequest::from_body(search.as_bytes()).is_err());
    let sweep = with_extra(r#"{"m":64,"k":64,"n":64}"#);
    assert!(SweepRequest::from_body(sweep.as_bytes()).is_err());
}
