//! End-to-end tests: a real server on an ephemeral port, exercised over
//! real sockets.
//!
//! The headline assertion is the serving-layer contract: `/evaluate`
//! responses are **byte-identical** to the offline
//! [`hl_sim::evaluate_best`] results rendered through the same JSON view,
//! for every registered design — the HTTP layer adds transport, never
//! drift. The rest covers the 4xx mapping, the shared-cache hit rate
//! rising in `/metrics`, sweep truncation, concurrency, and graceful
//! shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use hl_bench::{registered_names, SweepContext};
use hl_serve::api::{
    build_workload, eval_result_json, network_eval_json, pruning_from, search_outcome_json, App,
};
use hl_serve::client::{get_json, post_json};
use hl_serve::json::Json;
use hl_serve::server::{Server, ServerConfig, ServerHandle};
use hl_sim::engine::Engine;
use hl_tensor::GemmShape;

fn spawn_server() -> ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        backlog: 8,
        io_timeout: Duration::from_secs(2),
    };
    let app = App::with_context(SweepContext::with_engine(Engine::with_threads(2)));
    Server::bind(config, app)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

/// Sends raw bytes and returns the raw response text (for malformed
/// requests the structured client cannot express).
fn raw_exchange(addr: &str, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(bytes).expect("write");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

#[test]
fn healthz_designs_and_metrics_respond() {
    let server = spawn_server();
    let addr = server.addr().to_string();

    let (status, health) = get_json(&addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("threads").and_then(Json::as_f64), Some(2.0));

    let (status, designs) = get_json(&addr, "/designs").unwrap();
    assert_eq!(status, 200);
    let list = designs.get("designs").and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = list
        .iter()
        .filter_map(|d| d.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, registered_names());
    for d in list {
        assert!(d.get("area_mm2").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(d.get("supported_patterns").and_then(Json::as_str).is_some());
    }

    let (status, metrics) = get_json(&addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    for key in [
        "uptime_s",
        "requests",
        "responses",
        "eval_cache",
        "latency_ms",
    ] {
        assert!(metrics.get(key).is_some(), "missing {key}");
    }

    server.stop().unwrap();
}

#[test]
fn evaluate_is_byte_identical_to_offline_for_every_design() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let shape = GemmShape::new(1024, 1024, 1024);
    for name in registered_names() {
        for (sa, sb) in [(0.0, 0.0), (0.5, 0.25), (0.75, 0.5)] {
            let body = Json::Obj(vec![
                ("design".into(), Json::str(name)),
                ("a_sparsity".into(), Json::Num(sa)),
                ("b_sparsity".into(), Json::Num(sb)),
            ]);
            let (status, v) = post_json(&addr, "/evaluate", &body).unwrap();
            assert_eq!(status, 200, "{name} at ({sa},{sb})");

            let design = hl_bench::design_by_name(name).unwrap();
            let workload = build_workload(name, shape, sa, sb).unwrap();
            match hl_sim::evaluate_best(design.as_ref(), &workload) {
                Ok(offline) => {
                    assert_eq!(
                        v.get("supported").and_then(Json::as_bool),
                        Some(true),
                        "{name} at ({sa},{sb})"
                    );
                    assert_eq!(
                        v.get("result").unwrap().encode(),
                        eval_result_json(&offline).encode(),
                        "{name} at ({sa},{sb}): served result must be \
                         byte-identical to the offline evaluation"
                    );
                }
                Err(unsupported) => {
                    assert_eq!(v.get("supported").and_then(Json::as_bool), Some(false));
                    assert_eq!(
                        v.get("reason").and_then(Json::as_str),
                        Some(unsupported.to_string().as_str())
                    );
                }
            }
        }
    }
    server.stop().unwrap();
}

#[test]
fn evaluate_model_is_byte_identical_to_offline_network_eval() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let pruning = Json::parse(r#"{"hss":[[2,4]]}"#).unwrap();
    for design_name in registered_names() {
        for model_name in hl_models::model_names() {
            let body = Json::Obj(vec![
                ("design".into(), Json::str(design_name)),
                ("model".into(), Json::str(model_name)),
                ("pruning".into(), pruning.clone()),
            ]);
            let (status, v) = post_json(&addr, "/evaluate_model", &body).unwrap();
            assert_eq!(status, 200, "{design_name} on {model_name}");

            // Offline: the same lowering + serial network evaluation.
            let design = hl_bench::design_by_name(design_name).unwrap();
            let model = hl_models::model_by_name(model_name).unwrap();
            let config = pruning_from(Some(&pruning)).unwrap();
            let network = SweepContext::lower_model(design.as_ref(), &model, &config);
            let offline = hl_sim::network::evaluate_network(design.as_ref(), &network);
            assert_eq!(
                v.get("network").unwrap().encode(),
                network_eval_json(&offline).encode(),
                "{design_name} on {model_name}: served network eval must be \
                 byte-identical to the offline evaluation"
            );
            assert_eq!(
                v.get("supported").and_then(Json::as_bool),
                Some(offline.supported())
            );
        }
    }
    server.stop().unwrap();
}

#[test]
fn search_is_byte_identical_to_offline_codesign_and_rejects_degenerates() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let body = Json::Obj(vec![
        ("design".into(), Json::str("HighLight")),
        ("model".into(), Json::str("DeiT-small")),
        ("budget".into(), Json::Num(0.5)),
    ]);
    let (status, v) = post_json(&addr, "/search", &body).unwrap();
    assert_eq!(status, 200);

    // Byte-identity: the served search must equal the offline co-design
    // search (serial, uncached-pool) through the same canonical view —
    // the same contract /evaluate and /evaluate_model honour.
    let design = hl_bench::design_by_name("HighLight").unwrap();
    let model = hl_models::model_by_name("DeiT-small").unwrap();
    let offline =
        SweepContext::with_engine(Engine::serial()).codesign(design.as_ref(), &model, 0.5);
    assert_eq!(v.encode(), search_outcome_json(&offline).encode());

    // The served front is non-dominated.
    let front = v.get("front").and_then(Json::as_arr).unwrap();
    assert!(!front.is_empty());
    let pt = |p: &Json| {
        (
            p.get("loss").and_then(Json::as_f64).unwrap(),
            p.get("edp").and_then(Json::as_f64).unwrap(),
        )
    };
    for a in front {
        for b in front {
            assert!(
                !hl_sim::pareto::dominates(pt(b), pt(a)),
                "served front must be non-dominated"
            );
        }
    }

    // A replay hits the shared caches: the second query is answered from
    // the memo and stays byte-identical.
    let (_, v2) = post_json(&addr, "/search", &body).unwrap();
    assert_eq!(v2.encode(), v.encode());

    // Degenerate queries are 4xx, not worker panics.
    for bad in [
        Json::Obj(vec![
            ("design".into(), Json::str("HighLight")),
            ("model".into(), Json::str("DeiT-small")),
            ("budget".into(), Json::Num(-0.5)),
        ]),
        Json::Obj(vec![
            ("design".into(), Json::str("TPU")),
            ("model".into(), Json::str("DeiT-small")),
            ("budget".into(), Json::Num(0.5)),
        ]),
    ] {
        let (status, v) = post_json(&addr, "/search", &bad).unwrap();
        assert_eq!(status, 400);
        assert!(v.get("error").is_some());
    }
    // …and a zero-density pruning config over HTTP answers per-layer
    // Unsupported instead of killing the worker.
    let degenerate = Json::Obj(vec![
        ("design".into(), Json::str("DSTC")),
        ("model".into(), Json::str("Transformer-Big")),
        (
            "pruning".into(),
            Json::parse(r#"{"unstructured":1.0}"#).unwrap(),
        ),
    ]);
    let (status, v) = post_json(&addr, "/evaluate_model", &degenerate).unwrap();
    assert_eq!(status, 200);
    assert_eq!(v.get("supported").and_then(Json::as_bool), Some(false));
    let (status, _) = get_json(&addr, "/healthz").unwrap();
    assert_eq!(status, 200, "server must survive degenerate configs");

    server.stop().unwrap();
}

#[test]
fn models_listing_and_model_eval_share_the_cache() {
    let server = spawn_server();
    let addr = server.addr().to_string();

    let (status, v) = get_json(&addr, "/models").unwrap();
    assert_eq!(status, 200);
    let names: Vec<&str> = v
        .get("models")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|m| m.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, hl_models::model_names());

    // Repeated model evaluations replay per-layer cells from the memo.
    let body = Json::parse(
        r#"{"design":"HighLight","model":"Transformer-Big","pruning":{"unstructured":0.5}}"#,
    )
    .unwrap();
    let (status, first) = post_json(&addr, "/evaluate_model", &body).unwrap();
    assert_eq!(status, 200);
    let misses = |addr: &str| -> f64 {
        let (_, m) = get_json(addr, "/metrics").unwrap();
        m.get("eval_cache")
            .and_then(|c| c.get("misses"))
            .and_then(Json::as_f64)
            .unwrap()
    };
    let misses0 = misses(&addr);
    let (_, again) = post_json(&addr, "/evaluate_model", &body).unwrap();
    assert_eq!(again.encode(), first.encode(), "replay is identical");
    assert_eq!(misses(&addr), misses0, "no new evaluations on replay");

    server.stop().unwrap();
}

#[test]
fn repeated_evaluates_raise_the_cache_hit_rate() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let body = Json::Obj(vec![
        ("design".into(), Json::str("HighLight")),
        ("a_sparsity".into(), Json::Num(0.5)),
        ("b_sparsity".into(), Json::Num(0.5)),
    ]);

    let cache_stats = |addr: &str| -> (f64, f64, f64) {
        let (_, m) = get_json(addr, "/metrics").unwrap();
        let c = m.get("eval_cache").unwrap();
        (
            c.get("hits").and_then(Json::as_f64).unwrap(),
            c.get("misses").and_then(Json::as_f64).unwrap(),
            c.get("hit_rate").and_then(Json::as_f64).unwrap(),
        )
    };

    let (_, first) = post_json(&addr, "/evaluate", &body).unwrap();
    let (hits0, misses0, rate0) = cache_stats(&addr);
    for _ in 0..5 {
        let (status, again) = post_json(&addr, "/evaluate", &body).unwrap();
        assert_eq!(status, 200);
        assert_eq!(again.encode(), first.encode(), "replays are identical");
    }
    let (hits1, misses1, rate1) = cache_stats(&addr);
    assert_eq!(
        misses1, misses0,
        "no new evaluations for identical requests"
    );
    assert!(hits1 >= hits0 + 5.0, "hits {hits0} -> {hits1}");
    assert!(rate1 > rate0, "hit rate must rise: {rate0} -> {rate1}");

    server.stop().unwrap();
}

#[test]
fn sweep_end_to_end_with_limit() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let body = Json::parse(
        r#"{"designs":["TC","STC","HighLight"],"a_degrees":[0,0.5,0.75],
            "b_degrees":[0,0.5],"m":256,"k":256,"n":256,"limit":4}"#,
    )
    .unwrap();
    let (status, v) = post_json(&addr, "/sweep", &body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(v.get("rows_total").and_then(Json::as_f64), Some(6.0));
    assert_eq!(v.get("rows_returned").and_then(Json::as_f64), Some(4.0));
    assert_eq!(v.get("truncated").and_then(Json::as_bool), Some(true));
    let rows = v.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 4);
    // Spot-check one cell against the offline evaluation.
    let cell = rows[1].get("results").and_then(Json::as_arr).unwrap()[2].clone();
    let offline = hl_sim::evaluate_best(
        hl_bench::design_by_name("HighLight").unwrap().as_ref(),
        &build_workload("HighLight", GemmShape::new(256, 256, 256), 0.0, 0.5).unwrap(),
    )
    .unwrap();
    assert_eq!(cell.encode(), eval_result_json(&offline).encode());
    server.stop().unwrap();
}

#[test]
fn malformed_requests_map_to_4xx() {
    let server = spawn_server();
    let addr = server.addr().to_string();

    // Raw protocol-level failures.
    for (raw, expect) in [
        (&b"GARBAGE\r\n\r\n"[..], "HTTP/1.1 400 "),
        (b"GET /healthz HTTP/2\r\n\r\n", "HTTP/1.1 505 "),
        (
            b"POST /evaluate HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "HTTP/1.1 411 ",
        ),
        (
            b"POST /evaluate HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
            "HTTP/1.1 413 ",
        ),
    ] {
        let resp = raw_exchange(&addr, raw);
        assert!(resp.starts_with(expect), "{raw:?} => {resp}");
        assert!(resp.contains("\"error\""), "{resp}");
    }

    // Routed failures through the structured client.
    let (status, v) = get_json(&addr, "/no-such-route").unwrap();
    assert_eq!(status, 404);
    assert!(v
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("/evaluate"));

    let (status, _) = get_json(&addr, "/evaluate").unwrap();
    assert_eq!(status, 405);

    let (status, v) = post_json(&addr, "/evaluate", &Json::Obj(vec![])).unwrap();
    assert_eq!(status, 400);
    assert!(v.get("error").is_some());

    let bad_design = Json::Obj(vec![("design".into(), Json::str("TPU"))]);
    let (status, v) = post_json(&addr, "/evaluate", &bad_design).unwrap();
    assert_eq!(status, 400);
    assert!(v
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("unknown design"));

    let (_, text) =
        hl_serve::client::request(&addr, "POST", "/evaluate", Some("{not json")).unwrap();
    assert!(text.contains("invalid JSON"));

    // 4xx responses were counted in metrics.
    let (_, m) = get_json(&addr, "/metrics").unwrap();
    let s4 = m
        .get("responses")
        .and_then(|r| r.get("4xx"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(s4 >= 7.0, "4xx count {s4}");

    server.stop().unwrap();
}

#[test]
fn concurrent_clients_get_identical_answers() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let body = Json::Obj(vec![
        ("design".into(), Json::str("DSTC")),
        ("a_sparsity".into(), Json::Num(0.75)),
        ("b_sparsity".into(), Json::Num(0.5)),
    ]);
    let reference = post_json(&addr, "/evaluate", &body).unwrap().1.encode();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let (addr, body, reference) = (&addr, &body, &reference);
            scope.spawn(move || {
                for _ in 0..5 {
                    let (status, v) = post_json(addr, "/evaluate", body).unwrap();
                    assert_eq!(status, 200);
                    assert_eq!(&v.encode(), reference);
                }
            });
        }
    });
    server.stop().unwrap();
}

#[test]
fn graceful_shutdown_stops_accepting() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let (status, _) = get_json(&addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    server.stop().expect("drain cleanly");
    // The listener is gone: connecting (or at least exchanging) fails.
    let after = TcpStream::connect(&addr);
    assert!(
        after.is_err() || get_json(&addr, "/healthz").is_err(),
        "server must stop serving after shutdown"
    );
}
