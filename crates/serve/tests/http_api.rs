//! End-to-end tests: a real server on an ephemeral port, exercised over
//! real sockets.
//!
//! The headline assertion is the serving-layer contract: `/v1/evaluate`
//! responses are **byte-identical** to the offline
//! [`hl_sim::evaluate_best`] results rendered through the same JSON view,
//! for every registered design — the HTTP layer adds transport, never
//! drift. The same contract extends sideways: the legacy unversioned
//! paths answer byte-identically to their `/v1/` counterparts. The rest
//! covers the 4xx mapping, keep-alive + pipelining, in-flight request
//! coalescing, the cache snapshot, the shared-cache hit rate rising in
//! `/v1/metrics`, sweep truncation, concurrency, and graceful shutdown.

#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use hl_bench::{registered_names, SweepContext};
use hl_serve::api::{
    build_workload, eval_result_json, network_eval_json, pruning_from, search_outcome_json, App,
};
use hl_serve::client::{get_json, post_json, request, Client};
use hl_serve::json::Json;
use hl_serve::server::{Server, ServerConfig, ServerHandle};
use hl_sim::engine::Engine;
use hl_tensor::GemmShape;

fn config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServerConfig::default()
    }
}

fn spawn_server() -> ServerHandle {
    let app = App::with_context(SweepContext::with_engine(Engine::with_threads(2)));
    Server::bind(config(), app)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

/// Sends raw bytes and returns the raw response text (for malformed or
/// pipelined requests the structured client cannot express).
fn raw_exchange(addr: &str, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).expect("write");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

fn err_message(v: &Json) -> &str {
    v.get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .expect("structured error body")
}

#[test]
fn healthz_designs_and_metrics_respond() {
    let server = spawn_server();
    let addr = server.addr().to_string();

    let (status, health) = get_json(&addr, "/v1/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("threads").and_then(Json::as_f64), Some(2.0));

    let (status, designs) = get_json(&addr, "/v1/designs").unwrap();
    assert_eq!(status, 200);
    let list = designs.get("designs").and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = list
        .iter()
        .filter_map(|d| d.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, registered_names());
    for d in list {
        assert!(d.get("area_mm2").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(d.get("supported_patterns").and_then(Json::as_str).is_some());
    }

    let (status, metrics) = get_json(&addr, "/v1/metrics").unwrap();
    assert_eq!(status, 200);
    for key in [
        "uptime_s",
        "requests",
        "responses",
        "connections",
        "eval_cache",
        "latency_ms",
    ] {
        assert!(metrics.get(key).is_some(), "missing {key}");
    }

    server.stop().unwrap();
}

#[test]
fn evaluate_is_byte_identical_to_offline_for_every_design() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let shape = GemmShape::new(1024, 1024, 1024);
    for name in registered_names() {
        for (sa, sb) in [(0.0, 0.0), (0.5, 0.25), (0.75, 0.5)] {
            let body = Json::Obj(vec![
                ("design".into(), Json::str(name)),
                ("a_sparsity".into(), Json::Num(sa)),
                ("b_sparsity".into(), Json::Num(sb)),
            ]);
            let (status, v) = post_json(&addr, "/v1/evaluate", &body).unwrap();
            assert_eq!(status, 200, "{name} at ({sa},{sb})");

            let design = hl_bench::design_by_name(name).unwrap();
            let workload = build_workload(name, shape, sa, sb).unwrap();
            match hl_sim::evaluate_best(design.as_ref(), &workload) {
                Ok(offline) => {
                    assert_eq!(
                        v.get("supported").and_then(Json::as_bool),
                        Some(true),
                        "{name} at ({sa},{sb})"
                    );
                    assert_eq!(
                        v.get("result").unwrap().encode(),
                        eval_result_json(&offline).encode(),
                        "{name} at ({sa},{sb}): served result must be \
                         byte-identical to the offline evaluation"
                    );
                }
                Err(unsupported) => {
                    assert_eq!(v.get("supported").and_then(Json::as_bool), Some(false));
                    assert_eq!(
                        v.get("reason").and_then(Json::as_str),
                        Some(unsupported.to_string().as_str())
                    );
                }
            }
        }
    }
    server.stop().unwrap();
}

#[test]
fn legacy_paths_answer_byte_identically_to_v1() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let eval = r#"{"design":"HighLight","a_sparsity":0.5,"b_sparsity":0.25}"#;
    let bad = r#"{"design":"HighLight","a_sparsity":7}"#;

    // Deterministic endpoints only: /healthz and /metrics answer with
    // time-varying fields and cannot be compared bytewise.
    for (method, legacy, v1, body) in [
        ("GET", "/designs", "/v1/designs", None),
        ("GET", "/models", "/v1/models", None),
        ("POST", "/evaluate", "/v1/evaluate", Some(eval)),
        ("POST", "/evaluate", "/v1/evaluate", Some(bad)),
    ] {
        let (s_new, t_new) = request(&addr, method, v1, body).unwrap();
        let (s_old, t_old) = request(&addr, method, legacy, body).unwrap();
        assert_eq!(s_old, s_new, "{method} {legacy}");
        assert_eq!(
            t_old, t_new,
            "{method} {legacy} must be byte-identical to {v1}"
        );
    }
    assert_eq!(server.app().metrics().deprecated_routes(), 4);

    let (_, m) = get_json(&addr, "/v1/metrics").unwrap();
    assert_eq!(
        m.get("requests")
            .and_then(|r| r.get("deprecated"))
            .and_then(Json::as_f64),
        Some(4.0)
    );
    server.stop().unwrap();
}

#[test]
fn keep_alive_reuses_one_connection() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let mut client = Client::new(&addr);
    let body = Json::parse(r#"{"design":"TC"}"#).unwrap();
    let reference = client.post_json("/v1/evaluate", &body).unwrap().1.encode();
    for _ in 0..4 {
        let (status, v) = client.post_json("/v1/evaluate", &body).unwrap();
        assert_eq!(status, 200);
        assert_eq!(v.encode(), reference);
    }
    let (status, m) = client.get_json("/v1/metrics").unwrap();
    assert_eq!(status, 200);
    let conns = m.get("connections").unwrap();
    assert_eq!(
        conns.get("accepted").and_then(Json::as_f64),
        Some(1.0),
        "all six requests must share one connection"
    );
    assert_eq!(conns.get("active").and_then(Json::as_f64), Some(1.0));
    // The metrics request renders its snapshot before recording itself:
    // it reports the five requests that preceded it.
    assert_eq!(
        m.get("requests")
            .and_then(|r| r.get("total"))
            .and_then(Json::as_f64),
        Some(5.0)
    );
    server.stop().unwrap();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    // A worker-pool POST followed by an inline GET: the GET's response is
    // computed first but must wait for the evaluate's slot.
    let eval = r#"{"design":"HighLight","a_sparsity":0.5,"b_sparsity":0.5}"#;
    let pipelined = format!(
        "POST /v1/evaluate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{eval}\
         GET /v1/healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        eval.len(),
    );
    let text = raw_exchange(&addr, pipelined.as_bytes());
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
    let first = text.find("\"workload\"").expect("evaluate response");
    let second = text.find("\"status\":\"ok\"").expect("healthz response");
    assert!(
        first < second,
        "pipelined responses must arrive in request order"
    );
    server.stop().unwrap();
}

#[test]
fn identical_inflight_posts_coalesce_into_one_evaluation() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let cache_misses = || server.app().context().engine().eval_cache().misses();

    // Four identical evaluates in one write: all four are parsed and
    // dispatched in one event-loop pass, so the last three join the
    // first's in-flight evaluation deterministically.
    let body = r#"{"design":"HighLight","a_sparsity":0.6875,"b_sparsity":0.4375}"#;
    let one = format!(
        "POST /v1/evaluate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let pipelined = format!(
        "{one}{one}{one}POST /v1/evaluate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    let text = raw_exchange(&addr, pipelined.as_bytes());
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 4, "{text}");
    let batch_misses = cache_misses();

    assert_eq!(
        server.app().metrics().coalesced(),
        3,
        "three of the four in-flight twins must coalesce"
    );

    // The whole batch cost at most what a single fresh evaluation costs
    // (measured on a different degree pair so the cache is cold for it).
    let probe =
        Json::parse(r#"{"design":"HighLight","a_sparsity":0.1875,"b_sparsity":0.75}"#).unwrap();
    let (status, _) = post_json(&addr, "/v1/evaluate", &probe).unwrap();
    assert_eq!(status, 200);
    let single_misses = cache_misses() - batch_misses;
    assert!(
        batch_misses <= single_misses,
        "coalesced batch ({batch_misses} misses) must cost no more than \
         one evaluation ({single_misses} misses)"
    );

    // All four responses carry the same payload.
    let payload = text
        .split("\r\n\r\n")
        .filter(|part| part.contains("\"workload\""))
        .map(|part| part.split("HTTP/1.1").next().unwrap().trim().to_string())
        .collect::<Vec<_>>();
    assert_eq!(payload.len(), 4, "{text}");
    assert!(payload.iter().all(|p| p == &payload[0]));

    server.stop().unwrap();
}

#[test]
fn snapshot_round_trips_the_cache_across_a_restart() {
    let path = std::env::temp_dir().join(format!("hl-serve-e2e-snap-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let body =
        Json::parse(r#"{"design":"HighLight","a_sparsity":0.5,"b_sparsity":0.125}"#).unwrap();

    let spawn_with_snapshot = || {
        let app = App::with_context(SweepContext::with_engine(Engine::with_threads(2)));
        Server::bind(
            ServerConfig {
                snapshot: Some(path.clone()),
                ..config()
            },
            app,
        )
        .expect("bind")
        .spawn()
        .expect("spawn")
    };

    // Cold boot: evaluate once (misses), drain — the snapshot is saved.
    let server = spawn_with_snapshot();
    let addr = server.addr().to_string();
    let (status, first) = post_json(&addr, "/v1/evaluate", &body).unwrap();
    assert_eq!(status, 200);
    assert!(server.app().context().engine().eval_cache().misses() > 0);
    server.stop().unwrap();
    assert!(path.exists(), "drain must write the snapshot");

    // Warm boot: the same request replays entirely from the preloaded
    // cache (zero misses) and stays byte-identical.
    let server = spawn_with_snapshot();
    let addr = server.addr().to_string();
    let (status, again) = post_json(&addr, "/v1/evaluate", &body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(again.encode(), first.encode());
    let cache = server.app().context().engine().eval_cache();
    assert_eq!(cache.misses(), 0, "warm boot must answer from the snapshot");
    assert!(cache.hits() > 0);
    server.stop().unwrap();

    let _ = std::fs::remove_file(&path);
}

#[test]
fn evaluate_model_is_byte_identical_to_offline_network_eval() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let pruning = Json::parse(r#"{"hss":[[2,4]]}"#).unwrap();
    for design_name in registered_names() {
        for model_name in hl_models::model_names() {
            let body = Json::Obj(vec![
                ("design".into(), Json::str(design_name)),
                ("model".into(), Json::str(model_name)),
                ("pruning".into(), pruning.clone()),
            ]);
            let (status, v) = post_json(&addr, "/v1/evaluate_model", &body).unwrap();
            assert_eq!(status, 200, "{design_name} on {model_name}");

            // Offline: the same lowering + serial network evaluation.
            let design = hl_bench::design_by_name(design_name).unwrap();
            let model = hl_models::model_by_name(model_name).unwrap();
            let config = pruning_from(Some(&pruning)).unwrap();
            let network = SweepContext::lower_model(design.as_ref(), &model, &config);
            let offline = hl_sim::network::evaluate_network(design.as_ref(), &network);
            assert_eq!(
                v.get("network").unwrap().encode(),
                network_eval_json(&offline).encode(),
                "{design_name} on {model_name}: served network eval must be \
                 byte-identical to the offline evaluation"
            );
            assert_eq!(
                v.get("supported").and_then(Json::as_bool),
                Some(offline.supported())
            );
        }
    }
    server.stop().unwrap();
}

#[test]
fn search_is_byte_identical_to_offline_codesign_and_rejects_degenerates() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let body = Json::Obj(vec![
        ("design".into(), Json::str("HighLight")),
        ("model".into(), Json::str("DeiT-small")),
        ("budget".into(), Json::Num(0.5)),
    ]);
    let (status, v) = post_json(&addr, "/v1/search", &body).unwrap();
    assert_eq!(status, 200);

    // Byte-identity: the served search must equal the offline co-design
    // search (serial, uncached-pool) through the same canonical view —
    // the same contract /v1/evaluate and /v1/evaluate_model honour.
    let design = hl_bench::design_by_name("HighLight").unwrap();
    let model = hl_models::model_by_name("DeiT-small").unwrap();
    let offline =
        SweepContext::with_engine(Engine::serial()).codesign(design.as_ref(), &model, 0.5);
    assert_eq!(v.encode(), search_outcome_json(&offline).encode());

    // The served front is non-dominated.
    let front = v.get("front").and_then(Json::as_arr).unwrap();
    assert!(!front.is_empty());
    let pt = |p: &Json| {
        (
            p.get("loss").and_then(Json::as_f64).unwrap(),
            p.get("edp").and_then(Json::as_f64).unwrap(),
        )
    };
    for a in front {
        for b in front {
            assert!(
                !hl_sim::pareto::dominates(pt(b), pt(a)),
                "served front must be non-dominated"
            );
        }
    }

    // A replay hits the shared caches: the second query is answered from
    // the memo and stays byte-identical.
    let (_, v2) = post_json(&addr, "/v1/search", &body).unwrap();
    assert_eq!(v2.encode(), v.encode());

    // Degenerate queries are 4xx, not worker panics.
    for bad in [
        Json::Obj(vec![
            ("design".into(), Json::str("HighLight")),
            ("model".into(), Json::str("DeiT-small")),
            ("budget".into(), Json::Num(-0.5)),
        ]),
        Json::Obj(vec![
            ("design".into(), Json::str("TPU")),
            ("model".into(), Json::str("DeiT-small")),
            ("budget".into(), Json::Num(0.5)),
        ]),
    ] {
        let (status, v) = post_json(&addr, "/v1/search", &bad).unwrap();
        assert_eq!(status, 400);
        assert!(v.get("error").is_some());
    }
    // …and a zero-density pruning config over HTTP answers per-layer
    // Unsupported instead of killing the worker.
    let degenerate = Json::Obj(vec![
        ("design".into(), Json::str("DSTC")),
        ("model".into(), Json::str("Transformer-Big")),
        (
            "pruning".into(),
            Json::parse(r#"{"unstructured":1.0}"#).unwrap(),
        ),
    ]);
    let (status, v) = post_json(&addr, "/v1/evaluate_model", &degenerate).unwrap();
    assert_eq!(status, 200);
    assert_eq!(v.get("supported").and_then(Json::as_bool), Some(false));
    let (status, _) = get_json(&addr, "/v1/healthz").unwrap();
    assert_eq!(status, 200, "server must survive degenerate configs");

    server.stop().unwrap();
}

#[test]
fn models_listing_and_model_eval_share_the_cache() {
    let server = spawn_server();
    let addr = server.addr().to_string();

    let (status, v) = get_json(&addr, "/v1/models").unwrap();
    assert_eq!(status, 200);
    let names: Vec<&str> = v
        .get("models")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|m| m.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, hl_models::model_names());

    // Repeated model evaluations replay per-layer cells from the memo.
    let body = Json::parse(
        r#"{"design":"HighLight","model":"Transformer-Big","pruning":{"unstructured":0.5}}"#,
    )
    .unwrap();
    let (status, first) = post_json(&addr, "/v1/evaluate_model", &body).unwrap();
    assert_eq!(status, 200);
    let misses = |addr: &str| -> f64 {
        let (_, m) = get_json(addr, "/v1/metrics").unwrap();
        m.get("eval_cache")
            .and_then(|c| c.get("misses"))
            .and_then(Json::as_f64)
            .unwrap()
    };
    let misses0 = misses(&addr);
    let (_, again) = post_json(&addr, "/v1/evaluate_model", &body).unwrap();
    assert_eq!(again.encode(), first.encode(), "replay is identical");
    assert_eq!(misses(&addr), misses0, "no new evaluations on replay");

    server.stop().unwrap();
}

#[test]
fn repeated_evaluates_raise_the_cache_hit_rate() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let body = Json::Obj(vec![
        ("design".into(), Json::str("HighLight")),
        ("a_sparsity".into(), Json::Num(0.5)),
        ("b_sparsity".into(), Json::Num(0.5)),
    ]);

    let cache_stats = |addr: &str| -> (f64, f64, f64) {
        let (_, m) = get_json(addr, "/v1/metrics").unwrap();
        let c = m.get("eval_cache").unwrap();
        (
            c.get("hits").and_then(Json::as_f64).unwrap(),
            c.get("misses").and_then(Json::as_f64).unwrap(),
            c.get("hit_rate").and_then(Json::as_f64).unwrap(),
        )
    };

    let (_, first) = post_json(&addr, "/v1/evaluate", &body).unwrap();
    let (hits0, misses0, rate0) = cache_stats(&addr);
    for _ in 0..5 {
        let (status, again) = post_json(&addr, "/v1/evaluate", &body).unwrap();
        assert_eq!(status, 200);
        assert_eq!(again.encode(), first.encode(), "replays are identical");
    }
    let (hits1, misses1, rate1) = cache_stats(&addr);
    assert_eq!(
        misses1, misses0,
        "no new evaluations for identical requests"
    );
    assert!(hits1 >= hits0 + 5.0, "hits {hits0} -> {hits1}");
    assert!(rate1 > rate0, "hit rate must rise: {rate0} -> {rate1}");

    server.stop().unwrap();
}

#[test]
fn sweep_end_to_end_with_limit() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let body = Json::parse(
        r#"{"designs":["TC","STC","HighLight"],"a_degrees":[0,0.5,0.75],
            "b_degrees":[0,0.5],"m":256,"k":256,"n":256,"limit":4}"#,
    )
    .unwrap();
    let (status, v) = post_json(&addr, "/v1/sweep", &body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(v.get("rows_total").and_then(Json::as_f64), Some(6.0));
    assert_eq!(v.get("rows_returned").and_then(Json::as_f64), Some(4.0));
    assert_eq!(v.get("truncated").and_then(Json::as_bool), Some(true));
    let rows = v.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 4);
    // Spot-check one cell against the offline evaluation.
    let cell = rows[1].get("results").and_then(Json::as_arr).unwrap()[2].clone();
    let offline = hl_sim::evaluate_best(
        hl_bench::design_by_name("HighLight").unwrap().as_ref(),
        &build_workload("HighLight", GemmShape::new(256, 256, 256), 0.0, 0.5).unwrap(),
    )
    .unwrap();
    assert_eq!(cell.encode(), eval_result_json(&offline).encode());
    server.stop().unwrap();
}

#[test]
fn malformed_requests_map_to_4xx() {
    let server = spawn_server();
    let addr = server.addr().to_string();

    // Raw protocol-level failures.
    for (raw, expect) in [
        (&b"GARBAGE\r\n\r\n"[..], "HTTP/1.1 400 "),
        (b"GET /v1/healthz HTTP/2\r\n\r\n", "HTTP/1.1 505 "),
        (
            b"POST /v1/evaluate HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            "HTTP/1.1 411 ",
        ),
        (
            b"POST /v1/evaluate HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
            "HTTP/1.1 413 ",
        ),
    ] {
        let resp = raw_exchange(&addr, raw);
        assert!(resp.starts_with(expect), "{raw:?} => {resp}");
        assert!(resp.contains("\"error\""), "{resp}");
    }

    // Routed failures through the structured client.
    let (status, v) = get_json(&addr, "/no-such-route").unwrap();
    assert_eq!(status, 404);
    assert!(err_message(&v).contains("/v1/evaluate"));

    let (status, _) = get_json(&addr, "/v1/evaluate").unwrap();
    assert_eq!(status, 405);

    let (status, v) = post_json(&addr, "/v1/evaluate", &Json::Obj(vec![])).unwrap();
    assert_eq!(status, 400);
    assert!(v.get("error").is_some());

    let bad_design = Json::Obj(vec![("design".into(), Json::str("TPU"))]);
    let (status, v) = post_json(&addr, "/v1/evaluate", &bad_design).unwrap();
    assert_eq!(status, 400);
    assert!(err_message(&v).contains("unknown design"));

    let (_, text) = request(&addr, "POST", "/v1/evaluate", Some("{not json")).unwrap();
    assert!(text.contains("invalid JSON"));

    // 4xx responses were counted in metrics.
    let (_, m) = get_json(&addr, "/v1/metrics").unwrap();
    let s4 = m
        .get("responses")
        .and_then(|r| r.get("4xx"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(s4 >= 7.0, "4xx count {s4}");

    server.stop().unwrap();
}

#[test]
fn concurrent_clients_get_identical_answers() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let body = Json::Obj(vec![
        ("design".into(), Json::str("DSTC")),
        ("a_sparsity".into(), Json::Num(0.75)),
        ("b_sparsity".into(), Json::Num(0.5)),
    ]);
    let reference = post_json(&addr, "/v1/evaluate", &body).unwrap().1.encode();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let (addr, body, reference) = (&addr, &body, &reference);
            scope.spawn(move || {
                let mut client = Client::new(addr.clone());
                for _ in 0..5 {
                    let (status, v) = client.post_json("/v1/evaluate", body).unwrap();
                    assert_eq!(status, 200);
                    assert_eq!(&v.encode(), reference);
                }
            });
        }
    });
    server.stop().unwrap();
}

#[test]
fn graceful_shutdown_stops_accepting() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let (status, _) = get_json(&addr, "/v1/healthz").unwrap();
    assert_eq!(status, 200);
    server.stop().expect("drain cleanly");
    // The listener is gone: connecting (or at least exchanging) fails.
    let after = TcpStream::connect(&addr);
    assert!(
        after.is_err() || get_json(&addr, "/v1/healthz").is_err(),
        "server must stop serving after shutdown"
    );
}

#[test]
fn traces_echo_request_ids_and_spans_account_for_latency() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let design = registered_names()[0];
    let body = Json::Obj(vec![
        ("design".into(), Json::str(design)),
        ("a_sparsity".into(), Json::Num(0.5)),
        ("b_sparsity".into(), Json::Num(0.5)),
    ]);

    // A well-formed client-supplied X-Request-Id is honored and echoed.
    let encoded = body.encode();
    let raw = raw_exchange(
        &addr,
        format!(
            "POST /v1/evaluate HTTP/1.1\r\nHost: x\r\nX-Request-Id: e2e-trace.0001\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{encoded}",
            encoded.len()
        )
        .as_bytes(),
    );
    assert!(raw.starts_with("HTTP/1.1 200"), "raw response: {raw}");
    assert!(
        raw.contains("X-Request-Id: e2e-trace.0001"),
        "custom id must be echoed: {raw}"
    );

    // Without one, the server mints an id and still echoes it.
    let mut client = Client::new(addr.clone());
    let (status, _) = client.post_json("/v1/evaluate", &body).unwrap();
    assert_eq!(status, 200);
    let generated = client.request_id().expect("generated id").to_string();
    assert_eq!(generated.len(), 16, "generated ids are 16 hex chars");

    // Both requests appear in /v1/trace with a span breakdown that
    // accounts for the recorded latency (contiguous spans, so the sum
    // lands well inside the 10% budget — equality by construction).
    let (status, v) = client.get_json("/v1/trace").unwrap();
    assert_eq!(status, 200);
    let traces = v.get("traces").and_then(Json::as_arr).unwrap();
    for want in ["e2e-trace.0001", generated.as_str()] {
        let rec = traces
            .iter()
            .find(|t| t.get("id").and_then(Json::as_str) == Some(want))
            .unwrap_or_else(|| panic!("trace {want} missing from ring"));
        assert_eq!(
            rec.get("route").and_then(Json::as_str),
            Some("/v1/evaluate")
        );
        assert_eq!(rec.get("status").and_then(Json::as_f64), Some(200.0));
        assert_eq!(rec.get("outcome").and_then(Json::as_str), Some("complete"));
        let total = rec.get("total_ms").and_then(Json::as_f64).unwrap();
        let spans = rec.get("spans").unwrap();
        let sum: f64 = [
            "parse_ms",
            "queue_ms",
            "eval_ms",
            "serialize_ms",
            "write_ms",
        ]
        .iter()
        .map(|k| spans.get(k).and_then(Json::as_f64).unwrap())
        .sum();
        assert!(
            (sum - total).abs() <= total * 0.10 + 1e-9,
            "{want}: spans sum to {sum} ms but total is {total} ms"
        );
    }

    // The route filter narrows results; the strict query grammar 400s
    // on typos instead of silently returning everything.
    let (status, v) = client
        .get_json("/v1/trace?route=/v1/evaluate&limit=1")
        .unwrap();
    assert_eq!(status, 200);
    let narrowed = v.get("traces").and_then(Json::as_arr).unwrap();
    assert_eq!(narrowed.len(), 1);
    assert_eq!(
        narrowed[0].get("route").and_then(Json::as_str),
        Some("/v1/evaluate")
    );
    let (status, _) = client.get_json("/v1/trace?bogus=1").unwrap();
    assert_eq!(status, 400);
    server.stop().unwrap();
}

#[test]
fn every_json_metric_series_has_a_prometheus_family() {
    let server = spawn_server();
    let addr = server.addr().to_string();
    let design = registered_names()[0];
    let body = Json::Obj(vec![
        ("design".into(), Json::str(design)),
        ("a_sparsity".into(), Json::Num(0.5)),
        ("b_sparsity".into(), Json::Num(0.5)),
    ]);
    let (status, _) = post_json(&addr, "/v1/evaluate", &body).unwrap();
    assert_eq!(status, 200);

    let mut client = Client::new(addr.clone());
    let (status, json) = client.get_json("/v1/metrics").unwrap();
    assert_eq!(status, 200);
    let (status, prom) = client
        .send("GET", "/v1/metrics?format=prometheus", None)
        .unwrap();
    assert_eq!(status, 200);
    hl_serve::prom::validate_exposition(&prom).expect("valid exposition");

    // Spot-check the families over the wire (the exhaustive JSON-series
    // to family mapping is asserted in the api unit tests); the two
    // views must agree on shared counters.
    for family in [
        "hl_requests_total",
        "hl_responses_total",
        "hl_request_latency_seconds",
        "hl_queue_depth",
        "hl_queue_wait_seconds",
        "hl_eval_cache_hits_total",
        "hl_retention_cache_hits_total",
        "hl_connections_accepted_total",
        "hl_shed_total",
        "hl_worker_panics_total",
    ] {
        assert!(
            prom.contains(&format!("# TYPE {family} ")),
            "{family} missing from exposition"
        );
    }
    let json_hits = json
        .get("eval_cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_f64)
        .unwrap();
    let prom_hits: f64 = prom
        .lines()
        .find_map(|l| l.strip_prefix("hl_eval_cache_hits_total "))
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert_eq!(json_hits, prom_hits, "JSON and Prometheus views diverge");
    server.stop().unwrap();
}
