//! Property tests of the Prometheus text exposition: rendered histogram
//! buckets are cumulative and agree exactly with the raw per-bucket
//! series the JSON view is built from, `_count`/`_sum` match the
//! histogram's own counters, interpolated quantiles stay ordered, and
//! every generated document passes the same validator the CI smoke runs
//! (`hl-client promcheck`).

use std::time::Duration;

use hl_serve::metrics::{LatencyHistogram, LATENCY_BUCKETS};
use hl_serve::prom::{validate_exposition, Exposition};
use proptest::prelude::*;

/// The edges `api::render_prometheus` exports: upper edge of log₂
/// bucket `i` is `2^(i+1)` µs, rendered in seconds.
fn edges_seconds() -> Vec<f64> {
    (0..LATENCY_BUCKETS)
        .map(|i| (1u64 << (i + 1)) as f64 / 1e6)
        .collect()
}

/// Strategy over observation batches mixing sub-µs, mid-range, huge
/// (beyond the last bucket edge), and exact power-of-two latencies.
fn observations() -> impl Strategy<Value = Vec<u64>> {
    ObsStrategy
}

struct ObsStrategy;

impl Strategy for ObsStrategy {
    type Value = Vec<u64>;

    fn sample(&self, rng: &mut proptest::TestRng) -> Vec<u64> {
        let len = rng.sample_range(0usize..=64);
        (0..len)
            .map(|_| match rng.sample_range(0u32..4) {
                0 => rng.sample_range(0u64..16),
                1 => rng.sample_range(0u64..100_000),
                2 => rng.sample_range(0u64..1_000_000_000_000),
                _ => 1u64 << rng.sample_range(0u32..40),
            })
            .collect()
    }
}

fn record_all(obs: &[u64]) -> LatencyHistogram {
    let h = LatencyHistogram::new();
    for &us in obs {
        h.record(Duration::from_micros(us));
    }
    h
}

fn render(h: &LatencyHistogram) -> String {
    let mut e = Exposition::new();
    e.histogram(
        "hl_request_latency_seconds",
        "Request handling latency.",
        &edges_seconds(),
        &h.bucket_counts(),
        h.sum_us() as f64 / 1e6,
    );
    e.finish()
}

/// Pulls `(le, value)` bucket samples (`+Inf` as `f64::INFINITY`) plus
/// the `_sum` and `_count` samples out of a rendered exposition.
fn parse_histogram(text: &str, family: &str) -> (Vec<(f64, f64)>, f64, f64) {
    let mut buckets = Vec::new();
    let (mut sum, mut count) = (f64::NAN, f64::NAN);
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let (name_labels, value) = line.rsplit_once(' ').expect("sample line");
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            v => v.parse().expect("sample value"),
        };
        if let Some(rest) = name_labels.strip_prefix(&format!("{family}_bucket{{le=\"")) {
            let le = rest.trim_end_matches("\"}");
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().expect("le value")
            };
            buckets.push((le, value));
        } else if name_labels == format!("{family}_sum") {
            sum = value;
        } else if name_labels == format!("{family}_count") {
            count = value;
        }
    }
    (buckets, sum, count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Rendered buckets are the exact cumulative sums of the raw
    /// per-bucket series, capped by `+Inf`, with `_count`/`_sum`
    /// matching the histogram's own counters — and the document passes
    /// the promcheck validator.
    #[test]
    fn buckets_are_cumulative_and_count_sum_agree(obs in observations()) {
        let h = record_all(&obs);
        let text = render(&h);
        prop_assert!(validate_exposition(&text).is_ok(), "{text}");

        let (buckets, sum, count) = parse_histogram(&text, "hl_request_latency_seconds");
        prop_assert_eq!(buckets.len(), LATENCY_BUCKETS + 1);
        let raw = h.bucket_counts();
        let mut cum = 0u64;
        for (i, &(le, value)) in buckets.iter().take(LATENCY_BUCKETS).enumerate() {
            cum += raw[i];
            prop_assert_eq!(le, (1u64 << (i + 1)) as f64 / 1e6);
            prop_assert_eq!(value, cum as f64);
        }
        let (inf_le, inf_value) = buckets[LATENCY_BUCKETS];
        prop_assert_eq!(inf_le, f64::INFINITY);
        prop_assert_eq!(inf_value, obs.len() as f64);
        prop_assert_eq!(count, obs.len() as f64);
        prop_assert_eq!(count, h.count() as f64);
        // The value format is shortest-roundtrip, so parsing it back
        // recovers the exact f64 that was rendered.
        prop_assert_eq!(sum, h.sum_us() as f64 / 1e6);
    }

    /// The interpolated quantile never exceeds the historical
    /// upper-edge estimate (the JSON view's byte-compatible series),
    /// stays inside the winning bucket, and is monotone in `q`.
    #[test]
    fn interpolated_quantiles_are_bounded_and_monotone(
        obs in observations(),
        q1 in 0u32..=1000,
        q2 in 0u32..=1000,
    ) {
        let h = record_all(&obs);
        let (lo, hi) = (q1.min(q2) as f64 / 1000.0, q1.max(q2) as f64 / 1000.0);
        for q in [lo, hi] {
            let interp = h.quantile_ms(q);
            let edge = h.quantile_ms_upper_edge(q);
            prop_assert!(interp <= edge, "q={q}: interpolated {interp} > edge {edge}");
            // The edge estimate is the upper bound of the winning
            // bucket, whose width is a factor of two.
            if !obs.is_empty() {
                prop_assert!(interp >= edge / 2.0 || edge <= 2.0 / 1000.0,
                    "q={q}: {interp} below bucket floor {}", edge / 2.0);
            }
        }
        prop_assert!(h.quantile_ms(lo) <= h.quantile_ms(hi),
            "quantile not monotone between {lo} and {hi}");
    }
}

/// The full server exposition (every family, both histograms) validates
/// and its latency `_count` matches the metrics' own counter.
#[test]
fn full_app_exposition_validates() {
    use hl_serve::api::App;
    use hl_serve::http::Request;

    let app = App::new();
    let mk = |path: &str| Request {
        method: "GET".into(),
        path: path.into(),
        query: String::new(),
        headers: Vec::new(),
        body: Vec::new(),
    };
    for _ in 0..3 {
        let _ = app.handle(&mk("/v1/healthz"));
    }
    let _ = app.handle(&mk("/nope"));

    let text = app.render_prometheus();
    validate_exposition(&text).expect("full exposition validates");
    let (_, _, count) = parse_histogram(&text, "hl_request_latency_seconds");
    assert_eq!(count, app.metrics().latency().count() as f64);
}
