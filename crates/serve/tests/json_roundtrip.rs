//! Property tests of the hand-rolled JSON codec: `parse(encode(v))` is
//! the identity on arbitrary value trees, encoding is a fixed point, and
//! the parser never panics on garbage.

use hl_serve::json::{Json, MAX_DEPTH};
use proptest::prelude::*;

/// Strategy over arbitrary JSON value trees of bounded depth.
fn json_strategy() -> impl Strategy<Value = Json> {
    JsonStrategy { depth: 4 }
}

struct JsonStrategy {
    depth: u32,
}

impl Strategy for JsonStrategy {
    type Value = Json;

    fn sample(&self, rng: &mut proptest::TestRng) -> Json {
        gen_value(rng, self.depth)
    }
}

fn gen_number(rng: &mut proptest::TestRng) -> f64 {
    match rng.sample_range(0u32..5) {
        0 => rng.sample_range(-1_000_000i64..=1_000_000) as f64,
        1 => rng.sample_range(-1.0f64..=1.0),
        2 => rng.sample_range(-1e12f64..=1e12),
        3 => {
            // Exercise the exponent path, both tiny and huge magnitudes.
            let exp = rng.sample_range(-300i32..=300);
            let mantissa = rng.sample_range(-9.0f64..=9.0);
            mantissa * 10f64.powi(exp)
        }
        _ => *[0.0, -0.0, 1.5, f64::MIN, f64::MAX, f64::EPSILON, 1e-308]
            .get(rng.sample_range(0usize..7))
            .unwrap(),
    }
}

fn gen_string(rng: &mut proptest::TestRng) -> String {
    const ALPHABET: [char; 16] = [
        'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{7}', '\u{1f}', 'é', '☃',
        '😀',
    ];
    let len = rng.sample_range(0usize..=12);
    (0..len)
        .map(|_| ALPHABET[rng.sample_range(0usize..ALPHABET.len())])
        .collect()
}

fn gen_value(rng: &mut proptest::TestRng, depth: u32) -> Json {
    let max = if depth == 0 { 4 } else { 6 };
    match rng.sample_range(0u32..max) {
        0 => Json::Null,
        1 => Json::Bool(rng.sample_range(0u32..2) == 1),
        2 => Json::Num(gen_number(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.sample_range(0usize..=3);
            Json::Arr((0..n).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.sample_range(0usize..=3);
            Json::Obj(
                (0..n)
                    .map(|_| (gen_string(rng), gen_value(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

/// Strategy over garbage inputs that must not panic the parser.
fn garbage_strategy() -> impl Strategy<Value = String> {
    GarbageStrategy
}

struct GarbageStrategy;

impl Strategy for GarbageStrategy {
    type Value = String;

    fn sample(&self, rng: &mut proptest::TestRng) -> String {
        const PIECES: [&str; 18] = [
            "{", "}", "[", "]", ",", ":", "\"", "\\u", "null", "true", "1e", "-", ".5", "0x", " ",
            "\\", "\u{1}", "abc",
        ];
        let len = rng.sample_range(0usize..=20);
        (0..len)
            .map(|_| PIECES[rng.sample_range(0usize..PIECES.len())])
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → parse is the identity on arbitrary trees.
    #[test]
    fn roundtrip_is_identity(v in json_strategy()) {
        let encoded = v.encode();
        let parsed = Json::parse(&encoded);
        prop_assert_eq!(parsed.as_ref(), Ok(&v));
        // Encoding is deterministic and a fixed point.
        prop_assert_eq!(parsed.unwrap().encode(), encoded);
    }

    /// The parser returns (it never panics) on arbitrary garbage.
    #[test]
    fn parser_never_panics_on_garbage(text in garbage_strategy()) {
        let _ = Json::parse(&text);
        prop_assert!(true);
    }

    /// Numbers round-trip exactly (shortest-representation display).
    #[test]
    fn numbers_roundtrip_exactly(bits in 0u64..u64::MAX) {
        let n = f64::from_bits(bits);
        if n.is_finite() {
            let enc = Json::Num(n).encode();
            let Ok(Json::Num(back)) = Json::parse(&enc) else {
                return Err(TestCaseError::fail(format!("{enc} did not parse to a number")));
            };
            prop_assert_eq!(back.to_bits(), n.to_bits());
        }
    }
}

#[test]
fn nesting_exactly_at_the_limit_roundtrips() {
    let mut v = Json::Bool(true);
    for _ in 0..MAX_DEPTH {
        v = Json::Arr(vec![v]);
    }
    let enc = v.encode();
    assert_eq!(Json::parse(&enc), Ok(v));
}
