//! Connection-teardown edge tests: clients that leave ungracefully.
//!
//! Each test abuses one connection — half-closing mid-body, resetting
//! mid-pipeline, stalling until the request timeout — and then asserts
//! the server's bookkeeping recovered: the slab entry is reclaimed
//! (`connections.active` drains to zero), the accept loop still
//! answers, and queued responses for abandoned connections are dropped
//! rather than delivered to a later occupant of the slot.

#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use hl_bench::SweepContext;
use hl_serve::api::App;
use hl_serve::client::get_json;
use hl_serve::json::Json;
use hl_serve::server::{Server, ServerConfig, ServerHandle};
use hl_sim::engine::Engine;

fn spawn_server() -> ServerHandle {
    let app = App::with_context(SweepContext::with_engine(Engine::with_threads(2)));
    Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            request_timeout: Duration::from_millis(300),
            idle_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
        app,
    )
    .expect("bind ephemeral port")
    .spawn()
    .expect("spawn server")
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// Polls `/v1/metrics` until `connections.active` is at most `bound`
/// (one slot is the metrics connection itself when measured inline).
fn wait_active_at_most(addr: &str, bound: f64) -> f64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, metrics) = get_json(addr, "/v1/metrics").expect("metrics");
        assert_eq!(status, 200);
        let active = metrics
            .get("connections")
            .and_then(|c| c.get("active"))
            .and_then(Json::as_f64)
            .expect("connections.active");
        if active <= bound || Instant::now() > deadline {
            return active;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Arms `SO_LINGER` with a zero timeout so dropping the stream sends an
/// RST instead of an orderly FIN.
fn arm_rst(stream: &TcpStream) {
    #[repr(C)]
    struct Linger {
        l_onoff: std::os::raw::c_int,
        l_linger: std::os::raw::c_int,
    }
    // SAFETY: matches the setsockopt(2) prototype from the
    // always-linked platform libc (int fd/level/optname, const buffer
    // pointer + u32 length), so the declaration is ABI-faithful.
    extern "C" {
        fn setsockopt(
            fd: std::os::raw::c_int,
            level: std::os::raw::c_int,
            optname: std::os::raw::c_int,
            optval: *const std::os::raw::c_void,
            optlen: u32,
        ) -> std::os::raw::c_int;
    }
    const SOL_SOCKET: std::os::raw::c_int = 1;
    const SO_LINGER: std::os::raw::c_int = 13;
    let linger = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    // SAFETY: the fd is a live socket owned by `stream`, and optval
    // points at a properly initialized `Linger` whose size is passed as
    // optlen, so the kernel reads exactly the bytes we own.
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            (&linger as *const Linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_LINGER) failed");
}

#[test]
fn half_close_mid_body_reclaims_the_connection() {
    let server = spawn_server();
    let addr = server.addr().to_string();

    // Promise a 100-byte body, deliver 10, then half-close. The server
    // sees EOF mid-request; the connection must be torn down without
    // waiting for bytes that will never come.
    let mut stream = connect(&addr);
    stream
        .write_all(
            b"POST /v1/evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n{\"design\":",
        )
        .expect("write partial body");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut text = String::new();
    let _ = stream.read_to_string(&mut text); // resolves: response or clean close, never a hang
    drop(stream);

    let active = wait_active_at_most(&addr, 1.0);
    assert!(
        active <= 1.0,
        "slab must reclaim the half-closed conn, active={active}"
    );
    let (status, _) = get_json(&addr, "/v1/healthz").expect("health after half-close");
    assert_eq!(status, 200);
    server.stop().expect("graceful stop");
}

#[test]
fn rst_mid_pipeline_reclaims_the_connection() {
    let server = spawn_server();
    let addr = server.addr().to_string();

    // Fire a pipelined burst, then slam the door with an RST before
    // reading any response. Queued responses for the dead connection
    // must be discarded, not delivered to a future slot occupant.
    let stream = connect(&addr);
    arm_rst(&stream);
    let mut pipelined = String::new();
    for _ in 0..4 {
        let body = r#"{"design":"HighLight","a_sparsity":0.5,"b_sparsity":0.25}"#;
        pipelined.push_str(&format!(
            "POST /v1/evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
    }
    (&stream)
        .write_all(pipelined.as_bytes())
        .expect("write burst");
    drop(stream); // RST

    let active = wait_active_at_most(&addr, 1.0);
    assert!(
        active <= 1.0,
        "slab must reclaim the reset conn, active={active}"
    );

    // The slot is reusable and responses still route correctly.
    let (status, health) = get_json(&addr, "/v1/healthz").expect("health after RST");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    server.stop().expect("graceful stop");
}

#[test]
fn stalled_partial_request_gets_a_408_after_a_completed_response() {
    let server = spawn_server();
    let addr = server.addr().to_string();

    // One complete request followed by a dangling partial on the same
    // connection: the full request is answered, then the stalled tail
    // times out with a 408 and the connection closes.
    let mut stream = connect(&addr);
    let body = r#"{"design":"HighLight","a_sparsity":0.5,"b_sparsity":0.25}"#;
    let burst = format!(
        "POST /v1/evaluate HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}GET /v1/healthz HTTP/1.1\r\nHost",
        body.len()
    );
    stream.write_all(burst.as_bytes()).expect("write");
    let mut text = String::new();
    let _ = stream.read_to_string(&mut text);

    assert!(
        text.starts_with("HTTP/1.1 200"),
        "the complete request is answered first, got {text:?}"
    );
    assert!(
        text.contains("HTTP/1.1 408"),
        "the stalled partial times out with 408, got {text:?}"
    );
    drop(stream);

    let active = wait_active_at_most(&addr, 1.0);
    assert!(
        active <= 1.0,
        "slab must reclaim the timed-out conn, active={active}"
    );
    let (status, _) = get_json(&addr, "/v1/healthz").expect("health after 408");
    assert_eq!(status, 200);
    server.stop().expect("graceful stop");
}
