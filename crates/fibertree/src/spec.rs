//! Fibertree-based sparsity specification (paper §3.2, Table 2).
//!
//! A [`PatternSpec`] is an ordered list of ranks, each optionally carrying a
//! pruning [`Rule`]. It can be parsed from / displayed in the paper's
//! notation, e.g. `RS→C1→C0(2:4)` or `RS→C2→C1(3:4)→C0(2:4)`, and checked
//! against a concrete [`Fibertree`].

use std::fmt;
use std::str::FromStr;

use crate::error::FibertreeError;
use crate::tree::Fibertree;

/// A `G:H` ratio that violates the pattern invariant (`1 ≤ G ≤ H`).
///
/// `G > H` would imply a density above 1, and `G == 0` or `H == 0` a
/// division by zero in downstream density/speedup arithmetic — both are
/// rejected at construction so degenerate ratios never reach the models.
/// Front-ends (the `hl-serve` pruning-spec parser, CLI flag parsing) map
/// this to a 4xx instead of a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InvalidGh {
    /// The rejected `G`.
    pub g: u32,
    /// The rejected `H`.
    pub h: u32,
}

impl fmt::Display for InvalidGh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid G:H pattern {}:{} (G must not exceed H and both must be positive)",
            self.g, self.h
        )
    }
}

impl std::error::Error for InvalidGh {}

/// A `G:H` structured sparsity pattern: at most `G` nonzero coordinates in
/// every fiber (block) of shape `H`.
///
/// The implied fiber density is `G/H`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gh {
    /// Maximum nonzeros per block.
    pub g: u32,
    /// Block shape.
    pub h: u32,
}

impl Gh {
    /// Creates a `G:H` pattern.
    ///
    /// # Panics
    /// Panics if `g == 0`, `h == 0`, or `g > h`. Fallible front-ends use
    /// [`Gh::try_new`].
    pub fn new(g: u32, h: u32) -> Self {
        Self::try_new(g, h).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a `G:H` pattern, rejecting degenerate ratios with a typed
    /// error instead of panicking.
    ///
    /// # Errors
    /// [`InvalidGh`] if `g == 0`, `h == 0`, or `g > h`.
    pub fn try_new(g: u32, h: u32) -> Result<Self, InvalidGh> {
        if g == 0 || h == 0 || g > h {
            return Err(InvalidGh { g, h });
        }
        Ok(Self { g, h })
    }

    /// Density `G/H` as a float.
    pub fn density(self) -> f64 {
        f64::from(self.g) / f64::from(self.h)
    }

    /// Sparsity `1 - G/H` as a float.
    pub fn sparsity(self) -> f64 {
        1.0 - self.density()
    }

    /// True if this pattern imposes no sparsity (`G == H`).
    pub fn is_dense(self) -> bool {
        self.g == self.h
    }

    /// The speedup a perfectly balanced skipping SAF extracts: `H/G`.
    pub fn ideal_speedup(self) -> f64 {
        f64::from(self.h) / f64::from(self.g)
    }
}

impl fmt::Display for Gh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.g, self.h)
    }
}

impl FromStr for Gh {
    type Err = FibertreeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (g, h) = s
            .split_once(':')
            .ok_or_else(|| FibertreeError::SpecParse(format!("expected G:H, got `{s}`")))?;
        let g: u32 = g
            .trim()
            .parse()
            .map_err(|_| FibertreeError::SpecParse(format!("bad G in `{s}`")))?;
        let h: u32 = h
            .trim()
            .parse()
            .map_err(|_| FibertreeError::SpecParse(format!("bad H in `{s}`")))?;
        Self::try_new(g, h).map_err(|e| FibertreeError::SpecParse(e.to_string()))
    }
}

/// Pruning rule assigned to one rank of a specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// No explicit pruning at this rank (displayed without parentheses).
    None,
    /// Arbitrary coordinates may be pruned (unstructured at this rank).
    Unconstrained,
    /// `G:H` structured pruning: fibers at this rank have shape `H` and at
    /// most `G` occupied coordinates.
    Gh(Gh),
}

impl Rule {
    /// Density upper bound this rule implies (1.0 for `None`/`Unconstrained`).
    pub fn density_bound(self) -> f64 {
        match self {
            Self::None | Self::Unconstrained => 1.0,
            Self::Gh(gh) => gh.density(),
        }
    }
}

/// One rank of a [`PatternSpec`]: a name plus a pruning rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankSpec {
    /// Rank name (e.g. `"RS"`, `"C1"`).
    pub name: String,
    /// Pruning rule for this rank.
    pub rule: Rule,
}

impl RankSpec {
    /// Creates a rank spec.
    pub fn new(name: impl Into<String>, rule: Rule) -> Self {
        Self {
            name: name.into(),
            rule,
        }
    }
}

/// A fibertree-based sparsity pattern specification: ranks ordered highest to
/// lowest, each with a pruning rule (paper §3.2).
///
/// # Example
///
/// ```
/// use hl_fibertree::spec::PatternSpec;
/// let spec = PatternSpec::parse("RS→C2→C1(3:4)→C0(2:4)")?;
/// assert_eq!(spec.rank_count(), 4);
/// assert_eq!(spec.hss_rank_count(), 2);                 // two ranks carry G:H rules
/// assert!((spec.density_bound() - 0.375).abs() < 1e-12); // 3/4 * 2/4
/// # Ok::<(), hl_fibertree::FibertreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSpec {
    ranks: Vec<RankSpec>,
}

impl PatternSpec {
    /// Creates a specification from rank specs ordered highest to lowest.
    ///
    /// # Panics
    /// Panics if `ranks` is empty.
    pub fn new(ranks: Vec<RankSpec>) -> Self {
        assert!(!ranks.is_empty(), "specification needs at least one rank");
        Self { ranks }
    }

    /// Parses the paper's notation, accepting both `→` and `->` separators.
    ///
    /// Rules: absent (no parentheses), `(unconstrained)`, or `(G:H)`.
    ///
    /// # Errors
    /// Returns [`FibertreeError::SpecParse`] on malformed input.
    pub fn parse(s: &str) -> Result<Self, FibertreeError> {
        let normalized = s.replace("->", "→");
        let mut ranks = Vec::new();
        for part in normalized.split('→') {
            let part = part.trim();
            if part.is_empty() {
                return Err(FibertreeError::SpecParse(format!("empty rank in `{s}`")));
            }
            let (name, rule) = match part.split_once('(') {
                None => (part.to_string(), Rule::None),
                Some((name, rest)) => {
                    let inner = rest.strip_suffix(')').ok_or_else(|| {
                        FibertreeError::SpecParse(format!("missing `)` in `{part}`"))
                    })?;
                    let rule = if inner.eq_ignore_ascii_case("unconstrained") {
                        Rule::Unconstrained
                    } else {
                        Rule::Gh(inner.parse()?)
                    };
                    (name.trim().to_string(), rule)
                }
            };
            if name.is_empty() {
                return Err(FibertreeError::SpecParse(format!("unnamed rank in `{s}`")));
            }
            ranks.push(RankSpec { name, rule });
        }
        if ranks.is_empty() {
            return Err(FibertreeError::SpecParse("empty specification".into()));
        }
        Ok(Self { ranks })
    }

    /// The rank specs, highest to lowest.
    pub fn ranks(&self) -> &[RankSpec] {
        &self.ranks
    }

    /// Total number of ranks.
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Number of ranks carrying `G:H` rules — the paper's `N` in "N-rank HSS".
    pub fn hss_rank_count(&self) -> usize {
        self.ranks
            .iter()
            .filter(|r| matches!(r.rule, Rule::Gh(_)))
            .count()
    }

    /// The `G:H` rules, ordered highest rank first.
    pub fn gh_rules(&self) -> Vec<Gh> {
        self.ranks
            .iter()
            .filter_map(|r| match r.rule {
                Rule::Gh(gh) => Some(gh),
                _ => None,
            })
            .collect()
    }

    /// Density upper bound: the product of per-rank density bounds
    /// (`sparsity = 1 − Π G_n/H_n`, paper §4.1.2).
    pub fn density_bound(&self) -> f64 {
        self.ranks.iter().map(|r| r.rule.density_bound()).product()
    }

    /// Sparsity lower bound implied by the `G:H` rules.
    pub fn sparsity_bound(&self) -> f64 {
        1.0 - self.density_bound()
    }

    /// Checks that `tree` conforms to this specification.
    ///
    /// Rank names and order must match; every rank with a `G:H` rule must
    /// have fiber shape `H` and per-fiber occupancy at most `G`.
    ///
    /// # Errors
    /// Returns [`FibertreeError::NonConformant`] describing the first
    /// violation found.
    pub fn check(&self, tree: &Fibertree) -> Result<(), FibertreeError> {
        if tree.rank_count() != self.ranks.len() {
            return Err(FibertreeError::NonConformant(format!(
                "spec has {} ranks, tensor has {}",
                self.ranks.len(),
                tree.rank_count()
            )));
        }
        for (i, (rs, ri)) in self.ranks.iter().zip(tree.ranks()).enumerate() {
            if rs.name != ri.name {
                return Err(FibertreeError::NonConformant(format!(
                    "rank {i} named `{}` in spec but `{}` in tensor",
                    rs.name, ri.name
                )));
            }
            if let Rule::Gh(gh) = rs.rule {
                if ri.shape != gh.h as usize {
                    return Err(FibertreeError::NonConformant(format!(
                        "rank `{}` has shape {} but rule {gh} requires fiber shape {}",
                        rs.name, ri.shape, gh.h
                    )));
                }
                for fiber in tree.fibers_at(i) {
                    if fiber.occupancy() > gh.g as usize {
                        return Err(FibertreeError::NonConformant(format!(
                            "a fiber in rank `{}` has occupancy {} > G={} (rule {gh})",
                            rs.name,
                            fiber.occupancy(),
                            gh.g
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// The succinct form keeping only ranks that carry rules, as used in the
    /// paper ("RS→C1→C0(2:4) is simplified to C0(2:4)").
    pub fn succinct(&self) -> String {
        let with_rules: Vec<String> = self
            .ranks
            .iter()
            .filter(|r| r.rule != Rule::None)
            .map(format_rank)
            .collect();
        if with_rules.is_empty() {
            "dense".to_string()
        } else {
            with_rules.join("→")
        }
    }
}

fn format_rank(r: &RankSpec) -> String {
    match r.rule {
        Rule::None => r.name.clone(),
        Rule::Unconstrained => format!("{}(Unconstrained)", r.name),
        Rule::Gh(gh) => format!("{}({gh})", r.name),
    }
}

impl fmt::Display for PatternSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.ranks.iter().map(format_rank).collect();
        write!(f, "{}", parts.join("→"))
    }
}

impl FromStr for PatternSpec {
    type Err = FibertreeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Fibertree;

    #[test]
    fn gh_basics() {
        let gh = Gh::new(2, 4);
        assert_eq!(gh.density(), 0.5);
        assert_eq!(gh.ideal_speedup(), 2.0);
        assert!(!gh.is_dense());
        assert!(Gh::new(4, 4).is_dense());
        assert_eq!(gh.to_string(), "2:4");
    }

    #[test]
    #[should_panic(expected = "invalid G:H")]
    fn gh_rejects_g_above_h() {
        let _ = Gh::new(5, 4);
    }

    #[test]
    fn gh_try_new_returns_typed_errors() {
        assert_eq!(Gh::try_new(2, 4), Ok(Gh::new(2, 4)));
        for (g, h) in [(5, 4), (0, 4), (2, 0), (0, 0)] {
            let err = Gh::try_new(g, h).unwrap_err();
            assert_eq!(err, InvalidGh { g, h });
            let msg = err.to_string();
            assert!(msg.contains(&format!("{g}:{h}")), "{msg}");
            assert!(msg.contains("must not exceed H"), "{msg}");
        }
        // The string parser rejects through the same validation.
        let err = "4:2".parse::<Gh>().unwrap_err();
        assert!(err.to_string().contains("must not exceed H"), "{err}");
    }

    #[test]
    fn parse_roundtrip() {
        for s in [
            "CRS(Unconstrained)",
            "C(Unconstrained)→R→S",
            "RS→C1→C0(2:4)",
            "RS→C2→C1(3:4)→C0(2:4)",
        ] {
            let spec = PatternSpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s, "roundtrip failed for {s}");
        }
    }

    #[test]
    fn parse_accepts_ascii_arrow() {
        let a = PatternSpec::parse("RS->C1->C0(2:4)").unwrap();
        let b = PatternSpec::parse("RS→C1→C0(2:4)").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(PatternSpec::parse("").is_err());
        assert!(PatternSpec::parse("C(2:4").is_err());
        assert!(PatternSpec::parse("C(4:2)").is_err());
        assert!(PatternSpec::parse("→C").is_err());
        assert!(PatternSpec::parse("C(0:4)").is_err());
    }

    #[test]
    fn density_bound_multiplies_fractions() {
        let spec = PatternSpec::parse("RS→C2→C1(3:4)→C0(2:4)").unwrap();
        assert!((spec.density_bound() - 0.375).abs() < 1e-12);
        assert!((spec.sparsity_bound() - 0.625).abs() < 1e-12);
        assert_eq!(spec.hss_rank_count(), 2);
        assert_eq!(spec.gh_rules(), vec![Gh::new(3, 4), Gh::new(2, 4)]);
    }

    #[test]
    fn succinct_drops_unruled_ranks() {
        let spec = PatternSpec::parse("RS→C1→C0(2:4)").unwrap();
        assert_eq!(spec.succinct(), "C0(2:4)");
        let dense = PatternSpec::parse("M→K").unwrap();
        assert_eq!(dense.succinct(), "dense");
    }

    fn conforming_2_4() -> Fibertree {
        // 1x2x4: two blocks of 4, each with exactly 2 nonzeros.
        let data = vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 4.0];
        Fibertree::from_dense(&data, &[1, 2, 4], &["RS", "C1", "C0"]).unwrap()
    }

    #[test]
    fn check_accepts_conforming() {
        let spec = PatternSpec::parse("RS→C1→C0(2:4)").unwrap();
        spec.check(&conforming_2_4()).unwrap();
    }

    #[test]
    fn check_rejects_overfull_fiber() {
        let data = vec![1.0, 1.0, 2.0, 0.0, 0.0, 3.0, 0.0, 4.0];
        let t = Fibertree::from_dense(&data, &[1, 2, 4], &["RS", "C1", "C0"]).unwrap();
        let spec = PatternSpec::parse("RS→C1→C0(2:4)").unwrap();
        let err = spec.check(&t).unwrap_err();
        assert!(matches!(err, FibertreeError::NonConformant(_)));
    }

    #[test]
    fn check_rejects_wrong_shape_or_names() {
        let spec = PatternSpec::parse("RS→C1→C0(2:8)").unwrap();
        assert!(spec.check(&conforming_2_4()).is_err()); // shape 4 != 8
        let spec2 = PatternSpec::parse("RS→K1→K0(2:4)").unwrap();
        assert!(spec2.check(&conforming_2_4()).is_err()); // names differ
    }

    #[test]
    fn check_two_rank_hss() {
        // RS -> C2 -> C1(1:2) -> C0(2:4): C1 fibers (shape 2) have <=1
        // non-empty block; C0 fibers (shape 4) have <=2 values.
        let mut data = vec![0.0; 2 * 4];
        data[0] = 1.0;
        data[2] = 2.0; // block 0 occupied with 2 values; block 1 empty
        let t = Fibertree::from_dense(&data, &[1, 1, 2, 4], &["RS", "C2", "C1", "C0"]).unwrap();
        let spec = PatternSpec::parse("RS→C2→C1(1:2)→C0(2:4)").unwrap();
        spec.check(&t).unwrap();
    }
}
