//! Fibertree abstraction and precise sparsity specification.
//!
//! This crate implements the fibertree tensor abstraction used by the HighLight
//! paper (MICRO 2023, §3) to *precisely* describe sparsity patterns. A fibertree
//! represents a tensor as a tree of *ranks* (one per dimension); each rank
//! contains *fibers*, each fiber a set of `(coordinate, payload)` pairs. For
//! intermediate ranks the payload is a fiber of the next-lower rank; for the
//! lowest rank it is a scalar value.
//!
//! Sparsity is introduced by *pruning coordinates*: pruning at the lowest rank
//! removes values, pruning at an intermediate rank removes the whole subtree.
//! A sparsity pattern is specified by a rank order plus a per-rank pruning
//! rule, e.g. `RS→C1→C0(2:4)` (NVIDIA's 2:4 structured sparsity) or the
//! two-rank hierarchical pattern `RS→C2→C1(3:4)→C0(2:4)` from the paper.
//!
//! The crate provides:
//! - [`Fibertree`]: a concrete fibertree over scalar values, built from dense
//!   data, with the content-preserving transformations the paper relies on
//!   (rank **reorder**, **flatten**, and **split**/partition). Fibers live in
//!   one index-linked arena ([`FiberView`] borrows into it) so construction
//!   and traversal avoid per-node heap allocation; the pointer-based
//!   [`Fiber`]/[`Payload`] pair remains as the naive reference
//!   implementation;
//! - [`spec`]: the fibertree-based sparsity *specification* language
//!   ([`PatternSpec`], [`Rule`], [`Gh`]) with conformance checking;
//! - [`catalog`]: the Table 2 catalog mapping conventional pattern names to
//!   precise specifications.
//!
//! # Example
//!
//! ```
//! use hl_fibertree::{Fibertree, spec::{PatternSpec, Gh}};
//!
//! // A 2x8 matrix whose rows obey 2:4 structured sparsity.
//! let data = vec![
//!     1.0, 0.0, 2.0, 0.0,   0.0, 3.0, 0.0, 4.0,
//!     0.0, 0.0, 5.0, 6.0,   7.0, 0.0, 8.0, 0.0,
//! ];
//! let tree = Fibertree::from_dense(&data, &[2, 8], &["M", "K"])?;
//! // Split K into K1 (blocks) and K0 (intra-block, shape 4), then check 2:4 on K0.
//! let split = tree.split_rank(1, 4)?;
//! let spec = PatternSpec::parse("M→K1→K0(2:4)")?;
//! assert!(spec.check(&split).is_ok());
//! # Ok::<(), hl_fibertree::FibertreeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fiber;
mod tree;

pub mod catalog;
pub mod spec;

pub use error::FibertreeError;
pub use fiber::{Fiber, Payload};
pub use tree::{FiberView, Fibertree, RankInfo};
