use std::error::Error;
use std::fmt;

/// Error type for fibertree construction, transformation, specification
/// parsing, and conformance checking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FibertreeError {
    /// Dense data length does not match the product of the shape.
    ShapeMismatch {
        /// Number of elements provided.
        data_len: usize,
        /// Number of elements the shape implies.
        shape_len: usize,
    },
    /// Number of rank names does not match number of dimensions.
    RankCountMismatch {
        /// Ranks named.
        names: usize,
        /// Dimensions in the shape.
        dims: usize,
    },
    /// A shape dimension was zero.
    EmptyDimension,
    /// A rank index was out of bounds.
    RankOutOfBounds {
        /// Offending rank index.
        rank: usize,
        /// Number of ranks in the tree.
        ranks: usize,
    },
    /// Split block size must be >= 1 and <= the rank shape.
    InvalidSplit {
        /// Requested block size.
        block: usize,
        /// Shape of the rank being split.
        shape: usize,
    },
    /// Reorder permutation was not a permutation of `0..ranks`.
    InvalidPermutation,
    /// A specification string could not be parsed.
    SpecParse(String),
    /// A tensor does not conform to a specification.
    NonConformant(String),
}

impl fmt::Display for FibertreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch {
                data_len,
                shape_len,
            } => write!(
                f,
                "dense data has {data_len} elements but shape implies {shape_len}"
            ),
            Self::RankCountMismatch { names, dims } => {
                write!(f, "{names} rank names provided for {dims} dimensions")
            }
            Self::EmptyDimension => write!(f, "tensor shape contains a zero dimension"),
            Self::RankOutOfBounds { rank, ranks } => {
                write!(
                    f,
                    "rank index {rank} out of bounds for tree with {ranks} ranks"
                )
            }
            Self::InvalidSplit { block, shape } => {
                write!(f, "invalid split block {block} for rank of shape {shape}")
            }
            Self::InvalidPermutation => write!(f, "reorder argument is not a valid permutation"),
            Self::SpecParse(msg) => write!(f, "invalid sparsity specification: {msg}"),
            Self::NonConformant(msg) => write!(f, "tensor does not conform to pattern: {msg}"),
        }
    }
}

impl Error for FibertreeError {}
