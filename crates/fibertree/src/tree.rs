use crate::error::FibertreeError;

/// Name and shape of one rank (tensor dimension) in a [`Fibertree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankInfo {
    /// Rank name, e.g. `"C"`, `"RS"`, `"C0"`.
    pub name: String,
    /// Dimension size: the shape of every fiber in this rank.
    pub shape: usize,
}

impl RankInfo {
    /// Creates a new rank descriptor.
    pub fn new(name: impl Into<String>, shape: usize) -> Self {
        Self {
            name: name.into(),
            shape,
        }
    }
}

/// One fiber's element in the arena: a scalar (lowest rank) or the arena
/// index of the child fiber (intermediate ranks).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    Value(f64),
    Child(u32),
}

/// One fiber's storage: its `(coordinate, slot)` pairs, kept sorted and
/// unique by coordinate. The fiber's shape is implied by its rank.
#[derive(Debug, Clone, PartialEq, Default)]
struct Node {
    elems: Vec<(usize, Slot)>,
}

/// A fibertree: a rank-ordered, zero-free representation of a tensor.
///
/// The tree stores only nonzero values. Ranks are ordered highest (outermost)
/// to lowest (innermost); the lowest rank's payloads are scalar values.
/// Content-preserving transformations — [`reorder`](Self::reorder),
/// [`flatten_ranks`](Self::flatten_ranks), and [`split_rank`](Self::split_rank)
/// — implement the rank manipulations the paper's sparsity specifications are
/// built from (§3.2).
///
/// Fibers live in a single index-linked arena (`nodes`, root at index 0)
/// rather than one heap allocation per fiber: inserts walk child indices
/// instead of cloning sub-fibers, and traversals chase small integers with
/// no pointer-per-node overhead. Fibers are exposed through the borrowed
/// [`FiberView`] handle.
#[derive(Debug, Clone)]
pub struct Fibertree {
    ranks: Vec<RankInfo>,
    nodes: Vec<Node>,
    nnz: usize,
}

impl Fibertree {
    /// Builds a fibertree from dense row-major data, dropping zeros.
    ///
    /// `shape` and `names` are ordered highest rank first (e.g. `["C","R","S"]`
    /// for a CRS weight tensor).
    ///
    /// # Errors
    /// Returns an error if the data length does not match the shape, the name
    /// count does not match the dimension count, or any dimension is zero.
    pub fn from_dense(
        data: &[f64],
        shape: &[usize],
        names: &[&str],
    ) -> Result<Self, FibertreeError> {
        if shape.contains(&0) || shape.is_empty() {
            return Err(FibertreeError::EmptyDimension);
        }
        if names.len() != shape.len() {
            return Err(FibertreeError::RankCountMismatch {
                names: names.len(),
                dims: shape.len(),
            });
        }
        let total: usize = shape.iter().product();
        if data.len() != total {
            return Err(FibertreeError::ShapeMismatch {
                data_len: data.len(),
                shape_len: total,
            });
        }
        let ranks: Vec<RankInfo> = names
            .iter()
            .zip(shape)
            .map(|(n, &s)| RankInfo::new(*n, s))
            .collect();
        let mut tree = Self::empty(ranks);
        let mut coords = vec![0usize; shape.len()];
        for (i, &v) in data.iter().enumerate() {
            if v != 0.0 {
                let mut rem = i;
                for (d, &s) in shape.iter().enumerate().rev() {
                    coords[d] = rem % s;
                    rem /= s;
                }
                tree.insert(&coords, v);
            }
        }
        Ok(tree)
    }

    /// Builds an empty fibertree with the given rank descriptors.
    ///
    /// # Panics
    /// Panics if `ranks` is empty or any shape is zero.
    pub fn empty(ranks: Vec<RankInfo>) -> Self {
        assert!(!ranks.is_empty(), "fibertree needs at least one rank");
        assert!(
            ranks.iter().all(|r| r.shape > 0),
            "fiber shape must be positive"
        );
        Self {
            ranks,
            nodes: vec![Node::default()],
            nnz: 0,
        }
    }

    /// The rank descriptors, highest rank first.
    pub fn ranks(&self) -> &[RankInfo] {
        &self.ranks
    }

    /// Number of ranks (tensor dimensions).
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// The root fiber (highest rank).
    pub fn root(&self) -> FiberView<'_> {
        FiberView {
            tree: self,
            node: 0,
            depth: 0,
        }
    }

    /// Total number of possible positions (product of shapes).
    pub fn volume(&self) -> usize {
        self.ranks.iter().map(|r| r.shape).product()
    }

    /// Number of nonzero values stored.
    pub fn nonzeros(&self) -> usize {
        self.nnz
    }

    /// Fraction of positions that are nonzero.
    pub fn density(&self) -> f64 {
        self.nonzeros() as f64 / self.volume() as f64
    }

    /// Fraction of positions that are zero (`1 - density`).
    pub fn sparsity(&self) -> f64 {
        1.0 - self.density()
    }

    /// Inserts a nonzero value at the given coordinate tuple.
    ///
    /// Inserting `0.0` is ignored (fibertrees store only nonzeros).
    ///
    /// # Panics
    /// Panics if `coords.len()` differs from the rank count or any coordinate
    /// is out of bounds.
    pub fn insert(&mut self, coords: &[usize], value: f64) {
        assert_eq!(coords.len(), self.ranks.len(), "coordinate arity mismatch");
        if value == 0.0 {
            return;
        }
        let mut node = 0usize;
        let last = coords.len() - 1;
        for (d, &c) in coords.iter().enumerate() {
            let shape = self.ranks[d].shape;
            assert!(c < shape, "coordinate {c} out of bounds for shape {shape}");
            let pos = self.nodes[node]
                .elems
                .binary_search_by_key(&c, |(cc, _)| *cc);
            if d == last {
                match pos {
                    Ok(i) => self.nodes[node].elems[i].1 = Slot::Value(value),
                    Err(i) => {
                        self.nodes[node].elems.insert(i, (c, Slot::Value(value)));
                        self.nnz += 1;
                    }
                }
            } else {
                let child = match pos {
                    Ok(i) => match self.nodes[node].elems[i].1 {
                        Slot::Child(ch) => ch,
                        Slot::Value(_) => unreachable!("intermediate rank holds a value"),
                    },
                    Err(i) => {
                        let ch = u32::try_from(self.nodes.len()).expect("arena index overflow");
                        self.nodes.push(Node::default());
                        self.nodes[node].elems.insert(i, (c, Slot::Child(ch)));
                        ch
                    }
                };
                node = child as usize;
            }
        }
    }

    /// Returns the value at the coordinate tuple, or `0.0` if absent.
    ///
    /// # Panics
    /// Panics if the coordinate arity mismatches.
    pub fn get(&self, coords: &[usize]) -> f64 {
        assert_eq!(coords.len(), self.ranks.len(), "coordinate arity mismatch");
        let mut node = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            let elems = &self.nodes[node].elems;
            match elems.binary_search_by_key(&c, |(cc, _)| *cc) {
                Err(_) => return 0.0,
                Ok(i) => match elems[i].1 {
                    Slot::Value(v) => {
                        debug_assert_eq!(d, coords.len() - 1);
                        return v;
                    }
                    Slot::Child(ch) => node = ch as usize,
                },
            }
        }
        unreachable!("lowest rank must hold values")
    }

    /// Iterates over all `(coordinate tuple, value)` pairs in order.
    pub fn iter(&self) -> Vec<(Vec<usize>, f64)> {
        let mut out = Vec::with_capacity(self.nonzeros());
        let mut prefix = Vec::with_capacity(self.ranks.len());
        self.walk(0, &mut prefix, &mut out);
        out
    }

    fn walk(&self, node: usize, prefix: &mut Vec<usize>, out: &mut Vec<(Vec<usize>, f64)>) {
        for &(c, s) in &self.nodes[node].elems {
            prefix.push(c);
            match s {
                Slot::Value(v) => out.push((prefix.clone(), v)),
                Slot::Child(ch) => self.walk(ch as usize, prefix, out),
            }
            prefix.pop();
        }
    }

    /// Converts back to dense row-major data in the current rank order.
    pub fn to_dense(&self) -> Vec<f64> {
        let shapes: Vec<usize> = self.ranks.iter().map(|r| r.shape).collect();
        let mut out = vec![0.0; self.volume()];
        for (coords, v) in self.iter() {
            let mut idx = 0usize;
            for (d, &c) in coords.iter().enumerate() {
                idx = idx * shapes[d] + c;
            }
            out[idx] = v;
        }
        out
    }

    /// Returns a tree with ranks permuted: output rank `i` is input rank
    /// `perm[i]`.
    ///
    /// # Errors
    /// Returns an error if `perm` is not a permutation of `0..rank_count()`.
    pub fn reorder(&self, perm: &[usize]) -> Result<Self, FibertreeError> {
        let n = self.ranks.len();
        let mut seen = vec![false; n];
        if perm.len() != n {
            return Err(FibertreeError::InvalidPermutation);
        }
        for &p in perm {
            if p >= n || seen[p] {
                return Err(FibertreeError::InvalidPermutation);
            }
            seen[p] = true;
        }
        let ranks: Vec<RankInfo> = perm.iter().map(|&p| self.ranks[p].clone()).collect();
        let mut tree = Self::empty(ranks);
        let mut newc = vec![0usize; n];
        for (coords, v) in self.iter() {
            for (i, &p) in perm.iter().enumerate() {
                newc[i] = coords[p];
            }
            tree.insert(&newc, v);
        }
        Ok(tree)
    }

    /// Flattens adjacent ranks `rank` and `rank + 1` into one rank.
    ///
    /// The combined coordinate is `c_hi * shape_lo + c_lo` and the combined
    /// name is the concatenation of the two names (e.g. `R`,`S` → `RS`).
    ///
    /// # Errors
    /// Returns an error if `rank + 1` is out of bounds.
    pub fn flatten_ranks(&self, rank: usize) -> Result<Self, FibertreeError> {
        let n = self.ranks.len();
        if rank + 1 >= n {
            return Err(FibertreeError::RankOutOfBounds {
                rank: rank + 1,
                ranks: n,
            });
        }
        let mut ranks = Vec::with_capacity(n - 1);
        for (i, r) in self.ranks.iter().enumerate() {
            if i == rank {
                ranks.push(RankInfo::new(
                    format!("{}{}", r.name, self.ranks[i + 1].name),
                    r.shape * self.ranks[i + 1].shape,
                ));
            } else if i != rank + 1 {
                ranks.push(r.clone());
            }
        }
        let lo_shape = self.ranks[rank + 1].shape;
        let mut tree = Self::empty(ranks);
        for (coords, v) in self.iter() {
            let mut newc = Vec::with_capacity(n - 1);
            for (i, &c) in coords.iter().enumerate() {
                if i == rank {
                    newc.push(c * lo_shape + coords[i + 1]);
                } else if i != rank + 1 {
                    newc.push(c);
                }
            }
            tree.insert(&newc, v);
        }
        Ok(tree)
    }

    /// Splits (partitions) rank `rank` into an upper rank of blocks and a
    /// lower rank of `block` coordinates each: `c → (c / block, c % block)`.
    ///
    /// Names follow the paper's convention: splitting `C` yields `C1` and
    /// `C0`; splitting `C1` again would yield `C11`/`C10` — callers wanting
    /// the paper's `C2→C1→C0` naming can use
    /// [`split_rank_named`](Self::split_rank_named).
    ///
    /// # Errors
    /// Returns an error if the rank is out of bounds, or `block` is zero or
    /// larger than the rank shape, or does not divide the rank shape.
    pub fn split_rank(&self, rank: usize, block: usize) -> Result<Self, FibertreeError> {
        let name = match self.ranks.get(rank) {
            Some(r) => r.name.clone(),
            None => {
                return Err(FibertreeError::RankOutOfBounds {
                    rank,
                    ranks: self.ranks.len(),
                })
            }
        };
        self.split_rank_named(rank, block, &format!("{name}1"), &format!("{name}0"))
    }

    /// Like [`split_rank`](Self::split_rank) but with explicit names for the
    /// upper and lower result ranks.
    ///
    /// # Errors
    /// Same conditions as [`split_rank`](Self::split_rank).
    pub fn split_rank_named(
        &self,
        rank: usize,
        block: usize,
        upper: &str,
        lower: &str,
    ) -> Result<Self, FibertreeError> {
        let n = self.ranks.len();
        if rank >= n {
            return Err(FibertreeError::RankOutOfBounds { rank, ranks: n });
        }
        let shape = self.ranks[rank].shape;
        if block == 0 || block > shape || !shape.is_multiple_of(block) {
            return Err(FibertreeError::InvalidSplit { block, shape });
        }
        let mut ranks = Vec::with_capacity(n + 1);
        for (i, r) in self.ranks.iter().enumerate() {
            if i == rank {
                ranks.push(RankInfo::new(upper, shape / block));
                ranks.push(RankInfo::new(lower, block));
            } else {
                ranks.push(r.clone());
            }
        }
        let mut tree = Self::empty(ranks);
        for (coords, v) in self.iter() {
            let mut newc = Vec::with_capacity(n + 1);
            for (i, &c) in coords.iter().enumerate() {
                if i == rank {
                    newc.push(c / block);
                    newc.push(c % block);
                } else {
                    newc.push(c);
                }
            }
            tree.insert(&newc, v);
        }
        Ok(tree)
    }

    /// Collects every fiber at depth `rank` (0 = root rank), in depth-first
    /// coordinate order.
    ///
    /// Only *non-empty* fibers are reachable; an absent coordinate at a higher
    /// rank implies an all-zero (pruned) subtree.
    pub fn fibers_at(&self, rank: usize) -> Vec<FiberView<'_>> {
        let mut out = Vec::new();
        self.collect_at(0, 0, rank, &mut out);
        out
    }

    fn collect_at<'a>(
        &'a self,
        node: u32,
        depth: usize,
        target: usize,
        out: &mut Vec<FiberView<'a>>,
    ) {
        if depth == target {
            out.push(FiberView {
                tree: self,
                node,
                depth,
            });
            return;
        }
        for &(_, s) in &self.nodes[node as usize].elems {
            if let Slot::Child(ch) = s {
                self.collect_at(ch, depth + 1, target, out);
            }
        }
    }

    /// Per-fiber occupancies at depth `rank`, *including* fibers that are
    /// implicitly empty because an ancestor coordinate is pruned.
    ///
    /// The result always has `prod(shape[0..rank])` entries, so statistics
    /// computed from it reflect the whole tensor.
    pub fn occupancies_at(&self, rank: usize) -> Vec<usize> {
        let total: usize = self.ranks[..rank].iter().map(|r| r.shape).product();
        let mut out = vec![0usize; total];
        self.occupancies_rec(0, 0, rank, 0, &mut out);
        out
    }

    fn occupancies_rec(
        &self,
        node: usize,
        depth: usize,
        target: usize,
        index: usize,
        out: &mut [usize],
    ) {
        if depth == target {
            out[index] = self.nodes[node].elems.len();
            return;
        }
        let shape = self.ranks[depth].shape;
        for &(c, s) in &self.nodes[node].elems {
            if let Slot::Child(ch) = s {
                self.occupancies_rec(ch as usize, depth + 1, target, index * shape + c, out);
            }
        }
    }
}

impl PartialEq for Fibertree {
    /// Content equality: same ranks and same `(coordinate, value)` set.
    ///
    /// Arena layout is insert-order dependent, so equality compares the
    /// ordered traversal instead of the raw node storage.
    fn eq(&self, other: &Self) -> bool {
        self.ranks == other.ranks && self.nnz == other.nnz && self.iter() == other.iter()
    }
}

/// A borrowed view of one fiber in a [`Fibertree`] arena.
///
/// Exposes the per-fiber queries (shape, occupancy, child navigation) that
/// the pointer-based [`Fiber`](crate::Fiber) offers, without owning storage.
#[derive(Clone, Copy)]
pub struct FiberView<'a> {
    tree: &'a Fibertree,
    node: u32,
    depth: usize,
}

impl<'a> FiberView<'a> {
    fn node(&self) -> &'a Node {
        &self.tree.nodes[self.node as usize]
    }

    /// The number of possible coordinates in this fiber.
    pub fn shape(&self) -> usize {
        self.tree.ranks[self.depth].shape
    }

    /// The number of coordinates present (associated with nonzero content).
    pub fn occupancy(&self) -> usize {
        self.node().elems.len()
    }

    /// True if no coordinates are present.
    pub fn is_empty(&self) -> bool {
        self.node().elems.is_empty()
    }

    /// Occupancy divided by shape.
    pub fn density(&self) -> f64 {
        self.occupancy() as f64 / self.shape() as f64
    }

    /// The sorted list of present coordinates.
    pub fn coords(&self) -> Vec<usize> {
        self.node().elems.iter().map(|(c, _)| *c).collect()
    }

    /// The value stored at `coord`, if this fiber is at the lowest rank and
    /// the coordinate is present.
    pub fn value(&self, coord: usize) -> Option<f64> {
        match self.slot(coord)? {
            Slot::Value(v) => Some(v),
            Slot::Child(_) => None,
        }
    }

    /// The child fiber at `coord`, if this fiber is at an intermediate rank
    /// and the coordinate is present.
    pub fn child(&self, coord: usize) -> Option<FiberView<'a>> {
        match self.slot(coord)? {
            Slot::Value(_) => None,
            Slot::Child(ch) => Some(FiberView {
                tree: self.tree,
                node: ch,
                depth: self.depth + 1,
            }),
        }
    }

    /// Number of scalar values reachable from this fiber.
    pub fn value_count(&self) -> usize {
        let mut n = 0usize;
        let mut stack = vec![self.node];
        while let Some(idx) = stack.pop() {
            for &(_, s) in &self.tree.nodes[idx as usize].elems {
                match s {
                    Slot::Value(_) => n += 1,
                    Slot::Child(ch) => stack.push(ch),
                }
            }
        }
        n
    }

    fn slot(&self, coord: usize) -> Option<Slot> {
        let elems = &self.node().elems;
        elems
            .binary_search_by_key(&coord, |(c, _)| *c)
            .ok()
            .map(|i| elems[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fiber::{Fiber, Payload};

    fn sample_tree() -> Fibertree {
        // 2x2x4 CRS tensor from the paper's Fig. 3 flavour.
        #[rustfmt::skip]
        let data = vec![
            // c=0
            1.0, 0.0, 2.0, 0.0,
            0.0, 3.0, 0.0, 0.0,
            // c=1
            0.0, 0.0, 0.0, 0.0,
            4.0, 5.0, 0.0, 6.0,
        ];
        Fibertree::from_dense(&data, &[2, 2, 4], &["C", "R", "S"]).unwrap()
    }

    #[test]
    fn from_dense_roundtrip() {
        let t = sample_tree();
        assert_eq!(t.nonzeros(), 6);
        assert_eq!(t.volume(), 16);
        assert!((t.density() - 6.0 / 16.0).abs() < 1e-12);
        let dense = t.to_dense();
        assert_eq!(dense[0], 1.0);
        assert_eq!(dense[2], 2.0);
        assert_eq!(dense[12], 4.0);
        assert_eq!(dense.iter().filter(|&&v| v != 0.0).count(), 6);
    }

    #[test]
    fn get_present_and_absent() {
        let t = sample_tree();
        assert_eq!(t.get(&[0, 0, 0]), 1.0);
        assert_eq!(t.get(&[1, 1, 3]), 6.0);
        assert_eq!(t.get(&[1, 0, 0]), 0.0);
    }

    #[test]
    fn reorder_moves_rank() {
        let t = sample_tree();
        // CRS -> RSC
        let r = t.reorder(&[1, 2, 0]).unwrap();
        assert_eq!(r.ranks()[0].name, "R");
        assert_eq!(r.ranks()[2].name, "C");
        assert_eq!(r.get(&[0, 0, 0]), 1.0); // was C=0,R=0,S=0
        assert_eq!(r.get(&[1, 3, 1]), 6.0); // was C=1,R=1,S=3
        assert_eq!(r.nonzeros(), 6);
    }

    #[test]
    fn reorder_rejects_bad_perm() {
        let t = sample_tree();
        assert!(t.reorder(&[0, 0, 1]).is_err());
        assert!(t.reorder(&[0, 1]).is_err());
    }

    #[test]
    fn flatten_combines_ranks() {
        let t = sample_tree();
        let f = t.flatten_ranks(1).unwrap(); // C, RS
        assert_eq!(f.rank_count(), 2);
        assert_eq!(f.ranks()[1].name, "RS");
        assert_eq!(f.ranks()[1].shape, 8);
        assert_eq!(f.get(&[0, 2]), 2.0); // R=0,S=2 -> RS=2
        assert_eq!(f.get(&[1, 7]), 6.0); // R=1,S=3 -> RS=7
    }

    #[test]
    fn split_partitions_rank() {
        let t = sample_tree();
        let s = t.split_rank(2, 2).unwrap(); // S -> S1 (shape 2), S0 (shape 2)
        assert_eq!(s.rank_count(), 4);
        assert_eq!(s.ranks()[2].name, "S1");
        assert_eq!(s.ranks()[3].name, "S0");
        assert_eq!(s.get(&[0, 0, 1, 0]), 2.0); // S=2 -> (1,0)
        assert_eq!(s.get(&[1, 1, 1, 1]), 6.0); // S=3 -> (1,1)
    }

    #[test]
    fn split_rejects_nondivisible_block() {
        let t = sample_tree();
        assert!(t.split_rank(2, 3).is_err());
        assert!(t.split_rank(2, 0).is_err());
        assert!(t.split_rank(9, 2).is_err());
    }

    #[test]
    fn split_then_flatten_is_identity() {
        let t = sample_tree();
        let s = t.split_rank(2, 2).unwrap();
        let back = s.flatten_ranks(2).unwrap();
        assert_eq!(back.to_dense(), t.to_dense());
    }

    #[test]
    fn fibers_at_counts() {
        let t = sample_tree();
        // Rank 1 (R): non-empty R-fibers: c=0 has one, c=1 has one.
        assert_eq!(t.fibers_at(1).len(), 2);
        // Rank 2 (S): (0,0), (0,1), (1,1) are non-empty.
        assert_eq!(t.fibers_at(2).len(), 3);
    }

    #[test]
    fn occupancies_include_empty_fibers() {
        let t = sample_tree();
        let occ = t.occupancies_at(2);
        assert_eq!(occ.len(), 4); // C*R = 4 S-fibers
        assert_eq!(occ, vec![2, 1, 0, 3]);
    }

    #[test]
    fn empty_tree_queries() {
        let t = Fibertree::empty(vec![RankInfo::new("M", 2), RankInfo::new("K", 2)]);
        assert_eq!(t.nonzeros(), 0);
        assert_eq!(t.get(&[1, 1]), 0.0);
        assert_eq!(t.sparsity(), 1.0);
    }

    #[test]
    fn root_and_child_navigation() {
        let t = sample_tree();
        let root = t.root();
        assert_eq!(root.shape(), 2);
        assert_eq!(root.occupancy(), 2);
        assert_eq!(root.coords(), vec![0, 1]);
        assert_eq!(root.value_count(), 6);
        let s_fiber = root.child(1).unwrap().child(1).unwrap();
        assert_eq!(s_fiber.coords(), vec![0, 1, 3]);
        assert_eq!(s_fiber.value(3), Some(6.0));
        assert_eq!(s_fiber.value(2), None);
        assert!(s_fiber.child(0).is_none()); // lowest rank holds values
        assert!((s_fiber.density() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn insert_replaces_existing_value() {
        let mut t = Fibertree::empty(vec![RankInfo::new("M", 2), RankInfo::new("K", 2)]);
        t.insert(&[0, 1], 1.0);
        t.insert(&[0, 1], 2.5);
        assert_eq!(t.nonzeros(), 1);
        assert_eq!(t.get(&[0, 1]), 2.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_bounds_panics() {
        let mut t = Fibertree::empty(vec![RankInfo::new("M", 2)]);
        t.insert(&[2], 1.0);
    }

    #[test]
    fn content_equality_ignores_insert_order() {
        let mut a = Fibertree::empty(vec![RankInfo::new("M", 2), RankInfo::new("K", 2)]);
        let mut b = a.clone();
        a.insert(&[0, 0], 1.0);
        a.insert(&[1, 1], 2.0);
        b.insert(&[1, 1], 2.0);
        b.insert(&[0, 0], 1.0);
        assert_eq!(a, b);
        b.insert(&[0, 1], 3.0);
        assert_ne!(a, b);
    }

    /// Reference walker over the pointer-based [`Fiber`] implementation.
    fn reference_walk(fiber: &Fiber, prefix: &mut Vec<usize>, out: &mut Vec<(Vec<usize>, f64)>) {
        for (c, p) in fiber.iter() {
            prefix.push(c);
            match p {
                Payload::Value(v) => out.push((prefix.clone(), *v)),
                Payload::Fiber(fb) => reference_walk(fb, prefix, out),
            }
            prefix.pop();
        }
    }

    fn reference_insert(fiber: &mut Fiber, shapes: &[usize], coords: &[usize], value: f64) {
        let c = coords[0];
        if coords.len() == 1 {
            fiber.insert(c, Payload::Value(value));
            return;
        }
        if fiber.payload(c).is_none() {
            fiber.insert(c, Payload::Fiber(Fiber::new(shapes[1])));
        }
        let mut sub = match fiber.payload(c).expect("just inserted") {
            Payload::Fiber(fb) => fb.clone(),
            Payload::Value(_) => unreachable!(),
        };
        reference_insert(&mut sub, &shapes[1..], &coords[1..], value);
        fiber.insert(c, Payload::Fiber(sub));
    }

    /// Property: the arena tree's traversal order, occupancies, and values
    /// match the naive pointer-based `Fiber` implementation on pseudo-random
    /// tensors inserted in scrambled order.
    #[test]
    fn arena_matches_pointer_reference_on_random_tensors() {
        let shapes = [3usize, 4, 5];
        // Deterministic LCG so the test needs no RNG dependency.
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for round in 0..8 {
            let mut tree = Fibertree::empty(
                shapes
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| RankInfo::new(format!("R{i}"), s))
                    .collect(),
            );
            let mut reference = Fiber::new(shapes[0]);
            let inserts = 1 + (round * 13) % 40;
            for _ in 0..inserts {
                let coords = [next() % shapes[0], next() % shapes[1], next() % shapes[2]];
                let value = (1 + next() % 9) as f64;
                tree.insert(&coords, value);
                reference_insert(&mut reference, &shapes, &coords, value);
            }
            let mut prefix = Vec::new();
            let mut want = Vec::new();
            reference_walk(&reference, &mut prefix, &mut want);
            assert_eq!(tree.iter(), want, "round {round}");
            assert_eq!(tree.nonzeros(), want.len(), "round {round}");
            // fibers_at occupancy sequences must match the reference order.
            for rank in 0..shapes.len() {
                let got: Vec<usize> = tree.fibers_at(rank).iter().map(|f| f.occupancy()).collect();
                let mut refs = Vec::new();
                fn collect<'a>(f: &'a Fiber, d: usize, t: usize, out: &mut Vec<&'a Fiber>) {
                    if d == t {
                        out.push(f);
                        return;
                    }
                    for (_, p) in f.iter() {
                        if let Payload::Fiber(fb) = p {
                            collect(fb, d + 1, t, out);
                        }
                    }
                }
                collect(&reference, 0, rank, &mut refs);
                let want_occ: Vec<usize> = refs.iter().map(|f| f.occupancy()).collect();
                assert_eq!(got, want_occ, "round {round} rank {rank}");
            }
        }
    }
}
