//! Catalog of published sparsity patterns in fibertree notation (Table 2).
//!
//! Each entry pairs a conventional (informal) classification with the precise
//! fibertree-based specification the paper assigns it, demonstrating that the
//! specification distinguishes patterns that share a conventional name.

use crate::spec::PatternSpec;

/// One row of the paper's Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogEntry {
    /// The work that proposed the pattern (citation key in the paper).
    pub source: &'static str,
    /// Conventional, informal classification.
    pub conventional: &'static str,
    /// Precise fibertree-based specification.
    pub spec: PatternSpec,
    /// Notes (e.g. allowed G/H families).
    pub note: &'static str,
}

/// Returns the Table 2 catalog of example sparsity patterns.
///
/// The final entry is the paper's example two-rank HSS pattern (Fig. 5).
pub fn table2() -> Vec<CatalogEntry> {
    let parse = |s: &str| PatternSpec::parse(s).expect("catalog specs are well-formed");
    vec![
        CatalogEntry {
            source: "Deep Compression [15]",
            conventional: "Unstructured",
            spec: parse("CRS(Unconstrained)"),
            note: "",
        },
        CatalogEntry {
            source: "Channel pruning [17]",
            conventional: "Channel",
            spec: parse("C(Unconstrained)→R→S"),
            note: "",
        },
        CatalogEntry {
            source: "PatDNN [35]",
            conventional: "Sub-kernel",
            spec: parse("C→RS(1:9)"),
            note: "with any G, H",
        },
        CatalogEntry {
            source: "Sparse tensor core 2:4 [32]",
            conventional: "Sub-channel",
            spec: parse("RS→C1→C0(2:4)"),
            note: "",
        },
        CatalogEntry {
            source: "Vector-wise sparse tensor core [60]",
            conventional: "Sub-channel",
            spec: parse("RS→C1→C0(4:16)"),
            note: "",
        },
        CatalogEntry {
            source: "S2TA [30]",
            conventional: "Sub-channel",
            spec: parse("RS→C1→C0(8:8)"),
            note: "G ≤ 8 allowed",
        },
        CatalogEntry {
            source: "Two-rank HSS (this paper, Fig. 5)",
            conventional: "Sub-channel",
            spec: parse("RS→C2→C1(3:4)→C0(2:4)"),
            note: "example; N ranks with per-rank G:H in general",
        },
    ]
}

/// Renders the catalog as an aligned plain-text table (one line per entry).
pub fn render_table2() -> String {
    let entries = table2();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<38} {:<14} {:<34} {}\n",
        "Source", "Conventional", "Fibertree-based specification", "Note"
    ));
    for e in &entries {
        out.push_str(&format!(
            "{:<38} {:<14} {:<34} {}\n",
            e.source,
            e.conventional,
            e.spec.to_string(),
            e.note
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_parses_and_distinguishes_subchannel_patterns() {
        let entries = table2();
        assert_eq!(entries.len(), 7);
        // Three distinct patterns share the `Sub-channel` conventional name
        // (plus the HSS example) — the precise specs must all differ.
        let sub: Vec<_> = entries
            .iter()
            .filter(|e| e.conventional == "Sub-channel")
            .collect();
        assert!(sub.len() >= 3);
        for i in 0..sub.len() {
            for j in i + 1..sub.len() {
                assert_ne!(sub[i].spec, sub[j].spec, "specs must distinguish patterns");
            }
        }
    }

    #[test]
    fn hss_entry_is_multi_rank() {
        let entries = table2();
        let hss = entries.last().unwrap();
        assert_eq!(hss.spec.hss_rank_count(), 2);
        assert!((hss.spec.sparsity_bound() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn render_contains_all_sources() {
        let text = render_table2();
        for e in table2() {
            assert!(text.contains(e.source.split(' ').next().unwrap()));
        }
    }
}
