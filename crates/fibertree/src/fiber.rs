use std::fmt;

/// The payload associated with a coordinate in a fiber.
///
/// For intermediate ranks the payload is a [`Fiber`] of the next-lower rank;
/// for the lowest rank it is a scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A sub-fiber (intermediate ranks).
    Fiber(Fiber),
    /// A scalar value (lowest rank).
    Value(f64),
}

impl Payload {
    /// Returns the contained sub-fiber, if this payload is one.
    pub fn as_fiber(&self) -> Option<&Fiber> {
        match self {
            Self::Fiber(fb) => Some(fb),
            Self::Value(_) => None,
        }
    }

    /// Returns the contained value, if this payload is one.
    pub fn as_value(&self) -> Option<f64> {
        match self {
            Self::Fiber(_) => None,
            Self::Value(v) => Some(*v),
        }
    }

    /// Number of scalar values reachable from this payload.
    pub fn value_count(&self) -> usize {
        match self {
            Self::Fiber(fb) => fb.value_count(),
            Self::Value(_) => 1,
        }
    }
}

/// A fiber: the set of `(coordinate, payload)` pairs for one index of a rank.
///
/// A fiber has a *shape* (the number of possible coordinates, i.e. the
/// dimension size) and an *occupancy* (the number of coordinates actually
/// present, i.e. associated with nonzero content). Coordinates are kept
/// sorted and unique.
#[derive(Debug, Clone, PartialEq)]
pub struct Fiber {
    shape: usize,
    elems: Vec<(usize, Payload)>,
}

impl Fiber {
    /// Creates an empty fiber with the given shape.
    ///
    /// # Panics
    /// Panics if `shape == 0`.
    pub fn new(shape: usize) -> Self {
        assert!(shape > 0, "fiber shape must be positive");
        Self {
            shape,
            elems: Vec::new(),
        }
    }

    /// The number of possible coordinates in this fiber.
    pub fn shape(&self) -> usize {
        self.shape
    }

    /// The number of coordinates present (associated with nonzero content).
    pub fn occupancy(&self) -> usize {
        self.elems.len()
    }

    /// True if no coordinates are present.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Occupancy divided by shape.
    pub fn density(&self) -> f64 {
        self.occupancy() as f64 / self.shape as f64
    }

    /// Inserts a payload at `coord`, keeping coordinates sorted.
    ///
    /// Replaces any existing payload at the same coordinate.
    ///
    /// # Panics
    /// Panics if `coord >= shape`.
    pub fn insert(&mut self, coord: usize, payload: Payload) {
        assert!(
            coord < self.shape,
            "coordinate {coord} out of bounds for shape {}",
            self.shape
        );
        match self.elems.binary_search_by_key(&coord, |(c, _)| *c) {
            Ok(i) => self.elems[i] = (coord, payload),
            Err(i) => self.elems.insert(i, (coord, payload)),
        }
    }

    /// Returns the payload at `coord`, if present.
    pub fn payload(&self, coord: usize) -> Option<&Payload> {
        self.elems
            .binary_search_by_key(&coord, |(c, _)| *c)
            .ok()
            .map(|i| &self.elems[i].1)
    }

    /// Iterates over `(coordinate, payload)` pairs in coordinate order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Payload)> {
        self.elems.iter().map(|(c, p)| (*c, p))
    }

    /// The sorted list of present coordinates.
    pub fn coords(&self) -> Vec<usize> {
        self.elems.iter().map(|(c, _)| *c).collect()
    }

    /// Number of scalar values reachable from this fiber.
    pub fn value_count(&self) -> usize {
        self.elems.iter().map(|(_, p)| p.value_count()).sum()
    }

    /// Removes coordinates for which `keep` returns false, returning the
    /// number of coordinates removed.
    pub fn retain(&mut self, mut keep: impl FnMut(usize, &Payload) -> bool) -> usize {
        let before = self.elems.len();
        self.elems.retain(|(c, p)| keep(*c, p));
        before - self.elems.len()
    }
}

impl fmt::Display for Fiber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (c, p)) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match p {
                Payload::Value(v) => write!(f, "{c}:{v}")?,
                Payload::Fiber(fb) => write!(f, "{c}:{fb}")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_sorted_and_unique() {
        let mut fb = Fiber::new(8);
        fb.insert(5, Payload::Value(1.0));
        fb.insert(2, Payload::Value(2.0));
        fb.insert(5, Payload::Value(3.0));
        assert_eq!(fb.coords(), vec![2, 5]);
        assert_eq!(fb.payload(5).unwrap().as_value(), Some(3.0));
        assert_eq!(fb.occupancy(), 2);
        assert_eq!(fb.shape(), 8);
    }

    #[test]
    fn density_and_value_count() {
        let mut fb = Fiber::new(4);
        fb.insert(0, Payload::Value(1.0));
        fb.insert(3, Payload::Value(2.0));
        assert!((fb.density() - 0.5).abs() < 1e-12);
        assert_eq!(fb.value_count(), 2);
    }

    #[test]
    fn retain_removes_and_reports() {
        let mut fb = Fiber::new(4);
        for c in 0..4 {
            fb.insert(c, Payload::Value(c as f64));
        }
        let removed = fb.retain(|c, _| c % 2 == 0);
        assert_eq!(removed, 2);
        assert_eq!(fb.coords(), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_bounds_panics() {
        let mut fb = Fiber::new(2);
        fb.insert(2, Payload::Value(1.0));
    }

    #[test]
    fn display_nonempty() {
        let mut fb = Fiber::new(4);
        fb.insert(1, Payload::Value(2.5));
        assert_eq!(fb.to_string(), "{1:2.5}");
    }
}
