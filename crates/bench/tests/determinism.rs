//! The engine's determinism guarantee: sweeps fanned out across the worker
//! pool, with memoization enabled, produce results identical to the
//! single-threaded uncached baseline — for any thread count.

use hl_bench::{fig15_points, run_synthetic_sweep_with, SweepContext};
use hl_models::zoo;
use hl_sim::engine::Engine;

/// The full Fig. 13 design × degree grid: engine output at several thread
/// counts must equal the serial baseline exactly (cycles, every energy
/// component, names — [`hl_sim::EvalResult`] equality is structural).
#[test]
fn synthetic_grid_engine_equals_serial_baseline() {
    let serial = run_synthetic_sweep_with(&SweepContext::serial_baseline());
    assert_eq!(serial.len(), 12, "3 × 4 degree grid");
    for threads in [1, 2, 4, 8] {
        let ctx = SweepContext::with_engine(Engine::with_threads(threads));
        let parallel = run_synthetic_sweep_with(&ctx);
        assert_eq!(
            serial, parallel,
            "engine at {threads} threads diverged from the serial baseline"
        );
    }
}

/// The accuracy-surrogate path (weight synthesis, pruning, retention, all
/// memoized in engine mode) is deterministic too: Fig. 15 points for the
/// smallest model agree across the baseline and engine contexts, and
/// replaying on a warm cache changes nothing.
#[test]
fn fig15_points_engine_equals_serial_baseline() {
    let model = zoo::deit_small();
    let serial = fig15_points(&SweepContext::serial_baseline(), &model);
    assert!(!serial.is_empty());
    let ctx = SweepContext::with_engine(Engine::with_threads(4));
    let cold = fig15_points(&ctx, &model);
    assert_eq!(serial, cold, "cold engine run diverged");
    let warm = fig15_points(&ctx, &model);
    assert_eq!(serial, warm, "warm (memo-replay) run diverged");
    assert!(
        ctx.engine().eval_cache().hits() > 0,
        "warm run must replay from the evaluation memo"
    );
}
