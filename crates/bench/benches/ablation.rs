//! Ablation study of HighLight's design choices (DESIGN.md §7): each SAF is
//! switched off in turn and the resulting EDP on the 75%/50% synthetic
//! workload is printed once, then the ablated evaluations are benchmarked.
//!
//! The printed ratios quantify how much each modular SAF contributes:
//! Rank1 skipping, Rank0 skipping, and operand-B gating/compression.

use criterion::{criterion_group, criterion_main, Criterion};
use highlight_core::{HighLight, HighLightConfig};
use hl_bench::{operand_a_for, operand_b_for};
use hl_sim::{evaluate_best, Workload};
use std::hint::black_box;

fn variants() -> Vec<(&'static str, HighLight)> {
    vec![
        ("full", HighLight::default()),
        (
            "no-rank1-saf",
            HighLight::new(HighLightConfig {
                rank1_saf: false,
                ..HighLightConfig::default()
            }),
        ),
        (
            "no-rank0-saf",
            HighLight::new(HighLightConfig {
                rank0_saf: false,
                ..HighLightConfig::default()
            }),
        ),
        (
            "no-b-gating",
            HighLight::new(HighLightConfig {
                b_gating: false,
                ..HighLightConfig::default()
            }),
        ),
        (
            "all-safs-off",
            HighLight::new(HighLightConfig {
                rank1_saf: false,
                rank0_saf: false,
                b_gating: false,
                ..HighLightConfig::default()
            }),
        ),
    ]
}

fn print_ablation_table() {
    let w = Workload::synthetic(
        operand_a_for("HighLight", 0.75),
        operand_b_for("HighLight", 0.5),
    );
    let full = evaluate_best(&HighLight::default(), &w).unwrap();
    println!("\nHighLight SAF ablation on A 75% / B 50% (1024^3 GEMM):");
    println!(
        "{:>14} {:>12} {:>12} {:>12}",
        "variant", "speedup", "energy", "EDP vs full"
    );
    for (name, hl) in variants() {
        let r = evaluate_best(&hl, &w).unwrap();
        println!(
            "{:>14} {:>11.2}x {:>11.2}x {:>12.2}",
            name,
            full.cycles / r.cycles,
            r.energy_j() / full.energy_j(),
            r.edp() / full.edp()
        );
    }
    println!();
}

fn bench_ablations(c: &mut Criterion) {
    print_ablation_table();
    let w = Workload::synthetic(
        operand_a_for("HighLight", 0.75),
        operand_b_for("HighLight", 0.5),
    );
    for (name, hl) in variants() {
        c.bench_function(&format!("ablation/{name}"), |bench| {
            bench.iter(|| black_box(evaluate_best(&hl, &w)))
        });
    }
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
