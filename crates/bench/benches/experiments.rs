//! Criterion benches of the experiment harness itself: per-design analytical
//! evaluation and the full Fig. 13 sweep. These are the entry points each
//! table/figure binary calls, so their cost bounds experiment regeneration
//! time.

use criterion::{criterion_group, criterion_main, Criterion};
use hl_bench::{designs, operand_a_for, operand_b_for, run_synthetic_sweep};
use hl_sim::{evaluate_best, Workload};
use std::hint::black_box;

fn bench_design_evaluations(c: &mut Criterion) {
    for d in designs() {
        let w = Workload::synthetic(operand_a_for(d.name(), 0.75), operand_b_for(d.name(), 0.5));
        c.bench_function(&format!("evaluate/{}", d.name()), |bench| {
            bench.iter(|| black_box(evaluate_best(d.as_ref(), &w)))
        });
    }
}

fn bench_fig13_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("fig13-full", |bench| {
        bench.iter(|| black_box(run_synthetic_sweep()))
    });
    group.finish();
}

criterion_group!(benches, bench_design_evaluations, bench_fig13_sweep);
criterion_main!(benches);
