//! Criterion benches of the computational kernels underlying the
//! reproduction: reference GEMM, HSS sparsification, CP compression, the
//! functional micro-architecture simulator, and the balance model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hl_sim::balance::binomial_balance;
use hl_sim::micro::{MicroConfig, MicroSim};
use hl_sparsity::prune::{prune_hss, prune_unstructured};
use hl_sparsity::{Gh, HssPattern};
use hl_tensor::format::{HssCompressed, SparseB};
use hl_tensor::gen;
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let a = gen::random_unstructured(128, 128, 0.5, 1);
    let b = gen::random_dense(128, 128, 2);
    c.bench_function("gemm/reference-128", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
}

fn bench_prune(c: &mut Criterion) {
    let dense = gen::random_dense(128, 512, 3);
    let pattern = HssPattern::two_rank(Gh::new(4, 8), Gh::new(2, 4));
    c.bench_function("prune/hss-two-rank-128x512", |bench| {
        bench.iter(|| black_box(prune_hss(&dense, &pattern)))
    });
    c.bench_function("prune/unstructured-128x512", |bench| {
        bench.iter(|| black_box(prune_unstructured(&dense, 0.75)))
    });
}

fn bench_formats(c: &mut Criterion) {
    let pattern = [Gh::new(4, 8), Gh::new(2, 4)];
    let a = gen::random_hss(64, 512, &pattern, 4);
    c.bench_function("format/hss-encode-64x512", |bench| {
        bench.iter(|| black_box(HssCompressed::encode(&a, 8, 4)))
    });
    let encoded = HssCompressed::encode(&a, 8, 4);
    c.bench_function("format/hss-decode-64x512", |bench| {
        bench.iter(|| black_box(encoded.decode()))
    });
    let b = gen::random_unstructured(512, 64, 0.6, 5);
    c.bench_function("format/sparse-b-encode-512x64", |bench| {
        bench.iter(|| black_box(SparseB::encode(&b, 8, 4)))
    });
}

fn bench_micro_sim(c: &mut Criterion) {
    for (label, sparse_b) in [("dense-b", false), ("sparse-b", true)] {
        let cfg = MicroConfig::paper_downsized(4);
        let k = cfg.group_words() * 8;
        let a = gen::random_hss(16, k, &[cfg.rank1, cfg.rank0], 6);
        let b = if sparse_b {
            gen::random_unstructured(k, 16, 0.5, 7)
        } else {
            gen::random_dense(k, 16, 7)
        };
        c.bench_function(&format!("micro-sim/16x{k}x16-{label}"), |bench| {
            bench.iter_batched(
                || (a.clone(), b.clone()),
                |(a, b)| black_box(MicroSim::new(cfg).run(&a, &b, sparse_b)),
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_balance(c: &mut Criterion) {
    c.bench_function("balance/binomial-1024", |bench| {
        bench.iter(|| black_box(binomial_balance(1024, 0.25, 32)))
    });
}

criterion_group!(
    benches,
    bench_gemm,
    bench_prune,
    bench_formats,
    bench_micro_sim,
    bench_balance
);
criterion_main!(benches);
