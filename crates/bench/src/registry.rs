//! The workspace-wide named design registry.
//!
//! Every front-end that accepts a design *name* — the fig/table binaries,
//! the `hl-serve` HTTP API, the `hl-client` CLI — resolves it through this
//! one fallible registry instead of hand-rolled `match`/`panic!` string
//! dispatch. [`DesignId`] is the parsed identity (so downstream `match`es
//! are exhaustive and cannot silently miss a design), [`design_by_name`]
//! the `Result`-returning constructor, and [`UnknownDesign`] the error a
//! server can map to a 4xx instead of a crash.

use std::fmt;
use std::str::FromStr;

use hl_sim::Accelerator;

/// Parsed identity of a registered design name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignId {
    /// Dense tensor-core baseline.
    Tc,
    /// Sparse-tensor-core baseline (single-sided structured).
    Stc,
    /// Dual-sided unstructured baseline.
    Dstc,
    /// Dual-sided structured baseline.
    S2ta,
    /// The HighLight accelerator (paper §5–6).
    HighLight,
    /// The dual-structured-sparse-operand variant (paper §7.5).
    Dsso,
}

impl DesignId {
    /// Every registered design, in the paper's presentation order
    /// (the five evaluated designs, then the DSSO variant).
    pub const ALL: [DesignId; 6] = [
        DesignId::Tc,
        DesignId::Stc,
        DesignId::Dstc,
        DesignId::S2ta,
        DesignId::HighLight,
        DesignId::Dsso,
    ];

    /// The canonical registry name (what [`Accelerator::name`] returns).
    pub fn name(self) -> &'static str {
        match self {
            DesignId::Tc => "TC",
            DesignId::Stc => "STC",
            DesignId::Dstc => "DSTC",
            DesignId::S2ta => "S2TA",
            DesignId::HighLight => "HighLight",
            DesignId::Dsso => "DSSO",
        }
    }

    /// Constructs the default-configured accelerator for this id,
    /// delegating to the owning crate's by-name constructor.
    pub fn build(self) -> Box<dyn Accelerator> {
        hl_baselines::baseline_by_name(self.name())
            .or_else(|| highlight_core::design_by_name(self.name()))
            .expect("every DesignId is constructible by its owning crate")
    }
}

impl fmt::Display for DesignId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for DesignId {
    type Err = UnknownDesign;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DesignId::ALL
            .into_iter()
            .find(|d| d.name() == s)
            .ok_or_else(|| UnknownDesign::new(s))
    }
}

/// A design name the registry does not know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownDesign {
    /// The rejected name.
    pub name: String,
}

impl UnknownDesign {
    /// An error for the rejected `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl fmt::Display for UnknownDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown design {} (known: ", self.name)?;
        for (i, d) in DesignId::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(d.name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for UnknownDesign {}

/// Constructs a default-configured design by its registry name.
///
/// # Errors
/// [`UnknownDesign`] when no crate registers the name.
pub fn design_by_name(name: &str) -> Result<Box<dyn Accelerator>, UnknownDesign> {
    name.parse::<DesignId>().map(DesignId::build)
}

/// Every registered design name, in [`DesignId::ALL`] order.
pub fn registered_names() -> Vec<&'static str> {
    DesignId::ALL.iter().map(|d| d.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_parses_builds_and_matches_its_name() {
        for id in DesignId::ALL {
            assert_eq!(id.name().parse::<DesignId>(), Ok(id));
            let built = id.build();
            assert_eq!(built.name(), id.name(), "constructor name must agree");
            let by_name = design_by_name(id.name()).expect("registered");
            assert_eq!(by_name.name(), id.name());
        }
    }

    #[test]
    fn unknown_names_are_rejected_with_the_known_list() {
        let err = design_by_name("TPU").unwrap_err();
        assert_eq!(err.name, "TPU");
        let msg = err.to_string();
        for name in registered_names() {
            assert!(msg.contains(name), "{msg} must list {name}");
        }
        assert!("".parse::<DesignId>().is_err());
        assert!(
            "tc".parse::<DesignId>().is_err(),
            "names are case-sensitive"
        );
    }
}
