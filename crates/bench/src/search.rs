//! The §7.1.2 co-design search: optimize a pruning configuration for a
//! model on a design under an accuracy-loss budget.
//!
//! The paper's flexibility claim is that HighLight lets the *pruning
//! configuration* be chosen per model against an accuracy target, where
//! single-degree designs (STC, S2TA) are stuck with their one pattern and
//! DSTC pays its dataflow tax at every degree. This module turns that
//! claim into an optimizer instead of the hand-picked Fig. 15 point list:
//!
//! 1. [`codesign_space`] enumerates an *abstract* candidate space — dense,
//!    a grid of unstructured degrees (up to and including the fully-pruned
//!    1.0 extreme), and 1-/2-/3-rank `G:H` grids (including `G == H` dense
//!    ranks and density → 0 stacks) plus the design's Fig. 15 configs;
//! 2. [`resolve_candidate`] performs the co-design step per candidate:
//!    abstract unstructured degrees resolve through the design's operand-A
//!    mapping (the same [`SparsityMapping`](hl_sim::network::SparsityMapping)
//!    policy model lowering uses), so a degree becomes the `G:H` pattern
//!    the design was built for and the surrogate scores exactly the
//!    configuration the hardware runs;
//! 3. [`SweepContext::codesign`] evaluates every resolved candidate in
//!    parallel across the engine pool — surrogate accuracy loss through
//!    the retention cache, whole-network EDP through the per-layer
//!    [`hl_sim::engine::EvalCache`] — and returns the supported points
//!    with their Pareto front over `(loss, EDP)` and the lowest-EDP point
//!    within the budget.
//!
//! Degenerate candidates (fully-pruned operands, patterns outside the
//! design's families) surface as unsupported counts, not worker panics —
//! the search is the forcing function for the pipeline's degenerate-config
//! hardening. Results are byte-identical for any `HL_THREADS` worker
//! count (deterministic enumeration + ordered collect + memo
//! transparency), the property the workspace search tests assert.

use hl_models::accuracy::PruningConfig;
use hl_models::DnnModel;
use hl_sim::pareto::pareto_front_flags;
use hl_sim::{Accelerator, OperandSparsity};
use hl_sparsity::{Gh, HssPattern};

use crate::registry::UnknownDesign;
use crate::{operand_a_for, try_fig15_configs, SweepContext};

/// One evaluated (supported) candidate of a co-design search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchPoint {
    /// The resolved pruning configuration this point evaluates.
    pub config: PruningConfig,
    /// Canonical report label ([`PruningConfig`]'s `Display`).
    pub label: String,
    /// Weight sparsity of the configuration (fraction).
    pub weight_sparsity: f64,
    /// Estimated accuracy loss (metric points).
    pub loss: f64,
    /// Whole-model EDP normalized to the dense TC.
    pub edp: f64,
    /// Whole-model energy in J.
    pub energy_j: f64,
    /// Whole-model latency in s.
    pub latency_s: f64,
    /// True when no other point is better in both loss and EDP.
    pub on_front: bool,
    /// True when `loss` stays within the query budget.
    pub within_budget: bool,
}

/// The outcome of one co-design search query.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Design name.
    pub design: String,
    /// Model name.
    pub model: String,
    /// Accuracy metric name.
    pub metric: &'static str,
    /// The accuracy-loss budget (metric points).
    pub budget: f64,
    /// Candidates evaluated (after resolution and dedup).
    pub candidates: usize,
    /// Candidates the design cannot run (degenerate density, pattern
    /// outside its families, dense layers on S2TA, …).
    pub unsupported: usize,
    /// The supported points, in enumeration order.
    pub points: Vec<SearchPoint>,
    /// Index (into `points`) of the lowest-EDP point within the budget.
    pub best: Option<usize>,
}

impl SearchOutcome {
    /// The Pareto-front points, in enumeration order.
    pub fn front(&self) -> Vec<&SearchPoint> {
        self.points.iter().filter(|p| p.on_front).collect()
    }

    /// The budget-best point, if any configuration fits the budget.
    pub fn best_point(&self) -> Option<&SearchPoint> {
        self.best.map(|i| &self.points[i])
    }
}

/// The abstract candidate space the co-design search walks for one design:
/// dense, unstructured degrees in 5% steps up to the fully-pruned 1.0
/// extreme, 1-rank `G:H` grids (`G ≤ 4`, `H ≤ 8`, including dense
/// `G == H`), 2-rank grids over the Table 3 neighbourhood, a few 3-rank
/// stacks (density down to 1/8 at group size 8), and the design's Fig. 15
/// configurations — deduplicated after [`resolve_candidate`], preserving
/// first-occurrence order.
///
/// The extremes are deliberate: density → 0 (unstructured 1.0), `G == H`
/// dense ranks, and deep rank stacks are exactly the degenerate inputs the
/// evaluation pipeline must reject as `Unsupported` rather than panic on.
///
/// # Errors
/// [`UnknownDesign`] when the name is not registered.
pub fn codesign_space(design: &str) -> Result<Vec<PruningConfig>, UnknownDesign> {
    let mut raw: Vec<PruningConfig> = vec![PruningConfig::Dense];
    for i in 1..=20 {
        raw.push(PruningConfig::Unstructured {
            sparsity: f64::from(i) * 0.05,
        });
    }
    for g in 1..=4u32 {
        for h in g..=8 {
            raw.push(PruningConfig::Hss(HssPattern::one_rank(Gh::new(g, h))));
        }
    }
    for rank1 in [(2, 4), (2, 6), (2, 8), (4, 4), (4, 6), (4, 8)] {
        for rank0 in [(1, 2), (1, 4), (2, 2), (2, 4)] {
            raw.push(PruningConfig::Hss(HssPattern::two_rank(
                Gh::new(rank1.0, rank1.1),
                Gh::new(rank0.0, rank0.1),
            )));
        }
    }
    for stack in [
        [(1, 2), (2, 4), (2, 4)],
        [(2, 2), (4, 8), (2, 4)],
        [(1, 2), (1, 2), (1, 2)],
        [(2, 2), (2, 2), (2, 4)],
    ] {
        raw.push(PruningConfig::Hss(HssPattern::new(
            stack.iter().map(|&(g, h)| Gh::new(g, h)).collect(),
        )));
    }
    raw.extend(try_fig15_configs(design)?);

    let mut seen = std::collections::BTreeSet::new();
    Ok(raw
        .into_iter()
        .map(|cfg| resolve_candidate(design, &cfg))
        .filter(|cfg| seen.insert(cfg.to_string()))
        .collect())
}

/// The co-design step for one abstract candidate: unstructured degrees
/// resolve through the design's operand-A mapping (§7.1.2 — the model is
/// pruned *to the pattern the design was built for* at that degree), so
/// the surrogate loss and the evaluated workload describe the same
/// configuration. Dense and explicit HSS candidates pass through.
///
/// # Panics
/// Panics on a name the [`crate::registry`] does not know (callers reach
/// this through [`codesign_space`], which validates the name first).
pub fn resolve_candidate(design: &str, cfg: &PruningConfig) -> PruningConfig {
    match cfg {
        PruningConfig::Unstructured { sparsity } => match operand_a_for(design, *sparsity) {
            OperandSparsity::Dense => PruningConfig::Dense,
            OperandSparsity::Unstructured { sparsity } => PruningConfig::Unstructured { sparsity },
            OperandSparsity::Hss(p) => PruningConfig::Hss(p),
        },
        other => other.clone(),
    }
}

impl SweepContext {
    /// Runs the §7.1.2 co-design search: evaluates every
    /// [`codesign_space`] candidate for `design` on `model` — surrogate
    /// accuracy loss plus whole-network EDP normalized to the dense TC —
    /// in parallel across the context's pool, and returns the supported
    /// points with their Pareto front and the lowest-EDP point whose loss
    /// stays within `budget` metric points.
    ///
    /// The outcome is byte-identical for any worker count, and repeated
    /// queries replay from the shared caches (per-layer eval memo +
    /// retention memo).
    ///
    /// # Panics
    /// Panics on a design name the [`crate::registry`] does not know;
    /// fallible front-ends use [`SweepContext::try_codesign`].
    pub fn codesign(
        &self,
        design: &dyn Accelerator,
        model: &DnnModel,
        budget: f64,
    ) -> SearchOutcome {
        self.try_codesign(design, model, budget)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`SweepContext::codesign`].
    ///
    /// # Errors
    /// [`UnknownDesign`] when the design name is not registered.
    pub fn try_codesign(
        &self,
        design: &dyn Accelerator,
        model: &DnnModel,
        budget: f64,
    ) -> Result<SearchOutcome, UnknownDesign> {
        let candidates = codesign_space(design.name())?;
        let tc = crate::design_by_name("TC").expect("TC is registered");
        let tc_edp = self
            .eval_network(tc.as_ref(), model, &PruningConfig::Dense)
            .edp()
            .expect("TC runs dense");

        // One cell per candidate: loss + network aggregates, fanned out
        // across the pool (nested layer fan-out runs inline on workers).
        // Neighboring candidates differ only in operand A's descriptor, so
        // the design fingerprint is hoisted out of the whole grid.
        let fingerprint = hl_sim::engine::Engine::fingerprint(design);
        let evals = self.map(&candidates, |cfg| {
            let loss = self.accuracy_loss(model, cfg);
            let eval = self.eval_network_keyed(design, &fingerprint, model, cfg);
            match (eval.edp(), eval.energy_j(), eval.latency_s()) {
                (Some(edp), Some(energy_j), Some(latency_s)) => {
                    Some((loss, edp, energy_j, latency_s))
                }
                _ => None,
            }
        });

        let mut points: Vec<SearchPoint> = candidates
            .iter()
            .zip(evals)
            .filter_map(|(cfg, eval)| {
                let (loss, edp, energy_j, latency_s) = eval?;
                Some(SearchPoint {
                    config: cfg.clone(),
                    label: cfg.to_string(),
                    weight_sparsity: cfg.sparsity(),
                    loss,
                    edp: edp / tc_edp,
                    energy_j,
                    latency_s,
                    on_front: false,
                    within_budget: loss <= budget,
                })
            })
            .collect();
        let flags = pareto_front_flags(&points, |p| (p.loss, p.edp));
        for (p, on) in points.iter_mut().zip(flags) {
            p.on_front = on;
        }
        // Budget best: lowest EDP within budget, ties to lower loss then
        // enumeration order — always a frontier point when one exists.
        let best = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.within_budget)
            .min_by(|(ia, a), (ib, b)| {
                a.edp
                    .total_cmp(&b.edp)
                    .then(a.loss.total_cmp(&b.loss))
                    .then(ia.cmp(ib))
            })
            .map(|(i, _)| i);

        Ok(SearchOutcome {
            design: design.name().to_string(),
            model: model.name.clone(),
            metric: model.metric,
            budget,
            candidates: candidates.len(),
            unsupported: candidates.len() - points.len(),
            points,
            best,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_models::zoo;
    use hl_sim::pareto::dominates;

    #[test]
    fn space_walks_the_degenerate_extremes() {
        let space = codesign_space("DSTC").unwrap();
        // The fully-pruned extreme survives resolution on unstructured
        // hardware — the forcing function for the density-0 hardening.
        assert!(space
            .iter()
            .any(|c| matches!(c, PruningConfig::Unstructured { sparsity } if *sparsity == 1.0)));
        // Deep (3-rank) stacks and dense G==H ranks are present.
        assert!(space
            .iter()
            .any(|c| matches!(c, PruningConfig::Hss(p) if p.rank_count() == 3)));
        // Labels are unique after dedup.
        let mut labels: Vec<String> = space.iter().map(|c| c.to_string()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), space.len());
        assert!(codesign_space("TPU").is_err());
    }

    #[test]
    fn resolution_codesigns_unstructured_degrees() {
        // On HighLight an abstract 75% degree becomes the family pattern…
        let cfg = resolve_candidate("HighLight", &PruningConfig::Unstructured { sparsity: 0.75 });
        assert!(matches!(&cfg, PruningConfig::Hss(p) if (p.density_f64() - 0.25).abs() < 1e-12));
        // …while DSTC keeps it unstructured and degree 0 is dense.
        assert!(matches!(
            resolve_candidate("DSTC", &PruningConfig::Unstructured { sparsity: 0.75 }),
            PruningConfig::Unstructured { .. }
        ));
        assert_eq!(
            resolve_candidate("STC", &PruningConfig::Unstructured { sparsity: 0.0 }),
            PruningConfig::Dense
        );
    }

    #[test]
    fn search_front_is_nondominated_and_best_fits_budget() {
        let ctx = SweepContext::new();
        let model = zoo::deit_small();
        let design = crate::design_by_name("HighLight").unwrap();
        let out = ctx.codesign(design.as_ref(), &model, 0.5);
        assert!(!out.points.is_empty());
        assert_eq!(out.candidates - out.unsupported, out.points.len());
        let front = out.front();
        assert!(!front.is_empty());
        for a in &front {
            for b in &out.points {
                assert!(
                    !dominates((b.loss, b.edp), (a.loss, a.edp)),
                    "front point {} dominated by {}",
                    a.label,
                    b.label
                );
            }
        }
        let best = out.best_point().expect("dense always fits the budget");
        assert!(best.within_budget && best.on_front);
        for p in &out.points {
            if p.within_budget {
                assert!(best.edp <= p.edp, "{} beats best", p.label);
            }
        }
    }

    #[test]
    fn degenerate_candidates_surface_as_unsupported_not_panics() {
        let ctx = SweepContext::new();
        let model = zoo::transformer_big();
        for name in ["DSTC", "S2TA", "DSSO"] {
            let design = crate::design_by_name(name).unwrap();
            let out = ctx.codesign(design.as_ref(), &model, 1.0);
            assert!(out.unsupported > 0, "{name} must reject some extremes");
        }
    }
}
