//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `src/bin/*.rs` binary reproduces one table or figure (see
//! `DESIGN.md` §4 for the index); this library holds the shared machinery:
//!
//! - [`designs`]: the evaluated design registry (TC, STC, DSTC, S2TA,
//!   HighLight) in the paper's presentation order;
//! - [`operand_a_for`] / [`operand_b_for`]: the co-design step — each design
//!   is handed a workload *in the sparsity pattern it was designed for* at
//!   the requested degree (§7.1.2: models are structured-pruned for
//!   STC/S2TA/HighLight and unstructured-pruned for DSTC);
//! - [`SweepContext`]: the evaluation front-end every sweep runs through.
//!   [`SweepContext::new`] uses the parallel engine
//!   ([`hl_sim::engine`]) — `(design, workload)` cells fan out across a
//!   worker pool (`HL_THREADS` override) and repeated pure evaluations
//!   (accelerator results, surrogate weight synthesis, per-layer
//!   retention) are memoized. [`SweepContext::serial_baseline`] runs the
//!   same code single-threaded and uncached — the reference the engine is
//!   benchmarked against (`bench_sweeps`) and must match byte-for-byte;
//! - [`run_synthetic_sweep`]: the Fig. 13 sweep (A ∈ {0, 50, 75}%,
//!   B ∈ {0, 25, 50, 75}% on 1024³ GEMMs), a [`SweepGrid`] under the hood;
//! - [`eval_model`] / [`SweepContext::eval_network`]: whole-DNN evaluation
//!   through the [`hl_sim::network`] subsystem — models lower to a
//!   [`NetworkWorkload`] via the design's [`DesignMapping`] and layers fan
//!   out across the engine pool, hitting the eval cache individually —
//!   for Figs. 2 and 15;
//! - [`fig2_data`] / [`fig15_points`]: the Fig. 2 / Fig. 15 sweep cores,
//!   shared by the figure binaries and the `bench_sweeps` perf harness;
//! - [`search`]: the §7.1.2 co-design search — [`SweepContext::codesign`]
//!   optimizes a pruning configuration for a `(design, model)` pair under
//!   an accuracy-loss budget, returning the Pareto front over
//!   `(loss, EDP)` (consumed by the `codesign` binary, the `hl-serve`
//!   `POST /search` endpoint, and the `hl-client search` subcommand);
//! - report helpers that print aligned tables and persist them under
//!   `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod search;
pub mod tables;

use std::fs;
use std::path::{Path, PathBuf};

pub use registry::{design_by_name, registered_names, DesignId, UnknownDesign};
pub use search::{codesign_space, SearchOutcome, SearchPoint};

use highlight_core::HighLight;
use hl_baselines::{Dstc, S2ta, Stc, Tc};
use hl_models::accuracy::{accuracy_loss, accuracy_loss_cached, PruningConfig, RetentionCache};
use hl_models::DnnModel;
use hl_sim::engine::{Engine, SweepGrid};
use hl_sim::network::{NetworkEval, NetworkWorkload, SparsityMapping};
use hl_sim::{evaluate_best, Accelerator, EvalResult, OperandSparsity, Unsupported, Workload};
use hl_sparsity::families::{highlight_a, HssFamily};
use hl_sparsity::{Gh, HssPattern};

/// The evaluated designs in the paper's presentation order.
pub fn designs() -> Vec<Box<dyn Accelerator>> {
    vec![
        Box::new(Tc::default()),
        Box::new(Stc::default()),
        Box::new(Dstc::default()),
        Box::new(S2ta::default()),
        Box::new(HighLight::default()),
    ]
}

/// Design names in registry order.
pub fn design_names() -> Vec<String> {
    designs().iter().map(|d| d.name().to_string()).collect()
}

/// Maps a weight-sparsity degree to the operand A descriptor each design is
/// co-designed with (§7.1.2).
///
/// # Panics
/// Panics on a name the [`registry`] does not know; fallible front-ends
/// (the `hl-serve` API) use [`try_operand_a_for`].
pub fn operand_a_for(design: &str, sparsity: f64) -> OperandSparsity {
    try_operand_a_for(design, sparsity).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`operand_a_for`].
///
/// # Errors
/// [`UnknownDesign`] when the name is not registered.
pub fn try_operand_a_for(design: &str, sparsity: f64) -> Result<OperandSparsity, UnknownDesign> {
    let id: DesignId = design.parse()?;
    if sparsity == 0.0 {
        return Ok(OperandSparsity::Dense);
    }
    Ok(match id {
        DesignId::Tc | DesignId::Dstc => OperandSparsity::unstructured(sparsity),
        DesignId::Stc => {
            // {G≤2}:4 — 50% runs 2:4, anything sparser runs 1:4.
            let g = if sparsity <= 0.5 { 2 } else { 1 };
            OperandSparsity::Hss(HssPattern::one_rank(Gh::new(g, 4)))
        }
        DesignId::S2ta => {
            let g = ((1.0 - sparsity) * 8.0).round().max(1.0) as u32;
            OperandSparsity::Hss(HssPattern::one_rank(Gh::new(g.min(4), 8)))
        }
        DesignId::HighLight | DesignId::Dsso => {
            OperandSparsity::Hss(highlight_a().closest_to_density(1.0 - sparsity))
        }
    })
}

/// The [`SparsityMapping`] of one registered design: how the §7.1.2
/// co-design step resolves abstract weight/activation degrees into the
/// operand descriptors that design was built for. This is what model
/// lowering ([`DnnModel::lower`]) runs through, so the network subsystem
/// stays design-agnostic while the registry owns the policy.
#[derive(Debug, Clone)]
pub struct DesignMapping {
    name: &'static str,
}

impl DesignMapping {
    /// The mapping for a registered design name.
    ///
    /// # Errors
    /// [`UnknownDesign`] when the name is not registered (which makes the
    /// later per-degree calls infallible).
    pub fn new(design: &str) -> Result<Self, UnknownDesign> {
        let id: DesignId = design.parse()?;
        Ok(Self { name: id.name() })
    }

    /// The design name the mapping co-designs for.
    pub fn design(&self) -> &str {
        self.name
    }
}

impl SparsityMapping for DesignMapping {
    fn operand_a(&self, weight_sparsity: f64) -> OperandSparsity {
        operand_a_for(self.name, weight_sparsity)
    }

    fn operand_b(&self, activation_sparsity: f64) -> OperandSparsity {
        operand_b_for(self.name, activation_sparsity)
    }
}

/// Maps an activation-sparsity degree to the operand B descriptor each
/// design consumes.
pub fn operand_b_for(design: &str, sparsity: f64) -> OperandSparsity {
    if sparsity == 0.0 {
        return OperandSparsity::Dense;
    }
    match design {
        "S2TA" => {
            // Dynamic structured activation pruning to {G≤8}:8.
            let g = ((1.0 - sparsity) * 8.0).round().clamp(1.0, 8.0) as u32;
            OperandSparsity::Hss(HssPattern::one_rank(Gh::new(g, 8)))
        }
        "DSSO" => {
            // §7.5: B must be Rank1-structured `C1(2:{2≤H≤8})→C0(dense)`.
            // Exploit the sparsest family member whose sparsity the
            // activations actually reach (never claim zeros that are not
            // there); low degrees fall back to the dense 2:2 member.
            let target = 1.0 - sparsity;
            let p = hl_sparsity::families::dsso_b()
                .patterns()
                .into_iter()
                .filter(|p| p.density_f64() >= target - 1e-12)
                .min_by(|a, b| a.density().cmp(&b.density()))
                .expect("dsso_b has a dense member");
            OperandSparsity::Hss(p)
        }
        _ => OperandSparsity::unstructured(sparsity),
    }
}

/// The evaluation front-end shared by every sweep: either the parallel
/// engine with memoized pure evaluations, or the uncached single-threaded
/// baseline. Both modes run the *same* sweep code and produce identical
/// results (asserted by the `determinism` integration tests); the engine is
/// just faster.
pub struct SweepContext {
    engine: Engine,
    retention: RetentionCache,
    cached: bool,
}

impl Default for SweepContext {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepContext {
    /// An engine-backed context sized by `HL_THREADS` / available
    /// parallelism, with memoization enabled.
    pub fn new() -> Self {
        Self::with_engine(Engine::new())
    }

    /// An engine-backed context with an explicit worker pool.
    pub fn with_engine(engine: Engine) -> Self {
        Self {
            engine,
            retention: RetentionCache::new(),
            cached: true,
        }
    }

    /// The single-threaded, *uncached* reference: exactly the work the
    /// pre-engine harness performed. Used as the timing baseline and the
    /// determinism oracle.
    pub fn serial_baseline() -> Self {
        Self {
            engine: Engine::serial(),
            retention: RetentionCache::new(),
            cached: false,
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// `(hits, misses)` of the retention (surrogate accuracy) cache —
    /// surfaced by `hl-serve`'s metrics alongside the eval cache.
    pub fn retention_stats(&self) -> (u64, u64) {
        self.retention.stats()
    }

    /// Maps `f` over `items` on the context's pool, results in input order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.engine.map(items, f)
    }

    /// `evaluate_best` through the context (memoized in engine mode).
    ///
    /// # Errors
    /// Exactly the errors of [`evaluate_best`].
    pub fn evaluate_best(
        &self,
        design: &dyn Accelerator,
        workload: &Workload,
    ) -> Result<EvalResult, Unsupported> {
        if self.cached {
            self.engine.evaluate_best(design, workload)
        } else {
            evaluate_best(design, workload)
        }
    }

    /// Surrogate accuracy loss through the context (memoized in engine
    /// mode).
    pub fn accuracy_loss(&self, model: &DnnModel, config: &PruningConfig) -> f64 {
        if self.cached {
            accuracy_loss_cached(model, config, &self.retention)
        } else {
            accuracy_loss(model, config)
        }
    }

    /// Lowers `model` for `design` (prunable layers at the design's
    /// weight pattern, via [`DesignMapping`]) into the
    /// [`hl_sim::network`] IR.
    ///
    /// # Panics
    /// Panics when the design name is not in the [`registry`].
    pub fn lower_model(
        design: &dyn Accelerator,
        model: &DnnModel,
        weights: &PruningConfig,
    ) -> NetworkWorkload {
        let mapping = DesignMapping::new(design.name()).unwrap_or_else(|e| panic!("{e}"));
        model.lower(weights, &mapping)
    }

    /// Evaluates an already-lowered [`NetworkWorkload`] through the
    /// context: layers fan out across the engine pool, each hitting the
    /// eval cache individually (inline and uncached in baseline mode).
    pub fn evaluate_network(
        &self,
        design: &dyn Accelerator,
        network: &NetworkWorkload,
    ) -> NetworkEval {
        if self.cached {
            self.engine.evaluate_network(design, network)
        } else {
            hl_sim::network::evaluate_network(design, network)
        }
    }

    /// [`SweepContext::eval_network`] with a hoisted design fingerprint:
    /// sweep loops evaluating many configurations on one design compute
    /// [`Engine::fingerprint`] once and reuse it for every point, so
    /// neighboring points only re-key the operand descriptors that
    /// changed. The baseline mode ignores the fingerprint (it keys
    /// nothing).
    pub fn eval_network_keyed(
        &self,
        design: &dyn Accelerator,
        fingerprint: &hl_sim::engine::DesignFingerprint,
        model: &DnnModel,
        weights: &PruningConfig,
    ) -> NetworkEval {
        let network = Self::lower_model(design, model, weights);
        if self.cached {
            self.engine
                .evaluate_network_keyed(design, fingerprint, &network)
        } else {
            hl_sim::network::evaluate_network(design, &network)
        }
    }

    /// Whole-model evaluation through [`hl_sim::network`]: the model
    /// lowers to a [`NetworkWorkload`] and runs through
    /// [`SweepContext::evaluate_network`]. Unsupported layers are
    /// reported per layer in the returned [`NetworkEval`]; aggregates
    /// are `None` when any layer cannot run.
    pub fn eval_network(
        &self,
        design: &dyn Accelerator,
        model: &DnnModel,
        weights: &PruningConfig,
    ) -> NetworkEval {
        self.evaluate_network(design, &Self::lower_model(design, model, weights))
    }

    /// The per-design pruning configuration used for accuracy-matched
    /// comparisons (Fig. 2): the most aggressive config whose surrogate
    /// loss stays within `budget` metric points.
    ///
    /// # Panics
    /// Panics on a name the [`registry`] does not know; fallible
    /// front-ends use [`SweepContext::try_accuracy_matched_config`].
    pub fn accuracy_matched_config(
        &self,
        design: &str,
        model: &DnnModel,
        budget: f64,
    ) -> Option<PruningConfig> {
        self.try_accuracy_matched_config(design, model, budget)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`SweepContext::accuracy_matched_config`].
    ///
    /// # Errors
    /// [`UnknownDesign`] when the name is not registered.
    pub fn try_accuracy_matched_config(
        &self,
        design: &str,
        model: &DnnModel,
        budget: f64,
    ) -> Result<Option<PruningConfig>, UnknownDesign> {
        let id: DesignId = design.parse()?;
        Ok(match id {
            DesignId::Tc => Some(PruningConfig::Dense),
            DesignId::Stc => {
                let p = PruningConfig::Hss(HssPattern::one_rank(Gh::new(2, 4)));
                (self.accuracy_loss(model, &p) <= budget).then_some(p)
            }
            DesignId::Dstc => {
                let mut best = None;
                for i in 1..=18 {
                    let s = f64::from(i) * 0.05;
                    let p = PruningConfig::Unstructured { sparsity: s };
                    if self.accuracy_loss(model, &p) <= budget {
                        best = Some(p);
                    }
                }
                best
            }
            DesignId::HighLight | DesignId::Dsso => {
                self.best_in_family(&highlight_a(), model, budget)
            }
            DesignId::S2ta => {
                let fam = hl_sparsity::families::s2ta_a();
                self.best_in_family(&fam, model, budget)
            }
        })
    }

    fn best_in_family(
        &self,
        family: &HssFamily,
        model: &DnnModel,
        budget: f64,
    ) -> Option<PruningConfig> {
        let mut best: Option<(f64, PruningConfig)> = None;
        let mut seen = std::collections::BTreeSet::new();
        for p in family.patterns() {
            if !seen.insert(p.density()) {
                continue;
            }
            let cfg = PruningConfig::Hss(p.clone());
            let loss = self.accuracy_loss(model, &cfg);
            if loss <= budget {
                let s = p.sparsity_f64();
                if best.as_ref().is_none_or(|(bs, _)| s > *bs) {
                    best = Some((s, cfg));
                }
            }
        }
        best.map(|(_, cfg)| cfg)
    }
}

/// One point of the Fig. 13 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Operand A sparsity degree.
    pub a_sparsity: f64,
    /// Operand B sparsity degree.
    pub b_sparsity: f64,
    /// Per-design results in [`designs`] order; `None` = unsupported.
    pub results: Vec<Option<EvalResult>>,
}

/// The Fig. 13 sparsity degrees: A ∈ {0, 50, 75}%, B ∈ {0, 25, 50, 75}%.
pub fn fig13_degrees() -> (Vec<f64>, Vec<f64>) {
    (vec![0.0, 0.5, 0.75], vec![0.0, 0.25, 0.5, 0.75])
}

/// Runs the synthetic 1024³ GEMM sweep across all designs (§7.2) on the
/// default engine-backed context.
pub fn run_synthetic_sweep() -> Vec<SweepPoint> {
    run_synthetic_sweep_with(&SweepContext::new())
}

/// [`run_synthetic_sweep`] on an explicit context: the sweep is a
/// [`SweepGrid`] of co-designed `(design, workload)` cells fanned out
/// across the context's pool.
pub fn run_synthetic_sweep_with(ctx: &SweepContext) -> Vec<SweepPoint> {
    let designs = designs();
    let (a_degrees, b_degrees) = fig13_degrees();
    let mut grid = SweepGrid::new(&designs);
    let mut degrees = Vec::new();
    for &sa in &a_degrees {
        for &sb in &b_degrees {
            degrees.push((sa, sb));
            grid.push_row_with(|d| {
                Workload::synthetic(operand_a_for(d.name(), sa), operand_b_for(d.name(), sb))
            });
        }
    }
    // Both modes sweep exactly the cells the grid declared; only the
    // evaluation path (pool + memo vs plain inline) differs.
    let rows = if ctx.cached {
        grid.run(ctx.engine())
    } else {
        grid.run_serial()
    };
    degrees
        .into_iter()
        .zip(rows)
        .map(|((sa, sb), results)| SweepPoint {
            a_sparsity: sa,
            b_sparsity: sb,
            results,
        })
        .collect()
}

/// Evaluates a DNN on a design with the given weight-pruning config for
/// prunable layers, through the [`hl_sim::network`] subsystem.
///
/// Free-function form of [`SweepContext::eval_network`] on the uncached
/// serial baseline.
pub fn eval_model(
    design: &dyn Accelerator,
    model: &DnnModel,
    weights: &PruningConfig,
) -> NetworkEval {
    SweepContext::serial_baseline().eval_network(design, model, weights)
}

/// The per-design pruning configuration used for accuracy-matched
/// comparisons (Fig. 2): the most aggressive config whose surrogate loss
/// stays within `budget` metric points.
///
/// Free-function form of [`SweepContext::accuracy_matched_config`] on the
/// uncached serial baseline.
pub fn accuracy_matched_config(
    design: &str,
    model: &DnnModel,
    budget: f64,
) -> Option<PruningConfig> {
    SweepContext::serial_baseline().accuracy_matched_config(design, model, budget)
}

/// Outcome of one Fig. 2 design row.
#[derive(Debug, Clone, PartialEq)]
pub enum Fig2Outcome {
    /// No pruning configuration stays within the accuracy budget.
    NoConfig,
    /// A configuration exists but the design cannot run the model.
    Unsupported,
    /// The accuracy-matched evaluation.
    Matched {
        /// Whole-model EDP normalized to the dense TC.
        edp_ratio: f64,
        /// Weight sparsity of the matched configuration (fraction).
        weight_sparsity: f64,
        /// Estimated accuracy loss of the matched configuration.
        loss: f64,
    },
}

/// One Fig. 2 design row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Row {
    /// Design name.
    pub design: String,
    /// Row outcome.
    pub outcome: Fig2Outcome,
}

/// Fig. 2 results for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Model {
    /// Model name.
    pub model: String,
    /// Accuracy metric name.
    pub metric: &'static str,
    /// The common accuracy-loss budget (2:4 loss + 0.4 points).
    pub budget: f64,
    /// Rows for TC / STC / DSTC / HighLight, in registry order.
    pub rows: Vec<Fig2Row>,
}

/// The Fig. 2 sweep core: accuracy-matched whole-model EDP of TC / STC /
/// DSTC / HighLight on Transformer-Big and ResNet50, normalized to the
/// dense TC. Design rows fan out across the context's pool.
pub fn fig2_data(ctx: &SweepContext) -> Vec<Fig2Model> {
    let mut out = Vec::new();
    for model in [
        hl_models::zoo::transformer_big(),
        hl_models::zoo::resnet50(),
    ] {
        let budget = ctx.accuracy_loss(
            &model,
            &PruningConfig::Hss(HssPattern::one_rank(Gh::new(2, 4))),
        ) + 0.4;
        let tc_edp = {
            let tc = &designs()[0];
            ctx.eval_network(tc.as_ref(), &model, &PruningConfig::Dense)
                .edp()
                .expect("TC runs dense")
        };
        let fig2_designs: Vec<Box<dyn Accelerator>> = designs()
            .into_iter()
            .filter(|d| matches!(d.name(), "TC" | "STC" | "DSTC" | "HighLight"))
            .collect();
        let rows = ctx.map(&fig2_designs, |d| {
            let outcome = match ctx.accuracy_matched_config(d.name(), &model, budget) {
                None => Fig2Outcome::NoConfig,
                Some(cfg) => {
                    let loss = ctx.accuracy_loss(&model, &cfg);
                    match ctx.eval_network(d.as_ref(), &model, &cfg).edp() {
                        None => Fig2Outcome::Unsupported,
                        Some(edp) => Fig2Outcome::Matched {
                            edp_ratio: edp / tc_edp,
                            weight_sparsity: cfg.sparsity(),
                            loss,
                        },
                    }
                }
            };
            Fig2Row {
                design: d.name().to_string(),
                outcome,
            }
        });
        out.push(Fig2Model {
            model: model.name.clone(),
            metric: model.metric,
            budget,
            rows,
        });
    }
    out
}

/// One Fig. 15 trade-off point.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Design name.
    pub design: String,
    /// Human-readable pruning-configuration label.
    pub config: String,
    /// Estimated accuracy loss (metric points).
    pub loss: f64,
    /// Whole-model EDP normalized to the dense TC.
    pub edp: f64,
}

/// The pruning configurations each design contributes to Fig. 15.
///
/// # Panics
/// Panics on a name the [`registry`] does not know; fallible front-ends
/// use [`try_fig15_configs`].
pub fn fig15_configs(design: &str) -> Vec<PruningConfig> {
    try_fig15_configs(design).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`fig15_configs`].
///
/// # Errors
/// [`UnknownDesign`] when the name is not registered.
pub fn try_fig15_configs(design: &str) -> Result<Vec<PruningConfig>, UnknownDesign> {
    let id: DesignId = design.parse()?;
    Ok(match id {
        DesignId::Tc => vec![PruningConfig::Dense],
        DesignId::Stc => vec![
            PruningConfig::Hss(HssPattern::one_rank(Gh::new(2, 4))),
            PruningConfig::Hss(HssPattern::one_rank(Gh::new(1, 4))),
        ],
        DesignId::Dstc => (1..=7)
            .map(|i| PruningConfig::Unstructured {
                sparsity: f64::from(i) * 0.125,
            })
            .collect(),
        DesignId::S2ta => hl_sparsity::families::s2ta_a()
            .patterns()
            .into_iter()
            .map(PruningConfig::Hss)
            .collect(),
        // DSSO shares HighLight's operand-A family (§7.5), as in
        // `operand_a_for` / `accuracy_matched_config`.
        DesignId::HighLight | DesignId::Dsso => {
            let mut seen = std::collections::BTreeSet::new();
            highlight_a()
                .patterns()
                .into_iter()
                .filter(|p| seen.insert(p.density()))
                .map(PruningConfig::Hss)
                .collect()
        }
    })
}

/// The Fig. 15 sweep core for one model: every `(design, config)` EDP /
/// accuracy-loss point (EDP normalized to the dense TC), in registry-then-
/// config order. Cells fan out across the context's pool.
pub fn fig15_points(ctx: &SweepContext, model: &DnnModel) -> Vec<ParetoPoint> {
    let designs = designs();
    let tc_edp = ctx
        .eval_network(designs[0].as_ref(), model, &PruningConfig::Dense)
        .edp()
        .expect("TC runs dense");
    let cells: Vec<(usize, PruningConfig)> = designs
        .iter()
        .enumerate()
        .flat_map(|(i, d)| fig15_configs(d.name()).into_iter().map(move |cfg| (i, cfg)))
        .collect();
    ctx.map(&cells, |(i, cfg)| {
        let d = designs[*i].as_ref();
        let loss = ctx.accuracy_loss(model, cfg);
        ctx.eval_network(d, model, cfg)
            .edp()
            .map(|edp| ParetoPoint {
                design: d.name().to_string(),
                config: cfg.to_string(),
                loss,
                edp: edp / tc_edp,
            })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Formats a ratio as a fixed-width cell, `n/a` when absent.
pub fn cell(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:10.3}"),
        None => format!("{:>10}", "n/a"),
    }
}

/// Environment variable naming the directory benchmark JSON artifacts
/// (`BENCH_sweeps.json`, `BENCH_serve.json`) are written into.
pub const HL_BENCH_OUT_ENV: &str = "HL_BENCH_OUT";

/// Resolves where a benchmark artifact named `file` should be written:
/// inside the `HL_BENCH_OUT` directory when the variable is set (created
/// if missing), otherwise the current working directory.
pub fn bench_out_path(file: &str) -> PathBuf {
    match std::env::var(HL_BENCH_OUT_ENV) {
        Ok(dir) if !dir.trim().is_empty() => {
            let dir = PathBuf::from(dir);
            let _ = fs::create_dir_all(&dir);
            dir.join(file)
        }
        _ => PathBuf::from(file),
    }
}

/// Writes a report under `results/` (best-effort; also returns the text so
/// binaries can print it).
pub fn persist(name: &str, text: &str) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let _ = fs::write(dir.join(name), text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_models::zoo;

    #[test]
    fn registry_order_matches_paper() {
        assert_eq!(
            design_names(),
            vec!["TC", "STC", "DSTC", "S2TA", "HighLight"]
        );
    }

    #[test]
    fn operand_mapping_densities_match_degrees() {
        for design in design_names() {
            for s in [0.5, 0.75] {
                let a = operand_a_for(&design, s);
                assert!(
                    (a.sparsity() - s).abs() < 1e-9,
                    "{design} A at {s}: got {}",
                    a.sparsity()
                );
            }
            let b = operand_b_for(&design, 0.25);
            assert!((b.sparsity() - 0.25).abs() < 1e-9, "{design} B at 0.25");
        }
    }

    #[test]
    fn sweep_covers_all_degrees_and_marks_s2ta_dense_unsupported() {
        let sweep = run_synthetic_sweep();
        assert_eq!(sweep.len(), 12);
        let names = design_names();
        let s2ta = names.iter().position(|n| n == "S2TA").unwrap();
        for p in &sweep {
            if p.a_sparsity == 0.0 {
                assert!(p.results[s2ta].is_none(), "S2TA must fail on dense A");
            } else {
                assert!(p.results[s2ta].is_some());
            }
            // TC, STC, DSTC, HighLight always run.
            for (i, n) in names.iter().enumerate() {
                if n != "S2TA" {
                    assert!(p.results[i].is_some(), "{n} must run at every point");
                }
            }
        }
    }

    #[test]
    fn model_eval_runs_on_all_designs_for_resnet() {
        let model = zoo::resnet50();
        for d in designs() {
            let cfg = accuracy_matched_config(d.name(), &model, 1.0);
            if let Some(cfg) = cfg {
                let r = eval_model(d.as_ref(), &model, &cfg);
                assert!(r.supported(), "{} failed on ResNet50", d.name());
                assert_eq!(r.layers.len(), model.layers.len());
                assert!(r.edp().unwrap() > 0.0);
                let u = r.utilization().unwrap();
                assert!(u > 0.0 && u <= 1.0, "{} utilization {u}", d.name());
            }
        }
    }

    #[test]
    fn s2ta_reports_unsupported_dense_layers_per_layer() {
        let deit = zoo::deit_small();
        let s2ta = S2ta::default();
        let cfg = accuracy_matched_config("S2TA", &deit, 2.0);
        if let Some(cfg) = cfg {
            let r = eval_model(&s2ta, &deit, &cfg);
            assert!(!r.supported());
            assert_eq!(r.edp(), None, "aggregates are None on partial support");
            // The dense QKV projections fail; the pruned FFN layers still
            // evaluate (per-layer propagation, not whole-model bailout).
            for layer in &r.layers {
                let spec = deit.layers.iter().find(|l| l.name == layer.name()).unwrap();
                assert_eq!(layer.outcome.is_ok(), spec.prunable, "{}", layer.name());
            }
        }
    }

    // Serial-vs-engine network equality is covered (across all zoo
    // models, with warm-replay checks) by tests/network.rs at the
    // workspace level.

    #[test]
    fn dsso_b_mapping_codesigns_to_its_family() {
        // 60% activation sparsity is exactly the 2:5 Rank1 member.
        let b = operand_b_for("DSSO", 0.6);
        assert!(b.is_structured());
        assert!((b.density() - 0.4).abs() < 1e-12);
        // Low degrees cannot be overclaimed: the dense member is used.
        assert!(operand_b_for("DSSO", 0.05).is_dense());
        // The mapped descriptors are runnable on DSSO (whole-model eval
        // is no longer vacuously unsupported).
        let dsso = design_by_name("DSSO").unwrap();
        let eval = eval_model(
            dsso.as_ref(),
            &zoo::resnet50(),
            &PruningConfig::Hss(HssPattern::two_rank(Gh::new(4, 4), Gh::new(2, 4))),
        );
        assert!(eval.supported(), "{:?}", eval.first_unsupported());
    }

    #[test]
    fn design_mapping_rejects_unknown_names() {
        assert!(DesignMapping::new("TPU").is_err());
        let m = DesignMapping::new("STC").unwrap();
        assert_eq!(m.design(), "STC");
        assert!(m.operand_a(0.5).is_structured(), "STC co-designs to G:H");
    }
}
