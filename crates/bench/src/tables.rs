//! Renderers for the paper's Tables 1-4 (shared by the table binaries).

use hl_arch::Comp;
use hl_fibertree::catalog;
use hl_sim::{evaluate_best, OperandSparsity, Workload};
use hl_sparsity::families::highlight_a;

use crate::{designs, operand_a_for};

/// Table 1: design-category comparison, measured from the models.
pub fn table1() -> String {
    // Sparsity tax measured as the tax fraction of energy on a 50%/50%
    // workload (where supported); degree diversity as the count of
    // exploitable weight-sparsity degrees.
    let mut out = String::new();
    out.push_str("Table 1 — design-category comparison (measured from the models)\n\n");
    out.push_str(&format!(
        "{:>10} {:>22} {:>18} {:>22}\n",
        "design", "category", "tax (% energy)", "exploitable degrees"
    ));
    for d in designs() {
        let w = Workload::synthetic(operand_a_for(d.name(), 0.5), OperandSparsity::Dense);
        let tax = evaluate_best(d.as_ref(), &w)
            .map(|r| r.energy.sparsity_tax() / r.energy.total() * 100.0)
            .ok();
        let (category, degrees) = match d.name() {
            "TC" => ("dense", "n/a (never exploits)".to_string()),
            "STC" => ("structured sparse", "2 (0%, 50%)".to_string()),
            "S2TA" => ("structured sparse", "4 (>=50%, eighths)".to_string()),
            "DSTC" => ("unstructured sparse", "continuous".to_string()),
            _ => (
                "HSS (this work)",
                format!("{} exact", highlight_a().degree_count()),
            ),
        };
        out.push_str(&format!(
            "{:>10} {:>22} {:>18} {:>22}\n",
            d.name(),
            category,
            tax.map_or("n/a".to_string(), |t| format!("{:.2}", t.max(0.0))),
            degrees
        ));
    }
    out
}

/// Table 2: fibertree-based sparsity specifications.
pub fn table2() -> String {
    format!(
        "Table 2 — fibertree-based sparsity specifications\n\n{}",
        catalog::render_table2()
    )
}

/// Table 3: supported sparsity patterns per design.
pub fn table3() -> String {
    let mut out = String::new();
    out.push_str("Table 3 — supported sparsity patterns\n\n");
    for d in designs() {
        out.push_str(&format!("{:>10}: {}\n", d.name(), d.supported_patterns()));
    }
    out
}

/// Table 4: hardware resource allocation per design.
pub fn table4() -> String {
    let mut out = String::new();
    out.push_str("Table 4 — hardware resource allocation (from design areas)\n\n");
    out.push_str(&format!(
        "{:>10} {:>12} {:>12} {:>12} {:>14}\n",
        "design", "GLB", "GLB-meta", "RF", "area (mm^2)"
    ));
    for d in designs() {
        let area = d.area();
        let fmt = |c: Comp| {
            let v = area.get(c);
            if v == 0.0 {
                "-".to_string()
            } else {
                format!("{:.2}", v / 1e6)
            }
        };
        out.push_str(&format!(
            "{:>10} {:>12} {:>12} {:>12} {:>14.2}\n",
            d.name(),
            fmt(Comp::Glb),
            fmt(Comp::GlbMeta),
            fmt(Comp::RegFile),
            area.total() / 1e6
        ));
    }
    out.push_str("\n(per-component columns in mm^2; all designs hold 1024 MACs)\n");
    out
}
