//! Fig. 1: composing two sets of density degrees by multiplying fractions.

use hl_bench::persist;
use hl_sparsity::families::compose_density_sets;
use hl_sparsity::Ratio;

fn main() {
    let s0 = vec![Ratio::new(1, 2), Ratio::new(3, 4), Ratio::ONE];
    let s1 = vec![Ratio::new(1, 4), Ratio::new(3, 4)];
    let composed = compose_density_sets(&[s0.clone(), s1.clone()]);

    let fmt = |set: &[Ratio]| {
        set.iter()
            .map(|r| format!("{r} ({:.3})", r.to_f64()))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = String::new();
    out.push_str("Fig. 1 — composing density-degree sets by fraction multiplication\n\n");
    out.push_str(&format!("S0 = {{{}}}\n", fmt(&s0)));
    out.push_str(&format!("S1 = {{{}}}\n", fmt(&s1)));
    out.push_str(&format!(
        "S0 x S1 = {{{}}}  ({} density degrees from {}x{} simple patterns)\n",
        fmt(&composed),
        composed.len(),
        s0.len(),
        s1.len()
    ));
    out.push_str(
        "\nHardware with modularized support for each set naturally supports all derived degrees.\n",
    );
    print!("{out}");
    persist("fig1.txt", &out);
}
