//! Table 1 of the paper (see `hl_bench::tables`).

fn main() {
    let text = hl_bench::tables::table1();
    println!("{text}");
    hl_bench::persist("table1.txt", &text);
}
