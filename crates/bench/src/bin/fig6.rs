//! Fig. 6: one-rank design `S` vs two-rank design `SS` at equal flexibility —
//! (a) supported degrees and normalized latency, (b) normalized muxing
//! overhead.

use hl_arch::components::MuxTree;
use hl_arch::Tech;
use hl_bench::persist;
use hl_sparsity::families::{design_s, design_ss};

fn main() {
    let t = Tech::n65();
    let s = design_s();
    let ss = design_ss();

    let mut out = String::new();
    out.push_str("Fig. 6(a) — supported sparsity degrees (normalized latency = density)\n\n");
    for (name, fam) in [("S (1-rank, Hmax=16)", &s), ("SS (2-rank, Hmax=8,4)", &ss)] {
        let densities = fam.densities();
        out.push_str(&format!(
            "{name}: {} degrees\n  sparsity%: ",
            densities.len()
        ));
        let degs: Vec<String> = densities
            .iter()
            .rev()
            .map(|d| format!("{:.1}", d.complement().to_f64() * 100.0))
            .collect();
        out.push_str(&degs.join(", "));
        out.push('\n');
        let lat: Vec<String> = densities
            .iter()
            .rev()
            .map(|d| format!("{:.3}", d.to_f64()))
            .collect();
        out.push_str(&format!("  latency:   {}\n\n", lat.join(", ")));
    }

    // (b) Muxing overhead at equal flexibility: per-PE replication for the
    // one-rank design vs shared Rank1 + small per-PE Rank0 for the two-rank
    // design (4 PEs per array, G = 2).
    let pes = 4.0;
    let s_area = pes * MuxTree::new(2, 16).area_um2(&t);
    let ss_area = MuxTree::new(2, 8).area_um2(&t) + pes * MuxTree::new(2, 4).area_um2(&t);
    out.push_str("Fig. 6(b) — normalized muxing overhead (4-PE array, G = 2)\n\n");
    out.push_str(&format!("  S : {:.2} (normalized 1.00)\n", s_area));
    out.push_str(&format!(
        "  SS: {:.2} (normalized {:.2}) -> {:.1}x less muxing overhead [paper: >2x]\n",
        ss_area,
        ss_area / s_area,
        s_area / ss_area
    ));
    print!("{out}");
    persist("fig6.txt", &out);
}
