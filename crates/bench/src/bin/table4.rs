//! Table 4 of the paper (see `hl_bench::tables`).

fn main() {
    let text = hl_bench::tables::table4();
    println!("{text}");
    hl_bench::persist("table4.txt", &text);
}
