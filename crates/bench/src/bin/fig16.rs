//! Fig. 16: (a) per-component energy breakdown for a workload with 75%
//! sparse operand A and dense operand B; (b) HighLight's area breakdown and
//! SAF fraction (paper: 5.7%).

use highlight_core::HighLight;
use hl_arch::Comp;
use hl_bench::{designs, operand_a_for, persist, SweepContext};
use hl_sim::network::{NetworkLayer, NetworkWorkload};
use hl_sim::Accelerator;
use hl_sim::{OperandSparsity, Workload};

fn main() {
    let ctx = SweepContext::new();
    let mut out = String::new();
    out.push_str("Fig. 16(a) — energy breakdown (mJ), A 75% sparse / B dense, 1024^3 GEMM\n\n");
    out.push_str(&format!("{:>11}", "component"));
    let designs = designs();
    // Each design evaluates a one-layer network through the network-level
    // subsystem (the same path `/evaluate_model` and Figs. 2/15 use), and
    // the breakdown reads the per-layer result.
    let results: Vec<_> = ctx.map(&designs, |d| {
        let w = Workload::synthetic(operand_a_for(d.name(), 0.75), OperandSparsity::Dense);
        let network = NetworkWorkload::new("fig16", vec![NetworkLayer::new(w, 1)]);
        let eval = ctx.evaluate_network(d.as_ref(), &network);
        let layer = eval.layers.into_iter().next().expect("one layer");
        (d.name().to_string(), layer.outcome.ok())
    });
    for (n, _) in &results {
        out.push_str(&format!(" {n:>10}"));
    }
    out.push('\n');
    for comp in Comp::ALL {
        let row: Vec<f64> = results
            .iter()
            .map(|(_, r)| r.as_ref().map_or(0.0, |r| r.energy.get(comp) * 1e-9))
            .collect();
        if row.iter().all(|&v| v == 0.0) {
            continue;
        }
        out.push_str(&format!("{:>11}", comp.label()));
        for v in row {
            out.push_str(&format!(" {v:>10.4}"));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>11}", "TOTAL"));
    for (_, r) in &results {
        out.push_str(&format!(
            " {:>10.4}",
            r.as_ref().map_or(0.0, |r| r.energy.total() * 1e-9)
        ));
    }
    out.push_str("\n\nFig. 16(b) — HighLight area breakdown\n\n");
    let area = HighLight::default().area();
    let total = area.total();
    for (comp, v) in area.iter() {
        out.push_str(&format!(
            "{:>11}: {:>10.0} um^2  ({:>5.2}%)\n",
            comp.label(),
            v,
            v / total * 100.0
        ));
    }
    let saf = area.get(Comp::MuxRank0) + area.get(Comp::MuxRank1) + area.get(Comp::Vfmu);
    out.push_str(&format!(
        "\nSAF area fraction: {:.2}% of {:.2} mm^2 [paper: 5.7%]\n",
        saf / total * 100.0,
        total / 1e6
    ));
    print!("{out}");
    persist("fig16.txt", &out);
}
