//! Runs every table/figure binary in sequence, persisting all reports under
//! `results/`. This regenerates the measured numbers recorded in
//! `EXPERIMENTS.md`.
//!
//! A failing step no longer aborts the sequence: every remaining binary
//! still runs, the failures are listed at the end, and the process exits
//! nonzero so CI and scripts see the run as failed.

use std::process::Command;

fn main() {
    let bins = [
        "tables",
        "fig1",
        "fig2",
        "fig6",
        "microtrace",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "codesign",
    ];
    let mut failures: Vec<String> = Vec::new();
    for bin in bins {
        println!("\n########## {bin} ##########\n");
        let status =
            Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("{bin} failed: {other:?}; falling back to cargo run");
                let fallback = Command::new("cargo")
                    .args([
                        "run",
                        "--quiet",
                        "--release",
                        "-p",
                        "hl-bench",
                        "--bin",
                        bin,
                    ])
                    .status();
                match fallback {
                    Ok(s) if s.success() => {}
                    Ok(s) => failures.push(format!("{bin} (fallback exit: {s})")),
                    Err(e) => failures.push(format!("{bin} (fallback spawn error: {e})")),
                }
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll experiment reports written to results/.");
    } else {
        eprintln!("\n{} of {} steps FAILED:", failures.len(), bins.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
