//! Runs every table/figure binary in sequence, persisting all reports under
//! `results/`. This regenerates the measured numbers recorded in
//! `EXPERIMENTS.md`.

use std::process::Command;

fn main() {
    let bins = [
        "tables",
        "fig1",
        "fig2",
        "fig6",
        "microtrace",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
    ];
    for bin in bins {
        println!("\n########## {bin} ##########\n");
        let status =
            Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin)).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("{bin} failed: {other:?}; falling back to cargo run");
                let fallback = Command::new("cargo")
                    .args([
                        "run",
                        "--quiet",
                        "--release",
                        "-p",
                        "hl-bench",
                        "--bin",
                        bin,
                    ])
                    .status()
                    .expect("cargo run");
                assert!(fallback.success(), "{bin} failed");
            }
        }
    }
    println!("\nAll experiment reports written to results/.");
}
