//! Fig. 14: geometric mean of speedup, energy, EDP and ED² across the
//! Fig. 13 synthetic sweep, normalized to TC. Unsupported points (S2TA on
//! dense A) are excluded from that design's geomean, as in the paper.

use hl_bench::{design_names, persist, run_synthetic_sweep};
use hl_sim::geomean;

fn main() {
    let names = design_names();
    let sweep = run_synthetic_sweep();

    let mut out = String::new();
    out.push_str("Fig. 14 — geomean across the synthetic sweep (normalized to TC)\n\n");
    out.push_str(&format!("{:>12}", "metric"));
    for n in &names {
        out.push_str(&format!(" {n:>10}"));
    }
    out.push('\n');

    for metric in ["speedup", "energy", "EDP", "ED2"] {
        out.push_str(&format!("{metric:>12}"));
        for (i, _) in names.iter().enumerate() {
            let vals: Vec<f64> = sweep
                .iter()
                .filter_map(|p| {
                    let base = p.results[0].as_ref()?;
                    let r = p.results[i].as_ref()?;
                    Some(match metric {
                        "speedup" => base.cycles / r.cycles,
                        "energy" => r.energy_j() / base.energy_j(),
                        "EDP" => r.edp() / base.edp(),
                        _ => r.ed2() / base.ed2(),
                    })
                })
                .collect();
            match geomean(&vals) {
                Some(g) => out.push_str(&format!(" {g:>10.3}")),
                None => out.push_str(&format!(" {:>10}", "n/a")),
            }
        }
        out.push('\n');
    }

    // Headline claims: HighLight vs dense and vs sparse baselines (EDP).
    let hl = names.iter().position(|n| n == "HighLight").unwrap();
    let edp_ratios: Vec<f64> = sweep
        .iter()
        .map(|p| {
            let base = p.results[0].as_ref().unwrap();
            let r = p.results[hl].as_ref().unwrap();
            base.edp() / r.edp()
        })
        .collect();
    match geomean(&edp_ratios) {
        Some(gm) => {
            let max = edp_ratios.iter().cloned().fold(0.0, f64::max);
            out.push_str(&format!(
                "\nHighLight vs TC: geomean {gm:.2}x (up to {max:.2}x) lower EDP [paper: 6.4x, up to 20.4x]\n"
            ));
        }
        // `edp_ratios` covers every sweep point, so a `None` here means a
        // degenerate (non-positive) ratio, not an empty sweep.
        None => out.push_str("\nHighLight vs TC: n/a (non-positive EDP ratio in sweep)\n"),
    }
    for (name, idx) in [("STC", 1), ("DSTC", 2), ("S2TA", 3)] {
        let ratios: Vec<f64> = sweep
            .iter()
            .filter_map(|p| {
                let other = p.results[idx].as_ref()?;
                let r = p.results[hl].as_ref()?;
                Some(other.edp() / r.edp())
            })
            .collect();
        match geomean(&ratios) {
            Some(gm) => {
                let max = ratios.iter().cloned().fold(0.0, f64::max);
                out.push_str(&format!(
                    "HighLight vs {name}: geomean {gm:.2}x (up to {max:.2}x) lower EDP\n"
                ));
            }
            None => out.push_str(&format!(
                "HighLight vs {name}: n/a ({})\n",
                if ratios.is_empty() {
                    "no comparable sweep points"
                } else {
                    "non-positive EDP ratio in sweep"
                }
            )),
        }
    }
    print!("{out}");
    persist("fig14.txt", &out);
}
