//! Times the individual cold-path kernels — HSS conformance checking,
//! compressed-format encoding, the functional micro-architecture
//! simulator, fibertree construction, and HSS pruning — and records the
//! result in `BENCH_micro.json` (honoring `HL_BENCH_OUT`).
//!
//! Where `bench_sweeps` measures the end-to-end sweeps, this harness
//! isolates the kernels those sweeps are built from, so a regression in
//! the sweep numbers can be attributed to one kernel. Every kernel's
//! output is consumed (summed into a checksum) so the work cannot be
//! optimized away.

use std::time::Instant;

use hl_bench::bench_out_path;
use hl_models::accuracy::synthetic_weights;
use hl_sim::micro::{MicroConfig, MicroSim};
use hl_sparsity::prune::prune_hss;
use hl_sparsity::{Gh, HssPattern};
use hl_tensor::format::{HssCompressed, SparseB};
use hl_tensor::gen;

/// Times `iters` runs of `f` after one warmup, returning the mean
/// milliseconds per run and a checksum accumulated from the runs.
fn time_kernel(iters: u32, mut f: impl FnMut() -> f64) -> (f64, f64) {
    let mut checksum = f(); // warmup
    let t0 = Instant::now();
    for _ in 0..iters {
        checksum += f();
    }
    (
        t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters),
        checksum,
    )
}

fn main() {
    println!("bench_micro — cold-path kernel timings\n");

    let pattern = [Gh::new(4, 8), Gh::new(2, 4)];
    let hss = gen::random_hss(1024, 1024, &pattern, 11);
    let dense = gen::random_dense(256, 1024, 12);
    let unstructured = gen::random_unstructured(1024, 64, 0.6, 13);
    let prune_pattern = HssPattern::two_rank(Gh::new(4, 8), Gh::new(2, 4));

    let micro_cfg = MicroConfig::paper_downsized(4);
    let micro_k = micro_cfg.group_words() * 8;
    let micro_a = gen::random_hss(16, micro_k, &[micro_cfg.rank1, micro_cfg.rank0], 14);
    let micro_b = gen::random_unstructured(micro_k, 16, 0.5, 15);

    // Fibertree build input: pruned surrogate layer weights, the shape the
    // spec conformance checks construct trees from.
    let tree_src = prune_hss(&synthetic_weights(256, 1024, 0xACC0), &prune_pattern);

    let mut kernels: Vec<(&str, u32, f64, f64)> = Vec::new();
    let mut record = |name: &'static str, iters: u32, f: &mut dyn FnMut() -> f64| {
        let (avg_ms, checksum) = time_kernel(iters, f);
        println!("{name:>18}: {avg_ms:9.3} ms/op  ({iters} iters)");
        kernels.push((name, iters, avg_ms, checksum));
    };

    record("check_hss", 50, &mut || {
        f64::from(u32::from(gen::check_hss(&hss, &pattern).is_none()))
    });
    record("hss_encode", 20, &mut || {
        let c = HssCompressed::encode(&hss, 8, 4);
        c.rows().iter().map(|r| r.values.len() as f64).sum()
    });
    record("sparse_b_encode", 20, &mut || {
        let s = SparseB::encode(&unstructured, 8, 4);
        s.nonzeros() as f64
    });
    record("micro_sim_run", 10, &mut || {
        let report = MicroSim::new(micro_cfg).run(&micro_a, &micro_b, true);
        report.counts.cycles as f64
    });
    record("fibertree_build", 10, &mut || {
        let tree = tree_src
            .to_fibertree("M", "K")
            .expect("layer weights lower to a fibertree");
        tree.nonzeros() as f64
    });
    record("prune_hss", 20, &mut || {
        let pruned = prune_hss(&dense, &prune_pattern);
        pruned.nonzeros() as f64
    });

    let mut rows = String::new();
    for (i, (name, iters, avg_ms, _)) in kernels.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"name\": \"{name}\", \"iters\": {iters}, \"avg_ms\": {avg_ms:.4}}}"
        ));
    }
    let json =
        format!("{{\n  \"benchmark\": \"cold-path kernels\",\n  \"kernels\": [\n{rows}\n  ]\n}}\n");
    let out = bench_out_path("BENCH_micro.json");
    std::fs::write(&out, &json).expect("write BENCH_micro.json");
    println!("\nwrote {}", out.display());
}
