//! Fig. 17: processing speed of HighLight vs the dual-side DSSO design for
//! workloads with A = C1(dense)→C0(2:4) and B = C1(2:{2≤H≤8})→C0(dense),
//! normalized to dense processing.

use highlight_core::{Dsso, HighLight};
use hl_bench::persist;
use hl_sim::{Accelerator, OperandSparsity, Workload};
use hl_sparsity::{Gh, HssPattern};

fn main() {
    let hl = HighLight::default();
    let dsso = Dsso::default();
    let a = OperandSparsity::Hss(HssPattern::two_rank(Gh::new(4, 4), Gh::new(2, 4)));
    let dense_cycles = 1024.0f64.powi(3) / 1024.0;

    let mut out = String::new();
    out.push_str("Fig. 17 — normalized processing speed, A=C1(dense)→C0(2:4)\n\n");
    out.push_str(&format!(
        "{:>22} {:>12} {:>12} {:>12}\n",
        "operand B", "B sparsity%", "HighLight", "DSSO"
    ));
    for h in 2..=8u32 {
        let b_pattern = HssPattern::two_rank(Gh::new(2, h), Gh::new(4, 4));
        let b_sparsity = b_pattern.sparsity_f64();
        // HighLight exploits B only through gating (no speedup): give it the
        // same degrees as unstructured sparsity.
        let hl_w = Workload::synthetic(a.clone(), OperandSparsity::unstructured(b_sparsity));
        let dsso_w = Workload::synthetic(a.clone(), OperandSparsity::Hss(b_pattern.clone()));
        let hl_r = hl.evaluate(&hl_w).expect("HighLight runs");
        let dsso_r = dsso.evaluate(&dsso_w).expect("DSSO runs");
        out.push_str(&format!(
            "{:>22} {:>12.1} {:>12.2} {:>12.2}\n",
            b_pattern.to_string(),
            b_sparsity * 100.0,
            dense_cycles / hl_r.cycles,
            dense_cycles / dsso_r.cycles,
        ));
    }
    out.push_str(
        "\nDSSO achieves up to (H1/2)x better speed than HighLight on commonly\nsupported degrees, at the cost of fewer operand-B degrees (one rank dense).\n",
    );
    print!("{out}");
    persist("fig17.txt", &out);
}
