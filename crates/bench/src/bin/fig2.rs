//! Fig. 2: normalized EDP of STC / DSTC / HighLight on accuracy-matched
//! pruned Transformer-Big and ResNet50 (normalized to the dense TC).
//!
//! Accuracy matching follows the paper's protocol: every design gets the
//! most aggressive pruning configuration whose (surrogate) accuracy loss
//! stays within a common budget of the 2:4 loss + 0.4 metric points
//! ("similar accuracy, within 0.5% difference").

use hl_bench::{accuracy_matched_config, designs, eval_model, persist};
use hl_models::accuracy::{accuracy_loss, PruningConfig};
use hl_models::zoo;
use hl_sparsity::{Gh, HssPattern};

fn main() {
    let mut out = String::new();
    out.push_str("Fig. 2 — accuracy-matched whole-model EDP, normalized to TC\n\n");
    for model in [zoo::transformer_big(), zoo::resnet50()] {
        let budget = accuracy_loss(
            &model,
            &PruningConfig::Hss(HssPattern::one_rank(Gh::new(2, 4))),
        ) + 0.4;
        out.push_str(&format!(
            "== {} (loss budget {budget:.2} {} points) ==\n",
            model.name, model.metric
        ));
        let tc_edp = {
            let tc = &designs()[0];
            eval_model(tc.as_ref(), &model, &PruningConfig::Dense)
                .expect("TC runs dense")
                .edp()
        };
        for d in designs() {
            if !matches!(d.name(), "TC" | "STC" | "DSTC" | "HighLight") {
                continue; // Fig. 2 compares these four
            }
            match accuracy_matched_config(d.name(), &model, budget) {
                None => out.push_str(&format!("{:>10}: no config within budget\n", d.name())),
                Some(cfg) => {
                    let loss = accuracy_loss(&model, &cfg);
                    match eval_model(d.as_ref(), &model, &cfg) {
                        None => out.push_str(&format!("{:>10}: unsupported\n", d.name())),
                        Some(e) => out.push_str(&format!(
                            "{:>10}: EDP {:>7.3}x TC   (weights {:>5.1}% sparse, est. loss {loss:.2})\n",
                            d.name(),
                            e.edp() / tc_edp,
                            cfg.sparsity() * 100.0,
                        )),
                    }
                }
            }
        }
        out.push('\n');
    }
    out.push_str("Paper shape: STC < DSTC on Transformer-Big, DSTC < STC on ResNet50,\n");
    out.push_str("and HighLight lowest on both.\n");
    print!("{out}");
    persist("fig2.txt", &out);
}
