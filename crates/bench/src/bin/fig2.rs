//! Fig. 2: normalized EDP of STC / DSTC / HighLight on accuracy-matched
//! pruned Transformer-Big and ResNet50 (normalized to the dense TC).
//!
//! Accuracy matching follows the paper's protocol: every design gets the
//! most aggressive pruning configuration whose (surrogate) accuracy loss
//! stays within a common budget of the 2:4 loss + 0.4 metric points
//! ("similar accuracy, within 0.5% difference").
//!
//! The sweep itself lives in [`hl_bench::fig2_data`] and runs on the
//! parallel engine (`HL_THREADS` sizes the pool).

use hl_bench::{fig2_data, persist, Fig2Outcome, SweepContext};

fn main() {
    let ctx = SweepContext::new();
    let mut out = String::new();
    out.push_str("Fig. 2 — accuracy-matched whole-model EDP, normalized to TC\n\n");
    for model in fig2_data(&ctx) {
        out.push_str(&format!(
            "== {} (loss budget {:.2} {} points) ==\n",
            model.model, model.budget, model.metric
        ));
        for row in &model.rows {
            match &row.outcome {
                Fig2Outcome::NoConfig => {
                    out.push_str(&format!("{:>10}: no config within budget\n", row.design))
                }
                Fig2Outcome::Unsupported => {
                    out.push_str(&format!("{:>10}: unsupported\n", row.design))
                }
                Fig2Outcome::Matched {
                    edp_ratio,
                    weight_sparsity,
                    loss,
                } => out.push_str(&format!(
                    "{:>10}: EDP {:>7.3}x TC   (weights {:>5.1}% sparse, est. loss {loss:.2})\n",
                    row.design,
                    edp_ratio,
                    weight_sparsity * 100.0,
                )),
            }
        }
        out.push('\n');
    }
    out.push_str("Paper shape: STC < DSTC on Transformer-Big, DSTC < STC on ResNet50,\n");
    out.push_str("and HighLight lowest on both.\n");
    print!("{out}");
    persist("fig2.txt", &out);
}
