//! Prints Tables 1-4 (or a single table given its number as an argument).

use hl_bench::persist;
use hl_bench::tables::{table1, table2, table3, table4};

fn main() {
    let which = std::env::args().nth(1);
    let tables: Vec<(usize, fn() -> String)> =
        vec![(1, table1), (2, table2), (3, table3), (4, table4)];
    for (i, f) in tables {
        if which.as_deref().is_none_or(|w| w == i.to_string()) {
            let text = f();
            println!("{text}");
            persist(&format!("table{i}.txt"), &text);
        }
    }
}
