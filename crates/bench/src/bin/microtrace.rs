//! Figs. 9–12 walkthrough: runs the down-sized HighLight micro-architecture
//! simulator on the paper's example configuration and prints the compressed
//! operand layout, the VFMU step trace, and the action counts.

use hl_bench::persist;
use hl_sim::micro::{MicroConfig, MicroSim};
use hl_tensor::format::HssCompressed;
use hl_tensor::gen;

fn main() {
    let mut out = String::new();
    for (h1, sparse_b) in [(4u32, false), (3, false), (3, true)] {
        let cfg = MicroConfig::paper_downsized(h1);
        let k = cfg.group_words() * 4;
        let a = gen::random_hss(2, k, &[cfg.rank1, cfg.rank0], 42);
        let b = if sparse_b {
            gen::random_unstructured(k, 4, 0.5, 43)
        } else {
            gen::random_dense(k, 4, 43)
        };
        let report = MicroSim::new(cfg).run(&a, &b, sparse_b);
        let reference = a.matmul(&b);
        out.push_str(&format!(
            "== C1(2:{h1})→C0(2:4), operand B {} ==\n",
            if sparse_b {
                "50% unstructured (compressed, Fig. 12)"
            } else {
                "dense (Fig. 11)"
            }
        ));
        let comp = HssCompressed::encode(&a, h1 as usize, 4);
        let row = &comp.rows()[0];
        out.push_str(&format!(
            "operand A row 0 (Fig. 9): values {:?}\n  rank0 CPs {:?}\n  rank1 CPs {:?}\n",
            &row.values[..row.values.len().min(8)],
            &row.rank0_cp[..row.rank0_cp.len().min(8)],
            &row.rank1_cp[..row.rank1_cp.len().min(8)],
        ));
        out.push_str("VFMU walk (m=0, n=0):\n");
        for t in &report.first_walk {
            out.push_str(&format!(
                "  step {}: shift {:>2} words, fetched {:>2} words{}\n",
                t.group,
                t.shift_words,
                t.fetched_words,
                if t.fetch_skipped {
                    "  (GLB fetch skipped)"
                } else {
                    ""
                }
            ));
        }
        out.push_str(&format!(
            "cycles {} | MACs {} | gated {} | GLB B words {} | fetches skipped {}\n",
            report.counts.cycles,
            report.counts.macs,
            report.counts.gated_macs,
            report.counts.glb_b_word_reads,
            report.counts.fetches_skipped
        ));
        out.push_str(&format!(
            "output == reference GEMM: {}\n\n",
            report.output.approx_eq(&reference, 1e-3)
        ));
    }
    print!("{out}");
    persist("microtrace.txt", &out);
}
