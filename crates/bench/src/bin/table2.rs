//! Table 2 of the paper (see `hl_bench::tables`).

fn main() {
    let text = hl_bench::tables::table2();
    println!("{text}");
    hl_bench::persist("table2.txt", &text);
}
