//! Fig. 13: latency, energy, and EDP of all designs across synthetic 1024³
//! GEMMs with A ∈ {0, 50, 75}% and B ∈ {0, 25, 50, 75}% sparsity, normalized
//! to the dense TC baseline.

use hl_bench::{cell, design_names, persist, run_synthetic_sweep};

fn main() {
    let names = design_names();
    let sweep = run_synthetic_sweep();
    let tc = 0; // registry order: TC first

    let mut out = String::new();
    out.push_str(
        "Fig. 13 — normalized to TC (lower is better for energy/EDP; higher for speedup)\n\n",
    );
    for metric in ["speedup", "energy", "EDP"] {
        out.push_str(&format!("== {metric} ==\n"));
        out.push_str(&format!("{:>6} {:>6}", "A%", "B%"));
        for n in &names {
            out.push_str(&format!(" {n:>10}"));
        }
        out.push('\n');
        for p in &sweep {
            let base = p.results[tc].as_ref().expect("TC always runs");
            out.push_str(&format!(
                "{:>6.0} {:>6.0}",
                p.a_sparsity * 100.0,
                p.b_sparsity * 100.0
            ));
            for r in &p.results {
                let v = r.as_ref().map(|r| match metric {
                    "speedup" => base.cycles / r.cycles,
                    "energy" => r.energy_j() / base.energy_j(),
                    _ => r.edp() / base.edp(),
                });
                out.push_str(&format!(" {}", cell(v)));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    print!("{out}");
    persist("fig13.txt", &out);
}
