//! `codesign` — the §7.1.2 co-design search as an offline tool: optimize
//! a pruning configuration per `(design, model)` pair under an
//! accuracy-loss budget and report the Pareto front over (loss, EDP).
//!
//! ```text
//! codesign [MODEL...] [--designs A,B,...] [--budget POINTS]
//! ```
//!
//! Defaults: all three zoo models, all registered designs, a 0.5-point
//! budget (roughly Fig. 2's "2:4 loss + 0.4" envelope). The search core
//! lives in [`hl_bench::search`] and runs on the parallel engine
//! (`HL_THREADS` sizes the pool); `POST /search` on `hl-serve` answers
//! the same queries from the same code. Output is persisted to
//! `results/codesign.txt`.

use std::process::exit;

use hl_bench::{design_by_name, persist, registered_names, SearchOutcome, SweepContext};
use hl_models::{model_by_name, zoo};

fn render(out: &SearchOutcome) -> String {
    let mut text = format!(
        "== {} on {} ({}), budget {:.2} points ==\n\
         {} candidates evaluated, {} unsupported, {} on the Pareto front\n",
        out.design,
        out.model,
        out.metric,
        out.budget,
        out.candidates,
        out.unsupported,
        out.front().len(),
    );
    text.push_str(&format!(
        "{:>26} {:>10} {:>10} {:>10} {:>8} {:>6}\n",
        "config", "sparsity", "loss", "EDP", "Pareto", "best"
    ));
    let best = out.best;
    for (i, p) in out.points.iter().enumerate() {
        if !p.on_front {
            continue;
        }
        text.push_str(&format!(
            "{:>26} {:>9.1}% {:>10.3} {:>10.3} {:>8} {:>6}\n",
            p.label,
            p.weight_sparsity * 100.0,
            p.loss,
            p.edp,
            "*",
            if best == Some(i) { "<==" } else { "" }
        ));
    }
    match out.best_point() {
        Some(b) => text.push_str(&format!(
            "best within budget: {} (loss {:.3}, EDP {:.3}x dense TC)\n",
            b.label, b.loss, b.edp
        )),
        None => text.push_str("no configuration stays within the budget\n"),
    }
    text
}

fn main() {
    let mut budget = 0.5;
    let mut design_names: Vec<String> =
        registered_names().iter().map(ToString::to_string).collect();
    let mut model_names: Vec<String> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(b)) if b.is_finite() && b >= 0.0 => budget = b,
                _ => {
                    eprintln!("codesign: --budget needs a finite non-negative number");
                    exit(2);
                }
            },
            "--designs" => match it.next() {
                Some(list) => design_names = list.split(',').map(str::to_string).collect(),
                None => {
                    eprintln!("codesign: --designs needs a comma-separated list");
                    exit(2);
                }
            },
            name => model_names.push(name.to_string()),
        }
    }

    let models = if model_names.is_empty() {
        zoo::all_models()
    } else {
        match model_names.iter().map(|n| model_by_name(n)).collect() {
            Ok(models) => models,
            Err(e) => {
                eprintln!("codesign: {e}");
                exit(2);
            }
        }
    };
    let designs: Vec<_> = match design_names.iter().map(|n| design_by_name(n)).collect() {
        Ok(designs) => designs,
        Err(e) => {
            eprintln!("codesign: {e}");
            exit(2);
        }
    };

    let ctx = SweepContext::new();
    let mut out = String::from(
        "Co-design search (§7.1.2) — Pareto fronts over (accuracy loss, EDP vs dense TC)\n",
    );
    for model in &models {
        for design in &designs {
            out.push('\n');
            out.push_str(&render(&ctx.codesign(design.as_ref(), model, budget)));
        }
    }
    print!("{out}");
    persist("codesign.txt", &out);
}
