//! Times the Fig. 2 / Fig. 15 design-space sweeps end-to-end — the
//! uncached serial baseline against the parallel engine at 1, 2, and N
//! worker threads — and records the result in `BENCH_sweeps.json`, seeding
//! the repo's performance trajectory.
//!
//! Every engine run uses a **fresh** context (empty memo tables), so the
//! measured speedup is what one cold sweep gains from intra-run
//! memoization plus the worker pool — not warm-cache replay. The harness
//! also cross-checks that every engine run produces results identical to
//! the serial baseline (the engine's determinism guarantee).

use std::time::Instant;

use hl_bench::{
    bench_out_path, designs, fig15_points, fig2_data, Fig2Model, ParetoPoint, SweepContext,
};
use hl_models::accuracy::PruningConfig;
use hl_models::zoo;
use hl_sim::engine::{default_threads, Engine};
use hl_sim::network::NetworkEval;

/// One full pass over the Fig. 2 and Fig. 15 sweeps.
fn run_sweeps(ctx: &SweepContext) -> (Vec<Fig2Model>, Vec<Vec<ParetoPoint>>) {
    let fig2 = fig2_data(ctx);
    let fig15 = zoo::all_models()
        .iter()
        .map(|m| fig15_points(ctx, m))
        .collect();
    (fig2, fig15)
}

fn main() {
    let available = std::thread::available_parallelism().map_or(1, usize::from);
    let cpus = available;
    println!("bench_sweeps — Fig. 2 + Fig. 15 sweeps, serial vs engine ({cpus} CPU(s))\n");
    if available <= 1 {
        println!(
            "note: available_parallelism = 1 — the engine rows below measure\n\
             memoization only; thread counts cannot help on this machine and\n\
             flat 1/2/4-thread timings are expected, not a regression.\n"
        );
    }

    let t0 = Instant::now();
    let baseline = run_sweeps(&SweepContext::serial_baseline());
    let serial_s = t0.elapsed().as_secs_f64();
    println!("{:>22}: {serial_s:8.3} s", "serial baseline");

    let mut thread_counts = vec![1, 2, 4];
    let default = default_threads();
    if !thread_counts.contains(&default) {
        thread_counts.push(default);
    }

    let mut rows = String::new();
    let mut identical = true;
    for (i, &threads) in thread_counts.iter().enumerate() {
        // Fresh context per run: cold caches, explicitly sized pool.
        let ctx = SweepContext::with_engine(Engine::with_threads(threads));
        let t0 = Instant::now();
        let out = run_sweeps(&ctx);
        let s = t0.elapsed().as_secs_f64();
        let same = out == baseline;
        identical &= same;
        let speedup = serial_s / s;
        println!(
            "{:>15} ({threads}T): {s:8.3} s   {speedup:5.2}x vs serial   identical: {same}",
            "engine"
        );
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"threads\": {threads}, \"seconds\": {s:.4}, \"speedup_vs_serial\": {speedup:.3}}}"
        ));
    }

    // Network-level evaluation (`hl_sim::network`): every design × model
    // at a 50%-weight co-designed config, cold (empty eval cache) vs a
    // cached replay on the same context — the speedup `/evaluate_model`
    // clients see when re-querying a model.
    let models = zoo::all_models();
    let run_networks = |ctx: &SweepContext| -> Vec<NetworkEval> {
        let weights = PruningConfig::Unstructured { sparsity: 0.5 };
        models
            .iter()
            .flat_map(|m| {
                designs()
                    .into_iter()
                    .map(|d| ctx.eval_network(d.as_ref(), m, &weights))
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    let ctx = SweepContext::with_engine(Engine::with_threads(default_threads()));
    let t0 = Instant::now();
    let cold = run_networks(&ctx);
    let network_cold_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let cached = run_networks(&ctx);
    let network_cached_s = t0.elapsed().as_secs_f64();
    let network_identical = cold == cached;
    identical &= network_identical;
    let replay_speedup = network_cold_s / network_cached_s.max(1e-9);
    println!(
        "{:>22}: {network_cold_s:8.3} s cold, {network_cached_s:8.3} s cached \
         ({replay_speedup:5.2}x replay)   identical: {network_identical}",
        "network eval"
    );

    // Co-design search (`hl_bench::search`): HighLight over every model
    // at a 0.5-point budget, cold (fresh context) vs a cached replay —
    // the speedup `/search` clients see when re-posting a query.
    let run_searches = |ctx: &SweepContext| -> Vec<hl_bench::SearchOutcome> {
        let design = hl_bench::design_by_name("HighLight").expect("registered");
        models
            .iter()
            .map(|m| ctx.codesign(design.as_ref(), m, 0.5))
            .collect()
    };
    let ctx = SweepContext::with_engine(Engine::with_threads(default_threads()));
    let t0 = Instant::now();
    let cold = run_searches(&ctx);
    let search_cold_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let cached = run_searches(&ctx);
    let search_cached_s = t0.elapsed().as_secs_f64();
    let search_identical = cold == cached;
    identical &= search_identical;
    let search_replay = search_cold_s / search_cached_s.max(1e-9);
    println!(
        "{:>22}: {search_cold_s:8.3} s cold, {search_cached_s:8.3} s cached \
         ({search_replay:5.2}x replay)   identical: {search_identical}",
        "codesign search"
    );

    // Cache instrumentation from the search context: the same counters
    // `hl-serve` exports at `/v1/metrics` (eval + retention cache), so a
    // replay-speedup regression here can be attributed to hit rate.
    let (eval_hits, eval_misses) = ctx.engine().eval_cache().stats();
    let (ret_hits, ret_misses) = ctx.retention_stats();
    println!(
        "{:>22}: eval {eval_hits} hits / {eval_misses} misses, \
         retention {ret_hits} hits / {ret_misses} misses",
        "cache counters"
    );

    let threads_can_help = available > 1;
    let json = format!(
        "{{\n  \"benchmark\": \"fig2+fig15 design-space sweeps\",\n  \
         \"cpus\": {cpus},\n  \"available_parallelism\": {available},\n  \
         \"threads_can_help\": {threads_can_help},\n  \"serial_seconds\": {serial_s:.4},\n  \
         \"engine\": [\n{rows}\n  ],\n  \
         \"network_eval\": {{\"cold_seconds\": {network_cold_s:.4}, \
         \"cached_seconds\": {network_cached_s:.4}, \
         \"replay_speedup\": {replay_speedup:.3}, \
         \"identical\": {network_identical}}},\n  \
         \"codesign_search\": {{\"cold_seconds\": {search_cold_s:.4}, \
         \"cached_seconds\": {search_cached_s:.4}, \
         \"replay_speedup\": {search_replay:.3}, \
         \"identical\": {search_identical}}},\n  \
         \"search_caches\": {{\"eval_hits\": {eval_hits}, \
         \"eval_misses\": {eval_misses}, \
         \"retention_hits\": {ret_hits}, \
         \"retention_misses\": {ret_misses}}},\n  \
         \"outputs_identical\": {identical}\n}}\n"
    );
    let out = bench_out_path("BENCH_sweeps.json");
    std::fs::write(&out, &json).expect("write BENCH_sweeps.json");
    println!("\nwrote {}", out.display());
    assert!(identical, "engine output diverged from the serial baseline");
}
